//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the tiny slice of `parking_lot` it uses: `Mutex`, `RwLock`, and `Condvar`
//! with non-poisoning `lock()` / `read()` / `write()` / `wait()`. Backed by
//! `std::sync` primitives; a poisoned lock (a panic while held) is recovered
//! rather than propagated, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`]. Wraps the std guard in an `Option` so [`Condvar`]
/// can move it through std's by-value `wait` while callers hold `&mut`.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard live while borrowed")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard live while borrowed")
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable taking `&mut MutexGuard`, parking_lot style.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard live while borrowed");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Like [`Condvar::wait`], but gives up at `deadline`.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let inner = guard.0.take().expect("guard live while borrowed");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_signals_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut guard = lock.lock();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert!(cvar.wait_until(&mut guard, deadline).timed_out());
    }
}
