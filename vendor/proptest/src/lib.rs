//! Offline stand-in for the `proptest` crate.
//!
//! Reimplements the subset of proptest this workspace's property tests use:
//! the `proptest!` macro, `prop_assert*`, `prop_oneof!`, `Just`, `any`,
//! integer/float range strategies, `prop::collection::vec`,
//! `prop::num::f64::NORMAL`, `.prop_map`, `.prop_recursive`, and a
//! mini-regex string strategy (char classes with ranges/escapes plus `\PC`,
//! each with `{m,n}` repetition).
//!
//! Differences from the real crate: no shrinking — a failing case panics
//! with the generated inputs left to the assertion message — and a fixed,
//! name-seeded deterministic RNG so failures reproduce across runs. Case
//! count defaults to 64 and honours `PROPTEST_CASES`.

use std::rc::Rc;

pub mod test_runner {
    /// Deterministic RNG (splitmix64) seeded from the test's full path so
    /// every run of a given test sees the same input sequence.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary name via FNV-1a.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Number of cases per property; `PROPTEST_CASES` overrides the
    /// default of 64.
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }
}

use test_runner::TestRng;

/// A generator of random values; the stand-in's version of proptest's
/// `Strategy` (no shrinking, so a strategy is just a seeded generator).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: at each of `depth` levels, generation
    /// chooses between the base strategy and one application of `recurse`
    /// over the shallower levels, so values bottom out at the base case.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased, cloneable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies; backs `prop_oneof!`.
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `branches`; panics if empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

/// Types with a canonical whole-domain generator, used by [`any`].
pub trait ArbitraryValue {
    /// Generates an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<A: ArbitraryValue, B: ArbitraryValue> ArbitraryValue for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

impl<A: ArbitraryValue, B: ArbitraryValue, C: ArbitraryValue> ArbitraryValue for (A, B, C) {
    fn arbitrary(rng: &mut TestRng) -> (A, B, C) {
        (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
    }
}

/// Whole-domain strategy for `T`: `any::<u8>()`, `any::<(u16, u8)>()`, …
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let start = self.start as i128;
                let span = self.end as i128 - start;
                assert!(span > 0, "empty range strategy");
                (start + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let start = *self.start() as i128;
                let span = *self.end() as i128 - start + 1;
                assert!(span > 0, "empty range strategy");
                (start + rng.below(span as u64) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // unit_f64 is half-open; nudge so the upper bound is reachable.
        (lo + rng.unit_f64() * (hi - lo) * (1.0 + f64::EPSILON)).min(hi)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

// ---------------------------------------------------------------------
// Mini-regex string strategies
// ---------------------------------------------------------------------

/// One repeatable unit of a string pattern.
enum Atom {
    /// `[a-z0-9_]`-style class: inclusive char ranges.
    Class(Vec<(char, char)>),
    /// `\PC`: any non-control ("printable") character.
    Printable,
    /// A literal character.
    Literal(char),
}

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                .sum();
            let mut k = rng.below(total);
            for (lo, hi) in ranges {
                let size = *hi as u64 - *lo as u64 + 1;
                if k < size {
                    return char::from_u32(*lo as u32 + k as u32).unwrap_or(*lo);
                }
                k -= size;
            }
            ranges[0].0
        }
        Atom::Printable => {
            // Mostly ASCII, with Latin and CJK tails to exercise UTF-8.
            match rng.below(10) {
                0..=6 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
                7..=8 => char::from_u32(0xa1 + rng.below(0xdf) as u32).unwrap(),
                _ => char::from_u32(0x4e00 + rng.below(0x1f0) as u32).unwrap(),
            }
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Parses the mini-regex subset: a sequence of atoms, each optionally
/// followed by `{n}` or `{m,n}`.
fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges: Vec<(char, char)> = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    i += 1;
                    // `x-y` range, unless `-` is the final class member.
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        assert!(lo <= hi, "inverted class range {lo:?}-{hi:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(i < chars.len(), "unterminated char class in {pattern:?}");
                i += 1; // consume ']'
                assert!(!ranges.is_empty(), "empty char class in {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in {pattern:?}");
                if chars[i] == 'P' {
                    // `\PC` — the only unicode-class escape supported.
                    assert!(
                        chars.get(i + 1) == Some(&'C'),
                        "unsupported unicode class in {pattern:?}"
                    );
                    i += 2;
                    Atom::Printable
                } else {
                    let c = unescape(chars[i]);
                    i += 1;
                    Atom::Literal(c)
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {n} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier min"),
                    n.trim().parse().expect("bad quantifier max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in {pattern:?}");
        out.push((atom, min, max));
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse_pattern(self) {
            let n = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(generate_atom(&atom, rng));
            }
        }
        out
    }
}

/// The `prop::` namespace, mirroring the real crate's module paths.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// Accepted element-count specifications for [`vec`].
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            max_inclusive: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.end > r.start, "empty size range");
                SizeRange {
                    min: r.start,
                    max_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    min: *r.start(),
                    max_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange {
                    min: n,
                    max_inclusive: n,
                }
            }
        }

        /// Strategy for vectors of `element`-generated values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.max_inclusive - self.size.min + 1;
                let n = self.size.min + rng.below(span as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors whose length falls in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Numeric strategies (`prop::num::f64::NORMAL`).
    pub mod num {
        /// `f64` strategies.
        pub mod f64 {
            use crate::test_runner::TestRng;
            use crate::Strategy;

            /// Strategy over all normal (finite, non-zero, non-subnormal)
            /// `f64` bit patterns.
            #[derive(Clone, Copy, Debug)]
            pub struct NormalF64;

            impl Strategy for NormalF64 {
                type Value = f64;
                fn generate(&self, rng: &mut TestRng) -> f64 {
                    loop {
                        let f = f64::from_bits(rng.next_u64());
                        if f.is_normal() {
                            return f;
                        }
                    }
                }
            }

            /// All normal floats, like the real crate's `NORMAL`.
            pub const NORMAL: NormalF64 = NormalF64;
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines `#[test]` functions whose arguments are drawn from strategies;
/// each test body runs for [`test_runner::case_count`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )+) => {
        $(
            #[test]
            fn $name() {
                let __cases = $crate::test_runner::case_count();
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cases {
                    let _ = __case;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property (plain `assert!` here — the
/// stand-in has no shrinking to abort into).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner;
    pub use crate::{any, Any, ArbitraryValue, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = test_runner::TestRng::from_name("string");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-e]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)), "{s:?}");

            let t = Strategy::generate(&"[ -~]{0,20}", &mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");

            let p = Strategy::generate(&"\\PC{0,30}", &mut rng);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");

            let esc = Strategy::generate(&"[a\\-b\\\\\n]{4}", &mut rng);
            assert!(
                esc.chars()
                    .all(|c| matches!(c, 'a' | '-' | 'b' | '\\' | '\n')),
                "{esc:?}"
            );
        }
    }

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = test_runner::TestRng::from_name("ranges");
        for _ in 0..500 {
            let u = Strategy::generate(&(1usize..32), &mut rng);
            assert!((1..32).contains(&u));
            let f = Strategy::generate(&(0.1f64..=1.0), &mut rng);
            assert!((0.1..=1.0).contains(&f));
            let n = Strategy::generate(&prop::num::f64::NORMAL, &mut rng);
            assert!(n.is_normal());
            let (_a, _b): (u16, u8) = Strategy::generate(&any::<(u16, u8)>(), &mut rng);
        }
    }

    #[test]
    fn collections_and_composition() {
        let mut rng = test_runner::TestRng::from_name("vecs");
        let strat = prop::collection::vec(("[a-z]{1,2}", any::<bool>()), 0..5);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v.len() < 5);
        }
        let one = prop_oneof![Just(0u8), (1u8..4).prop_map(|x| x * 10)];
        for _ in 0..100 {
            let x = Strategy::generate(&one, &mut rng);
            assert!(x == 0 || (10..40).contains(&x));
        }
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 64, 8, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = test_runner::TestRng::from_name("tree");
        for _ in 0..200 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 5 + 1, "{t:?}");
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0usize..10, b in "[x-z]{2}") {
            prop_assert!(a < 10);
            prop_assert_eq!(b.chars().count(), 2);
            prop_assert_ne!(b, "");
        }
    }
}
