//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of `bytes::Bytes` the workspace uses: an immutable,
//! cheaply cloneable byte buffer backed by `Arc<[u8]>`. Unlike the real
//! crate there is no zero-copy slicing machinery — every constructor copies
//! once into a shared allocation, after which clones are refcount bumps.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the contents as a plain byte slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes(Arc::from(s.into_bytes()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes(Arc::from(&v[..]))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_eq() {
        assert_eq!(Bytes::from("abc"), Bytes::from(vec![b'a', b'b', b'c']));
        assert_eq!(Bytes::copy_from_slice(b"xy").len(), 2);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(&b"payload"[..]), Bytes::from("payload"));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from("shared");
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn deref_slicing() {
        let b = Bytes::from("hello");
        assert_eq!(&b[1..3], b"el");
        assert_eq!(b.to_vec(), b"hello");
    }
}
