//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the slice of `crossbeam::channel` this workspace uses: an
//! unbounded MPMC channel. The std `mpsc::Receiver` is single-consumer, so
//! the stand-in wraps it in `Arc<Mutex<…>>` — receivers clone the handle and
//! take the lock only for the duration of the blocking `recv`, which keeps
//! multiple workers draining the same queue concurrently (each dequeued item
//! is processed outside the lock).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Unconditional Debug (no `T: Debug` bound), like the real crate — the
    // payload may be an unprintable closure.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed
    /// and drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel. Cloneable; clones
    /// compete for items (MPMC work-queue semantics).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or every sender is dropped and the
        /// queue is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// Returns an item if one is immediately available.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::collections::HashSet;

        #[test]
        fn send_and_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_compete_for_items() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let mut all = HashSet::new();
            for h in handles {
                for v in h.join().unwrap() {
                    assert!(all.insert(v), "item {v} delivered twice");
                }
            }
            assert_eq!(all.len(), 100);
        }
    }
}
