//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors the slice of criterion's API the workspace benches use
//! (`Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`, `criterion_main!`) on top of a plain wall-clock
//! harness: warm up, calibrate an iteration count per sample, then time
//! `sample_size` samples and report min/mean/max per-iteration latency.
//! No statistics beyond that — good enough for relative comparisons in an
//! environment without crates.io access.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement configuration plus the entry point for registering benches.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent running the routine untimed before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Total time budget split across the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Runs a single benchmark and prints its summary line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, id, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Overrides the group's measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(self.criterion, &full, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(self.criterion, &full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op in this stand-in).
    pub fn finish(self) {}
}

/// Identifies a benchmark as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form, for groups where the group name is the function.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into the display id used in reports; mirrors criterion's
/// acceptance of both `&str` and `BenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units of work per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many items each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    /// Per-sample mean iteration durations, collected by `iter`.
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine` over calibrated batches; excludes nothing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed, and measure roughly how long one call takes.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000_000 {
                break;
            }
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        let budget = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters_per_sample as u32);
        }
    }

    /// Times `routine` only; `setup` runs before each iteration, untimed.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        // Setup may be expensive, so calibrate with a single warm iteration
        // and cap iterations per sample low.
        let input = setup();
        let warm_start = Instant::now();
        std::hint::black_box(routine(input));
        let per_iter = warm_start.elapsed();
        let budget = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut timed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                timed += start.elapsed();
            }
            self.samples.push(timed / iters_per_sample as u32);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    config: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: config.sample_size,
        warm_up_time: config.warm_up_time,
        measurement_time: config.measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no measurement: closure never called iter)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let mean = bencher
        .samples
        .iter()
        .sum::<Duration>()
        .checked_div(bencher.samples.len() as u32)
        .unwrap_or_default();
    let mut line = format!(
        "{:<40} time: [{} {} {}]",
        id,
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  thrpt: {:.3} MiB/s",
                        n as f64 / secs / (1024.0 * 1024.0)
                    ));
                }
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Builds a function that runs a list of benchmark targets.
///
/// Supports both the plain list form and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Builds a `main` that runs each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4))
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(8));
        group.bench_function("plain", |b| b.iter(|| 0u8));
        group.bench_with_input(BenchmarkId::new("with", 3), &3u32, |b, &n| b.iter(|| n * 2));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
            b.iter_with_setup(Vec::<u32>::new, move |mut v| {
                v.push(n);
                v
            })
        });
        group.finish();
    }
}
