//! Failure handling: retries, ranked failover, and redundant invocation.
//!
//! §2.1: "If a service is unresponsive, the rich SDK has the ability to
//! retry a service multiple times. The number of retries can be specified
//! by the user… It would generally be preferable to start with higher
//! ranked services and continue with lower ranked services until a
//! responsive service is found. The number of times to retry each service
//! … may be different for different services." And: "it is sometimes
//! desirable to invoke more than one service instead of just picking a
//! single one" — for redundancy or to combine/compare outputs.

use crate::monitor::{duration_ms, ServiceMonitor};
use crate::SdkError;
use cogsdk_obs::{EventKind, SpanCtx, Telemetry};
use cogsdk_sim::service::{Outcome, Request, Response, ServiceError, SimService};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// The metric/event outcome label for a service result.
pub fn outcome_kind(result: &Result<Response, ServiceError>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(e) => e.kind(),
    }
}

/// How long to wait between retry attempts.
///
/// Backoff matters when failures are bursty (a service mid-outage keeps
/// failing fast): spacing retries out trades latency for a higher chance
/// the outage has passed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// Retry immediately.
    None,
    /// Wait a fixed delay before every retry.
    Fixed(Duration),
    /// Wait `base · factor^attempt`, capped at `max`.
    Exponential {
        /// Delay before the first retry.
        base: Duration,
        /// Multiplier per subsequent retry.
        factor: f64,
        /// Upper bound on any single delay.
        max: Duration,
    },
}

impl Backoff {
    /// A conventional exponential policy: 50 ms doubling up to 2 s.
    pub fn standard_exponential() -> Backoff {
        Backoff::Exponential {
            base: Duration::from_millis(50),
            factor: 2.0,
            max: Duration::from_secs(2),
        }
    }

    /// The delay before retry number `retry` (0-based).
    pub fn delay(&self, retry: usize) -> Duration {
        match *self {
            Backoff::None => Duration::ZERO,
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, factor, max } => {
                let scaled = base.as_secs_f64() * factor.powi(retry as i32);
                Duration::from_secs_f64(scaled).min(max)
            }
        }
    }
}

/// Retry/failover configuration.
#[derive(Debug, Clone)]
pub struct InvocationPolicy {
    /// Default number of retries per service (beyond the first attempt).
    pub default_retries: usize,
    /// Per-service retry overrides (§2.1: "may be different for different
    /// services").
    pub per_service_retries: HashMap<String, usize>,
    /// Maximum number of ranked candidates to try before giving up.
    pub max_services: usize,
    /// Delay schedule between retries.
    pub backoff: Backoff,
}

impl Default for InvocationPolicy {
    fn default() -> InvocationPolicy {
        InvocationPolicy {
            default_retries: 2,
            per_service_retries: HashMap::new(),
            max_services: usize::MAX,
            backoff: Backoff::None,
        }
    }
}

impl InvocationPolicy {
    /// Retries allowed for `service`.
    pub fn retries_for(&self, service: &str) -> usize {
        self.per_service_retries
            .get(service)
            .copied()
            .unwrap_or(self.default_retries)
    }
}

/// How redundant multi-service invocation treats its candidates (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedundantMode {
    /// Invoke every candidate and return all results (comparison /
    /// aggregation use case).
    All,
    /// Invoke candidates in rank order, stopping at the first success
    /// (availability use case).
    FirstSuccess,
    /// Invoke every candidate but require at least this many successes.
    Quorum(usize),
}

/// Invokes one service with up to `retries` retries, recording every
/// attempt in the monitor. Non-retryable failures (bad request, quota)
/// abort immediately.
pub fn invoke_with_retry(
    service: &Arc<SimService>,
    request: &Request,
    retries: usize,
    monitor: &ServiceMonitor,
) -> Outcome {
    invoke_with_retry_counted(service, request, retries, monitor).0
}

/// As [`invoke_with_retry`], also returning how many attempts were made.
pub fn invoke_with_retry_counted(
    service: &Arc<SimService>,
    request: &Request,
    retries: usize,
    monitor: &ServiceMonitor,
) -> (Outcome, usize) {
    invoke_with_backoff(service, request, retries, Backoff::None, monitor)
}

/// Full-control retry: up to `retries` retries with `backoff` delays
/// between attempts (realized on the simulation timeline). Non-retryable
/// failures abort immediately. Returns the final outcome and the number
/// of attempts made.
pub fn invoke_with_backoff(
    service: &Arc<SimService>,
    request: &Request,
    retries: usize,
    backoff: Backoff,
    monitor: &ServiceMonitor,
) -> (Outcome, usize) {
    let telemetry = Telemetry::disabled();
    let ctx = telemetry.tracer().new_trace();
    invoke_with_backoff_traced(
        service, request, retries, backoff, monitor, &telemetry, &ctx,
    )
}

/// As [`invoke_with_backoff`], emitting one [`EventKind::Attempt`] per
/// attempt and an [`EventKind::RetryBackoff`] per backoff sleep under
/// `ctx`, plus attempt/error counters and the attempt-latency histogram.
pub fn invoke_with_backoff_traced(
    service: &Arc<SimService>,
    request: &Request,
    retries: usize,
    backoff: Backoff,
    monitor: &ServiceMonitor,
    telemetry: &Telemetry,
    ctx: &SpanCtx,
) -> (Outcome, usize) {
    let mut last = None;
    for attempt in 1..=retries + 1 {
        if attempt > 1 {
            let delay = backoff.delay(attempt - 2);
            if !delay.is_zero() {
                telemetry.tracer().emit(ctx, || EventKind::RetryBackoff {
                    service: service.name().to_string(),
                    retry: attempt - 1,
                    delay_ms: duration_ms(delay),
                });
                service.realize_delay(delay);
            }
        }
        let outcome = service.invoke(request);
        monitor.record(service.name(), &outcome, request.params.clone());
        record_attempt(telemetry, ctx, service.name(), attempt, &outcome);
        match &outcome.result {
            Ok(_) => return (outcome, attempt),
            Err(e) if !e.is_retryable() => return (outcome, attempt),
            Err(_) => last = Some(outcome),
        }
    }
    (last.expect("at least one attempt was made"), retries + 1)
}

fn record_attempt(
    telemetry: &Telemetry,
    ctx: &SpanCtx,
    service: &str,
    attempt: usize,
    outcome: &Outcome,
) {
    if !telemetry.is_enabled() {
        return;
    }
    let kind = outcome_kind(&outcome.result);
    let latency_ms = duration_ms(outcome.latency);
    telemetry.tracer().emit(ctx, || EventKind::Attempt {
        service: service.to_string(),
        attempt,
        outcome: kind,
        latency_ms,
    });
    let metrics = telemetry.metrics();
    metrics.inc_counter(
        "sdk_attempts_total",
        &[("service", service), ("outcome", kind)],
    );
    metrics.observe(
        "sdk_attempt_latency_ms",
        &[("service", service)],
        latency_ms,
    );
    if let Err(e) = &outcome.result {
        metrics.inc_counter(
            "sdk_errors_total",
            &[("service", service), ("kind", e.kind())],
        );
    }
}

/// The result of a successful failover: which service answered and how.
#[derive(Debug, Clone)]
pub struct FailoverSuccess {
    /// The responding service's name.
    pub service: String,
    /// Its response.
    pub response: Response,
    /// How many services were tried (including the successful one).
    pub services_tried: usize,
    /// Total attempts across all services.
    pub attempts: usize,
    /// Latency of the successful attempt in (virtual) milliseconds —
    /// what a latency prediction for the winning service should be
    /// compared against.
    pub latency_ms: f64,
}

/// Tries `candidates` in order (callers pass them ranked best-first),
/// retrying each per `policy`, until one responds.
///
/// # Errors
///
/// [`SdkError::Rejected`] as soon as any service rejects the request as
/// malformed (other services would too); [`SdkError::AllFailed`] if every
/// candidate fails; [`SdkError::EmptyClass`] if `candidates` is empty.
pub fn invoke_failover(
    candidates: &[Arc<SimService>],
    request: &Request,
    policy: &InvocationPolicy,
    monitor: &ServiceMonitor,
) -> Result<FailoverSuccess, SdkError> {
    let telemetry = Telemetry::disabled();
    let ctx = telemetry.tracer().new_trace();
    invoke_failover_traced(candidates, request, policy, monitor, &telemetry, &ctx)
}

/// As [`invoke_failover`], emitting an [`EventKind::FailoverLeg`] child
/// span per candidate (with the attempts nested under it).
pub fn invoke_failover_traced(
    candidates: &[Arc<SimService>],
    request: &Request,
    policy: &InvocationPolicy,
    monitor: &ServiceMonitor,
    telemetry: &Telemetry,
    ctx: &SpanCtx,
) -> Result<FailoverSuccess, SdkError> {
    if candidates.is_empty() {
        return Err(SdkError::EmptyClass("<no candidates>".into()));
    }
    let mut attempts = 0usize;
    let mut last_error = String::new();
    for (i, service) in candidates.iter().take(policy.max_services).enumerate() {
        let leg = telemetry.tracer().child(ctx);
        telemetry.tracer().emit(&leg, || EventKind::FailoverLeg {
            service: service.name().to_string(),
            rank: i,
        });
        telemetry
            .metrics()
            .inc_counter("sdk_failover_legs_total", &[("service", service.name())]);
        let retries = policy.retries_for(service.name());
        let (outcome, made) = invoke_with_backoff_traced(
            service,
            request,
            retries,
            policy.backoff,
            monitor,
            telemetry,
            &leg,
        );
        attempts += made;
        match outcome.result {
            Ok(response) => {
                return Ok(FailoverSuccess {
                    service: service.name().to_string(),
                    response,
                    services_tried: i + 1,
                    attempts,
                    latency_ms: duration_ms(outcome.latency),
                })
            }
            Err(ServiceError::BadRequest(msg)) => return Err(SdkError::Rejected(msg)),
            Err(e) => last_error = format!("{}: {e}", service.name()),
        }
    }
    Err(SdkError::AllFailed(last_error))
}

/// Outcome of one leg of a redundant invocation.
#[derive(Debug, Clone)]
pub struct RedundantLeg {
    /// The service invoked.
    pub service: String,
    /// Its result.
    pub result: Result<Response, ServiceError>,
}

/// Invokes multiple candidates per `mode`. Legs run sequentially in rank
/// order here; the [`sdk`](crate::sdk) facade offers a thread-pooled
/// parallel variant (§2.1 discusses both).
///
/// # Errors
///
/// [`SdkError::AllFailed`] if `mode` is `FirstSuccess` and all fail, or a
/// quorum is not met.
pub fn invoke_redundant(
    candidates: &[Arc<SimService>],
    request: &Request,
    mode: RedundantMode,
    policy: &InvocationPolicy,
    monitor: &ServiceMonitor,
) -> Result<Vec<RedundantLeg>, SdkError> {
    let telemetry = Telemetry::disabled();
    let ctx = telemetry.tracer().new_trace();
    invoke_redundant_traced(candidates, request, mode, policy, monitor, &telemetry, &ctx)
}

/// As [`invoke_redundant`], emitting [`EventKind::RedundantLegWon`] for
/// the leg whose response wins (the first success) and
/// [`EventKind::RedundantLegLost`] for every other leg.
pub fn invoke_redundant_traced(
    candidates: &[Arc<SimService>],
    request: &Request,
    mode: RedundantMode,
    policy: &InvocationPolicy,
    monitor: &ServiceMonitor,
    telemetry: &Telemetry,
    ctx: &SpanCtx,
) -> Result<Vec<RedundantLeg>, SdkError> {
    if candidates.is_empty() {
        return Err(SdkError::EmptyClass("<no candidates>".into()));
    }
    let mut legs = Vec::new();
    for service in candidates.iter().take(policy.max_services) {
        let leg_ctx = telemetry.tracer().child(ctx);
        let retries = policy.retries_for(service.name());
        let (outcome, _) = invoke_with_backoff_traced(
            service,
            request,
            retries,
            policy.backoff,
            monitor,
            telemetry,
            &leg_ctx,
        );
        let success = outcome.result.is_ok();
        legs.push(RedundantLeg {
            service: service.name().to_string(),
            result: outcome.result,
        });
        if mode == RedundantMode::FirstSuccess && success {
            break;
        }
    }
    if telemetry.is_enabled() {
        let winner = legs.iter().position(|l| l.result.is_ok());
        for (i, leg) in legs.iter().enumerate() {
            let won = winner == Some(i);
            telemetry.tracer().emit(ctx, || {
                if won {
                    EventKind::RedundantLegWon {
                        service: leg.service.clone(),
                    }
                } else {
                    EventKind::RedundantLegLost {
                        service: leg.service.clone(),
                        outcome: outcome_kind(&leg.result),
                    }
                }
            });
            telemetry.metrics().inc_counter(
                "sdk_redundant_legs_total",
                &[
                    ("service", &leg.service),
                    ("result", if won { "won" } else { "lost" }),
                ],
            );
        }
    }
    let successes = legs.iter().filter(|l| l.result.is_ok()).count();
    match mode {
        RedundantMode::All => Ok(legs),
        RedundantMode::FirstSuccess => {
            if successes > 0 {
                Ok(legs)
            } else {
                Err(SdkError::AllFailed("no service responded".into()))
            }
        }
        RedundantMode::Quorum(need) => {
            if successes >= need {
                Ok(legs)
            } else {
                Err(SdkError::AllFailed(format!(
                    "quorum not met: {successes}/{need} successes"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_json::json;
    use cogsdk_sim::failure::FailurePlan;
    use cogsdk_sim::latency::LatencyModel;
    use cogsdk_sim::quota::Quota;
    use cogsdk_sim::SimEnv;
    use std::time::Duration;

    fn svc(env: &SimEnv, name: &str, fail_rate: f64) -> Arc<SimService> {
        SimService::builder(name, "demo")
            .latency(LatencyModel::constant_ms(5.0))
            .failures(FailurePlan::flaky(fail_rate))
            .build(env)
    }

    fn req() -> Request {
        Request::new("op", json!({"q": 1}))
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let env = SimEnv::with_seed(3);
        let monitor = ServiceMonitor::new();
        let flaky = svc(&env, "flaky", 0.5);
        let mut successes = 0;
        for _ in 0..100 {
            if invoke_with_retry(&flaky, &req(), 5, &monitor)
                .result
                .is_ok()
            {
                successes += 1;
            }
        }
        // With 5 retries at 50% failure, success ≈ 1 - 0.5^6 ≈ 98.4%.
        assert!(successes >= 90, "successes={successes}");
        let history = monitor.history("flaky").unwrap();
        assert!(history.observations().len() > 100, "attempts recorded");
    }

    #[test]
    fn retry_does_not_retry_bad_requests() {
        let env = SimEnv::with_seed(4);
        let monitor = ServiceMonitor::new();
        let rejecting = SimService::builder("rejects", "demo")
            .handler(|_| Err("nope".into()))
            .build(&env);
        let out = invoke_with_retry(&rejecting, &req(), 10, &monitor);
        assert!(matches!(out.result, Err(ServiceError::BadRequest(_))));
        assert_eq!(monitor.history("rejects").unwrap().observations().len(), 1);
    }

    #[test]
    fn retry_does_not_retry_quota_exhaustion() {
        let env = SimEnv::with_seed(5);
        let monitor = ServiceMonitor::new();
        let limited = SimService::builder("limited", "demo")
            .quota(Quota::new(1, Duration::from_secs(3600)))
            .build(&env);
        assert!(invoke_with_retry(&limited, &req(), 0, &monitor)
            .result
            .is_ok());
        let out = invoke_with_retry(&limited, &req(), 10, &monitor);
        assert!(matches!(out.result, Err(ServiceError::QuotaExceeded)));
        // 1 success + 1 quota rejection = 2 observations, not 12.
        assert_eq!(monitor.history("limited").unwrap().observations().len(), 2);
    }

    #[test]
    fn failover_skips_dead_service() {
        let env = SimEnv::with_seed(6);
        let monitor = ServiceMonitor::new();
        let dead = svc(&env, "dead", 1.0);
        let alive = svc(&env, "alive", 0.0);
        let policy = InvocationPolicy {
            default_retries: 1,
            ..InvocationPolicy::default()
        };
        let ok = invoke_failover(&[dead, alive], &req(), &policy, &monitor).unwrap();
        assert_eq!(ok.service, "alive");
        assert_eq!(ok.services_tried, 2);
        assert_eq!(ok.attempts, 3); // dead: 2 attempts, alive: 1
    }

    #[test]
    fn failover_all_dead_reports_all_failed() {
        let env = SimEnv::with_seed(7);
        let monitor = ServiceMonitor::new();
        let candidates = vec![svc(&env, "d1", 1.0), svc(&env, "d2", 1.0)];
        let err = invoke_failover(&candidates, &req(), &InvocationPolicy::default(), &monitor)
            .unwrap_err();
        assert!(matches!(err, SdkError::AllFailed(_)));
    }

    #[test]
    fn failover_respects_max_services() {
        let env = SimEnv::with_seed(8);
        let monitor = ServiceMonitor::new();
        let candidates = vec![svc(&env, "d1", 1.0), svc(&env, "alive", 0.0)];
        let policy = InvocationPolicy {
            max_services: 1,
            ..InvocationPolicy::default()
        };
        assert!(invoke_failover(&candidates, &req(), &policy, &monitor).is_err());
    }

    #[test]
    fn failover_bad_request_aborts_immediately() {
        let env = SimEnv::with_seed(9);
        let monitor = ServiceMonitor::new();
        let rejecting = SimService::builder("rejects", "demo")
            .handler(|_| Err("malformed".into()))
            .build(&env);
        let alive = svc(&env, "alive", 0.0);
        let err = invoke_failover(
            &[rejecting, alive],
            &req(),
            &InvocationPolicy::default(),
            &monitor,
        )
        .unwrap_err();
        assert!(matches!(err, SdkError::Rejected(_)), "{err:?}");
    }

    #[test]
    fn failover_per_service_retry_overrides() {
        let env = SimEnv::with_seed(10);
        let monitor = ServiceMonitor::new();
        let dead = svc(&env, "dead", 1.0);
        let alive = svc(&env, "alive", 0.0);
        let policy = InvocationPolicy {
            default_retries: 0,
            per_service_retries: [("dead".to_string(), 4)].into_iter().collect(),
            max_services: usize::MAX,
            backoff: Backoff::None,
        };
        let ok = invoke_failover(&[dead, alive], &req(), &policy, &monitor).unwrap();
        assert_eq!(ok.attempts, 6); // dead 5, alive 1
    }

    #[test]
    fn redundant_all_returns_every_leg() {
        let env = SimEnv::with_seed(11);
        let monitor = ServiceMonitor::new();
        let candidates = vec![
            svc(&env, "a", 0.0),
            svc(&env, "b", 0.0),
            svc(&env, "c", 1.0),
        ];
        let legs = invoke_redundant(
            &candidates,
            &req(),
            RedundantMode::All,
            &InvocationPolicy {
                default_retries: 0,
                ..InvocationPolicy::default()
            },
            &monitor,
        )
        .unwrap();
        assert_eq!(legs.len(), 3);
        assert_eq!(legs.iter().filter(|l| l.result.is_ok()).count(), 2);
    }

    #[test]
    fn redundant_first_success_stops_early() {
        let env = SimEnv::with_seed(12);
        let monitor = ServiceMonitor::new();
        let candidates = vec![svc(&env, "a", 0.0), svc(&env, "b", 0.0)];
        let legs = invoke_redundant(
            &candidates,
            &req(),
            RedundantMode::FirstSuccess,
            &InvocationPolicy::default(),
            &monitor,
        )
        .unwrap();
        assert_eq!(legs.len(), 1);
        assert_eq!(legs[0].service, "a");
        assert!(monitor.history("b").is_none(), "b never invoked");
    }

    #[test]
    fn redundant_quorum_enforced() {
        let env = SimEnv::with_seed(13);
        let monitor = ServiceMonitor::new();
        let candidates = vec![
            svc(&env, "a", 0.0),
            svc(&env, "b", 1.0),
            svc(&env, "c", 1.0),
        ];
        let policy = InvocationPolicy {
            default_retries: 0,
            ..InvocationPolicy::default()
        };
        assert!(invoke_redundant(
            &candidates,
            &req(),
            RedundantMode::Quorum(1),
            &policy,
            &monitor
        )
        .is_ok());
        let err = invoke_redundant(
            &candidates,
            &req(),
            RedundantMode::Quorum(2),
            &policy,
            &monitor,
        )
        .unwrap_err();
        assert!(matches!(err, SdkError::AllFailed(_)));
    }

    #[test]
    fn backoff_schedules() {
        assert_eq!(Backoff::None.delay(0), Duration::ZERO);
        assert_eq!(
            Backoff::Fixed(Duration::from_millis(10)).delay(3),
            Duration::from_millis(10)
        );
        let exp = Backoff::standard_exponential();
        assert_eq!(exp.delay(0), Duration::from_millis(50));
        assert_eq!(exp.delay(1), Duration::from_millis(100));
        assert_eq!(exp.delay(2), Duration::from_millis(200));
        assert_eq!(exp.delay(10), Duration::from_secs(2), "capped");
    }

    #[test]
    fn backoff_advances_virtual_clock_between_retries() {
        let env = SimEnv::with_seed(14);
        let monitor = ServiceMonitor::new();
        let dead = svc(&env, "dead", 1.0);
        let t0 = env.clock().now();
        let (outcome, attempts) = invoke_with_backoff(
            &dead,
            &req(),
            2,
            Backoff::Fixed(Duration::from_millis(100)),
            &monitor,
        );
        assert!(outcome.result.is_err());
        assert_eq!(attempts, 3);
        let elapsed = env.clock().now().since(t0);
        // 3 failure detections plus 2 backoff delays of 100ms.
        assert!(
            elapsed >= Duration::from_millis(200),
            "elapsed {elapsed:?} must include both backoff delays"
        );
    }

    #[test]
    fn zero_backoff_adds_no_latency_on_success() {
        let env = SimEnv::with_seed(15);
        let monitor = ServiceMonitor::new();
        let alive = svc(&env, "alive", 0.0);
        let t0 = env.clock().now();
        invoke_with_backoff(&alive, &req(), 5, Backoff::standard_exponential(), &monitor);
        // Success on the first attempt: no backoff is realized.
        assert_eq!(env.clock().now().since(t0), Duration::from_millis(5));
    }

    #[test]
    fn empty_candidates_error() {
        let monitor = ServiceMonitor::new();
        assert!(matches!(
            invoke_failover(&[], &req(), &InvocationPolicy::default(), &monitor),
            Err(SdkError::EmptyClass(_))
        ));
        assert!(invoke_redundant(
            &[],
            &req(),
            RedundantMode::All,
            &InvocationPolicy::default(),
            &monitor
        )
        .is_err());
    }
}
