//! Failure handling: retries, ranked failover, and redundant invocation.
//!
//! §2.1: "If a service is unresponsive, the rich SDK has the ability to
//! retry a service multiple times. The number of retries can be specified
//! by the user… It would generally be preferable to start with higher
//! ranked services and continue with lower ranked services until a
//! responsive service is found. The number of times to retry each service
//! … may be different for different services." And: "it is sometimes
//! desirable to invoke more than one service instead of just picking a
//! single one" — for redundancy or to combine/compare outputs.

use crate::monitor::{duration_ms, ServiceMonitor};
use crate::resilience::{Admission, Deadline, Governance};
use crate::SdkError;
use cogsdk_obs::{EventKind, SpanCtx, Telemetry};
use cogsdk_sim::rng::Rng;
use cogsdk_sim::service::{Outcome, Request, Response, ServiceError, SimService};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The metric/event outcome label for a service result.
pub fn outcome_kind(result: &Result<Response, ServiceError>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(e) => e.kind(),
    }
}

/// How long to wait between retry attempts.
///
/// Backoff matters when failures are bursty (a service mid-outage keeps
/// failing fast): spacing retries out trades latency for a higher chance
/// the outage has passed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// Retry immediately.
    None,
    /// Wait a fixed delay before every retry.
    Fixed(Duration),
    /// Wait `base · factor^attempt`, capped at `max`.
    Exponential {
        /// Delay before the first retry.
        base: Duration,
        /// Multiplier per subsequent retry.
        factor: f64,
        /// Upper bound on any single delay.
        max: Duration,
    },
    /// AWS-style *full jitter*: wait a uniform random delay in
    /// `[0, min(max, base · factor^attempt)]`. Spreads simultaneous
    /// retries out so callers hit by the same outage do not re-converge
    /// on the service in synchronized waves.
    FullJitter {
        /// Envelope before the first retry.
        base: Duration,
        /// Envelope multiplier per subsequent retry.
        factor: f64,
        /// Upper bound on any envelope.
        max: Duration,
    },
}

/// Seeds one deterministic-but-distinct jitter stream per invocation, so
/// concurrent callers sharing a backoff policy draw different delays.
static JITTER_SEQ: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

fn jitter_rng() -> Rng {
    Rng::new(JITTER_SEQ.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed))
}

impl Backoff {
    /// A conventional exponential policy: 50 ms doubling up to 2 s.
    pub fn standard_exponential() -> Backoff {
        Backoff::Exponential {
            base: Duration::from_millis(50),
            factor: 2.0,
            max: Duration::from_secs(2),
        }
    }

    /// The full-jitter variant of
    /// [`standard_exponential`](Self::standard_exponential): same
    /// 50 ms-doubling-to-2 s envelope, but each delay is drawn uniformly
    /// from `[0, envelope]`.
    pub fn standard_full_jitter() -> Backoff {
        Backoff::FullJitter {
            base: Duration::from_millis(50),
            factor: 2.0,
            max: Duration::from_secs(2),
        }
    }

    fn envelope(base: Duration, factor: f64, max: Duration, retry: usize) -> Duration {
        // Cap in the f64 domain: `factor.powi(retry)` overflows to
        // infinity at large retry counts (and `0 × ∞` is NaN), which
        // `Duration::from_secs_f64` panics on. Anything not strictly
        // below the cap — including inf/NaN — takes the cap.
        let max_s = max.as_secs_f64();
        let scaled = base.as_secs_f64() * factor.powi(retry.min(i32::MAX as usize) as i32);
        if scaled.is_nan() || scaled >= max_s {
            return max;
        }
        if scaled <= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(scaled)
    }

    /// The delay before retry number `retry` (0-based). For
    /// [`Backoff::FullJitter`] this is the *envelope* (the worst case);
    /// use [`delay_sampled`](Self::delay_sampled) for the actual draw.
    pub fn delay(&self, retry: usize) -> Duration {
        match *self {
            Backoff::None => Duration::ZERO,
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, factor, max }
            | Backoff::FullJitter { base, factor, max } => {
                Backoff::envelope(base, factor, max, retry)
            }
        }
    }

    /// The concrete delay before retry number `retry`: deterministic for
    /// the non-jittered policies, a uniform draw in `[0, envelope]` for
    /// [`Backoff::FullJitter`].
    pub fn delay_sampled(&self, retry: usize, rng: &mut Rng) -> Duration {
        match *self {
            Backoff::FullJitter { base, factor, max } => {
                Backoff::envelope(base, factor, max, retry).mul_f64(rng.next_f64())
            }
            _ => self.delay(retry),
        }
    }
}

/// Retry/failover configuration.
#[derive(Debug, Clone)]
pub struct InvocationPolicy {
    /// Default number of retries per service (beyond the first attempt).
    pub default_retries: usize,
    /// Per-service retry overrides (§2.1: "may be different for different
    /// services").
    pub per_service_retries: HashMap<String, usize>,
    /// Maximum number of ranked candidates to try before giving up.
    pub max_services: usize,
    /// Delay schedule between retries.
    pub backoff: Backoff,
}

impl Default for InvocationPolicy {
    fn default() -> InvocationPolicy {
        InvocationPolicy {
            default_retries: 2,
            per_service_retries: HashMap::new(),
            max_services: usize::MAX,
            backoff: Backoff::None,
        }
    }
}

impl InvocationPolicy {
    /// Retries allowed for `service`.
    pub fn retries_for(&self, service: &str) -> usize {
        self.per_service_retries
            .get(service)
            .copied()
            .unwrap_or(self.default_retries)
    }
}

/// How redundant multi-service invocation treats its candidates (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedundantMode {
    /// Invoke every candidate and return all results (comparison /
    /// aggregation use case).
    All,
    /// Invoke candidates in rank order, stopping at the first success
    /// (availability use case).
    FirstSuccess,
    /// Invoke every candidate but require at least this many successes.
    Quorum(usize),
}

/// Invokes one service with up to `retries` retries, recording every
/// attempt in the monitor. Non-retryable failures (bad request, quota)
/// abort immediately.
pub fn invoke_with_retry(
    service: &Arc<SimService>,
    request: &Request,
    retries: usize,
    monitor: &ServiceMonitor,
) -> Outcome {
    invoke_with_retry_counted(service, request, retries, monitor).0
}

/// As [`invoke_with_retry`], also returning how many attempts were made.
pub fn invoke_with_retry_counted(
    service: &Arc<SimService>,
    request: &Request,
    retries: usize,
    monitor: &ServiceMonitor,
) -> (Outcome, usize) {
    invoke_with_backoff(service, request, retries, Backoff::None, monitor)
}

/// Deadline-aware [`invoke_with_retry`]: refuses to start once `deadline`
/// has expired and stops retrying when the budget runs out mid-sequence.
/// The convenience entry point for callers (KB federation, NLU batches)
/// that thread a budget but not full telemetry.
///
/// # Errors
///
/// [`SdkError::DeadlineExceeded`] if the deadline has already passed when
/// called.
pub fn invoke_with_retry_within(
    service: &Arc<SimService>,
    request: &Request,
    retries: usize,
    monitor: &ServiceMonitor,
    deadline: Deadline,
) -> Result<Outcome, SdkError> {
    if deadline.is_expired(service.clock().now()) {
        return Err(SdkError::DeadlineExceeded(format!(
            "no budget left to invoke {}",
            service.name()
        )));
    }
    let telemetry = Telemetry::disabled();
    let ctx = telemetry.tracer().new_trace();
    let gov = Governance::with_deadline(deadline);
    let (outcome, _) = invoke_with_backoff_governed(
        service,
        request,
        retries,
        Backoff::None,
        monitor,
        &telemetry,
        &ctx,
        &gov,
    );
    Ok(outcome)
}

/// Full-control retry: up to `retries` retries with `backoff` delays
/// between attempts (realized on the simulation timeline). Non-retryable
/// failures abort immediately. Returns the final outcome and the number
/// of attempts made.
pub fn invoke_with_backoff(
    service: &Arc<SimService>,
    request: &Request,
    retries: usize,
    backoff: Backoff,
    monitor: &ServiceMonitor,
) -> (Outcome, usize) {
    let telemetry = Telemetry::disabled();
    let ctx = telemetry.tracer().new_trace();
    invoke_with_backoff_traced(
        service, request, retries, backoff, monitor, &telemetry, &ctx,
    )
}

/// As [`invoke_with_backoff`], emitting one [`EventKind::Attempt`] per
/// attempt and an [`EventKind::RetryBackoff`] per backoff sleep under
/// `ctx`, plus attempt/error counters and the attempt-latency histogram.
pub fn invoke_with_backoff_traced(
    service: &Arc<SimService>,
    request: &Request,
    retries: usize,
    backoff: Backoff,
    monitor: &ServiceMonitor,
    telemetry: &Telemetry,
    ctx: &SpanCtx,
) -> (Outcome, usize) {
    invoke_with_backoff_governed(
        service,
        request,
        retries,
        backoff,
        monitor,
        telemetry,
        ctx,
        &Governance::none(),
    )
}

/// As [`invoke_with_backoff_traced`], additionally governed by `gov`:
/// the deadline stops retrying once the remaining budget cannot cover the
/// next backoff sleep (the first attempt always runs — an expired budget
/// is the *caller's* signal not to start), and every attempt result feeds
/// the service's circuit breaker, if one is registered.
#[allow(clippy::too_many_arguments)]
pub fn invoke_with_backoff_governed(
    service: &Arc<SimService>,
    request: &Request,
    retries: usize,
    backoff: Backoff,
    monitor: &ServiceMonitor,
    telemetry: &Telemetry,
    ctx: &SpanCtx,
    gov: &Governance,
) -> (Outcome, usize) {
    let mut jitter = jitter_rng();
    let mut last = None;
    for attempt in 1..=retries + 1 {
        if attempt > 1 {
            let delay = backoff.delay_sampled(attempt - 2, &mut jitter);
            let now = service.clock().now();
            let out_of_budget = match gov.deadline.remaining(now) {
                Some(rem) => rem.is_zero() || delay >= rem,
                None => false,
            };
            if out_of_budget {
                emit_deadline_exhausted(telemetry, ctx, "backoff");
                return (last.expect("a first attempt was made"), attempt - 1);
            }
            if !delay.is_zero() {
                telemetry.tracer().emit(ctx, || EventKind::RetryBackoff {
                    service: service.name().to_string(),
                    retry: attempt - 1,
                    delay_ms: duration_ms(delay),
                });
                service.realize_delay(delay);
            }
        }
        let outcome = service.invoke(request);
        monitor.record(service.name(), &outcome, request.params.clone());
        record_attempt(telemetry, ctx, service.name(), attempt, &outcome);
        if let Some(breakers) = &gov.breakers {
            // Bad requests and quota rejections say nothing about the
            // service's health; only real outcomes feed the breaker.
            match &outcome.result {
                Ok(_) => breakers.record(service.name(), true, ctx),
                Err(e) if e.is_retryable() => breakers.record(service.name(), false, ctx),
                Err(_) => {}
            }
        }
        match &outcome.result {
            Ok(_) => return (outcome, attempt),
            Err(e) if !e.is_retryable() => return (outcome, attempt),
            Err(_) => last = Some(outcome),
        }
    }
    (last.expect("at least one attempt was made"), retries + 1)
}

fn emit_deadline_exhausted(telemetry: &Telemetry, ctx: &SpanCtx, stage: &'static str) {
    telemetry
        .tracer()
        .emit(ctx, || EventKind::DeadlineExhausted { stage });
    telemetry
        .metrics()
        .inc_counter("sdk_deadline_exhausted_total", &[("stage", stage)]);
}

fn record_attempt(
    telemetry: &Telemetry,
    ctx: &SpanCtx,
    service: &str,
    attempt: usize,
    outcome: &Outcome,
) {
    if !telemetry.is_enabled() {
        return;
    }
    let kind = outcome_kind(&outcome.result);
    let latency_ms = duration_ms(outcome.latency);
    telemetry.tracer().emit(ctx, || EventKind::Attempt {
        service: service.to_string(),
        attempt,
        outcome: kind,
        latency_ms,
    });
    let metrics = telemetry.metrics();
    // RED metrics pick up a tenant label only when the request carries
    // one, so untenanted deployments keep their original series.
    let tenant = telemetry.tracer().tenant_name(ctx.tenant);
    match tenant.as_deref() {
        Some(t) => {
            metrics.inc_counter(
                "sdk_attempts_total",
                &[("service", service), ("outcome", kind), ("tenant", t)],
            );
            metrics.observe_with_exemplar(
                "sdk_attempt_latency_ms",
                &[("service", service), ("tenant", t)],
                latency_ms,
                ctx.trace.0,
            );
        }
        None => {
            metrics.inc_counter(
                "sdk_attempts_total",
                &[("service", service), ("outcome", kind)],
            );
            metrics.observe_with_exemplar(
                "sdk_attempt_latency_ms",
                &[("service", service)],
                latency_ms,
                ctx.trace.0,
            );
        }
    }
    if let Err(e) = &outcome.result {
        match tenant.as_deref() {
            Some(t) => metrics.inc_counter(
                "sdk_errors_total",
                &[("service", service), ("kind", e.kind()), ("tenant", t)],
            ),
            None => metrics.inc_counter(
                "sdk_errors_total",
                &[("service", service), ("kind", e.kind())],
            ),
        }
    }
}

/// The result of a successful failover: which service answered and how.
#[derive(Debug, Clone)]
pub struct FailoverSuccess {
    /// The responding service's name.
    pub service: String,
    /// Its response.
    pub response: Response,
    /// How many services were tried (including the successful one).
    pub services_tried: usize,
    /// Total attempts across all services.
    pub attempts: usize,
    /// Latency of the successful attempt in (virtual) milliseconds —
    /// what a latency prediction for the winning service should be
    /// compared against.
    pub latency_ms: f64,
}

/// Tries `candidates` in order (callers pass them ranked best-first),
/// retrying each per `policy`, until one responds.
///
/// # Errors
///
/// [`SdkError::Rejected`] as soon as any service rejects the request as
/// malformed (other services would too); [`SdkError::AllFailed`] if every
/// candidate fails; [`SdkError::EmptyClass`] if `candidates` is empty.
pub fn invoke_failover(
    candidates: &[Arc<SimService>],
    request: &Request,
    policy: &InvocationPolicy,
    monitor: &ServiceMonitor,
) -> Result<FailoverSuccess, SdkError> {
    let telemetry = Telemetry::disabled();
    let ctx = telemetry.tracer().new_trace();
    invoke_failover_traced(candidates, request, policy, monitor, &telemetry, &ctx)
}

/// As [`invoke_failover`], emitting an [`EventKind::FailoverLeg`] child
/// span per candidate (with the attempts nested under it).
pub fn invoke_failover_traced(
    candidates: &[Arc<SimService>],
    request: &Request,
    policy: &InvocationPolicy,
    monitor: &ServiceMonitor,
    telemetry: &Telemetry,
    ctx: &SpanCtx,
) -> Result<FailoverSuccess, SdkError> {
    invoke_failover_governed(
        candidates,
        request,
        policy,
        monitor,
        telemetry,
        ctx,
        &Governance::none(),
    )
}

/// As [`invoke_failover_traced`], additionally governed by `gov`: legs
/// whose circuit breaker is open are skipped without being attempted, and
/// no new leg starts after the deadline expires.
///
/// # Errors
///
/// In addition to [`invoke_failover`]'s errors:
/// [`SdkError::DeadlineExceeded`] when the budget runs out with no
/// success yet, and [`SdkError::CircuitOpen`] when *every* candidate was
/// skipped because its breaker is open.
pub fn invoke_failover_governed(
    candidates: &[Arc<SimService>],
    request: &Request,
    policy: &InvocationPolicy,
    monitor: &ServiceMonitor,
    telemetry: &Telemetry,
    ctx: &SpanCtx,
    gov: &Governance,
) -> Result<FailoverSuccess, SdkError> {
    if candidates.is_empty() {
        return Err(SdkError::EmptyClass("<no candidates>".into()));
    }
    let mut attempts = 0usize;
    let mut legs_run = 0usize;
    let mut last_error = String::new();
    let mut min_retry_after: Option<Duration> = None;
    for (i, service) in candidates.iter().take(policy.max_services).enumerate() {
        if gov.deadline.is_expired(service.clock().now()) {
            emit_deadline_exhausted(telemetry, ctx, "failover");
            return Err(SdkError::DeadlineExceeded(format!(
                "budget exhausted after {attempts} attempts across {legs_run} services"
            )));
        }
        if let Some(breakers) = &gov.breakers {
            if let Admission::Rejected { retry_after } = breakers.admit(service.name(), ctx) {
                min_retry_after = Some(match min_retry_after {
                    Some(cur) => cur.min(retry_after),
                    None => retry_after,
                });
                last_error = format!("{}: circuit open", service.name());
                continue;
            }
        }
        legs_run += 1;
        let leg = telemetry.tracer().child(ctx);
        telemetry.tracer().emit(&leg, || EventKind::FailoverLeg {
            service: service.name().to_string(),
            rank: i,
        });
        telemetry
            .metrics()
            .inc_counter("sdk_failover_legs_total", &[("service", service.name())]);
        let retries = policy.retries_for(service.name());
        let (outcome, made) = invoke_with_backoff_governed(
            service,
            request,
            retries,
            policy.backoff,
            monitor,
            telemetry,
            &leg,
            gov,
        );
        attempts += made;
        match outcome.result {
            Ok(response) => {
                return Ok(FailoverSuccess {
                    service: service.name().to_string(),
                    response,
                    // Count services actually attempted: legs skipped by an
                    // open breaker cost nothing and are not "tried".
                    services_tried: legs_run,
                    attempts,
                    latency_ms: duration_ms(outcome.latency),
                });
            }
            Err(ServiceError::BadRequest(msg)) => return Err(SdkError::Rejected(msg)),
            Err(e) => last_error = format!("{}: {e}", service.name()),
        }
    }
    if legs_run == 0 {
        if let Some(retry_after) = min_retry_after {
            return Err(SdkError::CircuitOpen(format!(
                "all candidates tripped; retry in {:.0}ms",
                retry_after.as_secs_f64() * 1_000.0
            )));
        }
    }
    Err(SdkError::AllFailed(last_error))
}

/// Outcome of one leg of a redundant invocation.
#[derive(Debug, Clone)]
pub struct RedundantLeg {
    /// The service invoked.
    pub service: String,
    /// Its result.
    pub result: Result<Response, ServiceError>,
}

/// Invokes multiple candidates per `mode`. Legs run sequentially in rank
/// order here; the [`sdk`](crate::sdk) facade offers a thread-pooled
/// parallel variant (§2.1 discusses both).
///
/// # Errors
///
/// [`SdkError::AllFailed`] if `mode` is `FirstSuccess` and all fail, or a
/// quorum is not met.
pub fn invoke_redundant(
    candidates: &[Arc<SimService>],
    request: &Request,
    mode: RedundantMode,
    policy: &InvocationPolicy,
    monitor: &ServiceMonitor,
) -> Result<Vec<RedundantLeg>, SdkError> {
    let telemetry = Telemetry::disabled();
    let ctx = telemetry.tracer().new_trace();
    invoke_redundant_traced(candidates, request, mode, policy, monitor, &telemetry, &ctx)
}

/// As [`invoke_redundant`], emitting [`EventKind::RedundantLegWon`] for
/// the leg whose response wins (the first success) and
/// [`EventKind::RedundantLegLost`] for every other leg.
pub fn invoke_redundant_traced(
    candidates: &[Arc<SimService>],
    request: &Request,
    mode: RedundantMode,
    policy: &InvocationPolicy,
    monitor: &ServiceMonitor,
    telemetry: &Telemetry,
    ctx: &SpanCtx,
) -> Result<Vec<RedundantLeg>, SdkError> {
    invoke_redundant_governed(
        candidates,
        request,
        mode,
        policy,
        monitor,
        telemetry,
        ctx,
        &Governance::none(),
    )
}

/// As [`invoke_redundant_traced`], additionally governed by `gov`: legs
/// behind an open breaker are skipped, and no new leg starts after the
/// deadline expires (legs already collected still count toward the mode's
/// success requirement).
///
/// # Errors
///
/// In addition to [`invoke_redundant`]'s errors:
/// [`SdkError::CircuitOpen`] when every candidate was skipped by its
/// breaker, and [`SdkError::DeadlineExceeded`] when the budget expired
/// before any leg could run.
#[allow(clippy::too_many_arguments)]
pub fn invoke_redundant_governed(
    candidates: &[Arc<SimService>],
    request: &Request,
    mode: RedundantMode,
    policy: &InvocationPolicy,
    monitor: &ServiceMonitor,
    telemetry: &Telemetry,
    ctx: &SpanCtx,
    gov: &Governance,
) -> Result<Vec<RedundantLeg>, SdkError> {
    if candidates.is_empty() {
        return Err(SdkError::EmptyClass("<no candidates>".into()));
    }
    let mut legs = Vec::new();
    let mut skipped = 0usize;
    let mut expired = false;
    for service in candidates.iter().take(policy.max_services) {
        if gov.deadline.is_expired(service.clock().now()) {
            emit_deadline_exhausted(telemetry, ctx, "redundant");
            expired = true;
            break;
        }
        if let Some(breakers) = &gov.breakers {
            if !breakers.admit(service.name(), ctx).is_allowed() {
                skipped += 1;
                continue;
            }
        }
        let leg_ctx = telemetry.tracer().child(ctx);
        let retries = policy.retries_for(service.name());
        let (outcome, _) = invoke_with_backoff_governed(
            service,
            request,
            retries,
            policy.backoff,
            monitor,
            telemetry,
            &leg_ctx,
            gov,
        );
        let success = outcome.result.is_ok();
        legs.push(RedundantLeg {
            service: service.name().to_string(),
            result: outcome.result,
        });
        if mode == RedundantMode::FirstSuccess && success {
            break;
        }
    }
    if legs.is_empty() {
        if skipped > 0 && !expired {
            return Err(SdkError::CircuitOpen(format!(
                "all {skipped} candidates tripped"
            )));
        }
        if expired {
            return Err(SdkError::DeadlineExceeded(
                "budget expired before any redundant leg ran".into(),
            ));
        }
    }
    if telemetry.is_enabled() {
        let winner = legs.iter().position(|l| l.result.is_ok());
        for (i, leg) in legs.iter().enumerate() {
            let won = winner == Some(i);
            telemetry.tracer().emit(ctx, || {
                if won {
                    EventKind::RedundantLegWon {
                        service: leg.service.clone(),
                    }
                } else {
                    EventKind::RedundantLegLost {
                        service: leg.service.clone(),
                        outcome: outcome_kind(&leg.result),
                    }
                }
            });
            telemetry.metrics().inc_counter(
                "sdk_redundant_legs_total",
                &[
                    ("service", &leg.service),
                    ("result", if won { "won" } else { "lost" }),
                ],
            );
        }
    }
    let successes = legs.iter().filter(|l| l.result.is_ok()).count();
    match mode {
        RedundantMode::All => Ok(legs),
        RedundantMode::FirstSuccess => {
            if successes > 0 {
                Ok(legs)
            } else {
                Err(SdkError::AllFailed("no service responded".into()))
            }
        }
        RedundantMode::Quorum(need) => {
            if successes >= need {
                Ok(legs)
            } else {
                Err(SdkError::AllFailed(format!(
                    "quorum not met: {successes}/{need} successes"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_json::json;
    use cogsdk_sim::failure::FailurePlan;
    use cogsdk_sim::latency::LatencyModel;
    use cogsdk_sim::quota::Quota;
    use cogsdk_sim::SimEnv;
    use std::time::Duration;

    fn svc(env: &SimEnv, name: &str, fail_rate: f64) -> Arc<SimService> {
        SimService::builder(name, "demo")
            .latency(LatencyModel::constant_ms(5.0))
            .failures(FailurePlan::flaky(fail_rate))
            .build(env)
    }

    fn req() -> Request {
        Request::new("op", json!({"q": 1}))
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let env = SimEnv::with_seed(3);
        let monitor = ServiceMonitor::new();
        let flaky = svc(&env, "flaky", 0.5);
        let mut successes = 0;
        for _ in 0..100 {
            if invoke_with_retry(&flaky, &req(), 5, &monitor)
                .result
                .is_ok()
            {
                successes += 1;
            }
        }
        // With 5 retries at 50% failure, success ≈ 1 - 0.5^6 ≈ 98.4%.
        assert!(successes >= 90, "successes={successes}");
        let history = monitor.history("flaky").unwrap();
        assert!(history.observations().len() > 100, "attempts recorded");
    }

    #[test]
    fn retry_does_not_retry_bad_requests() {
        let env = SimEnv::with_seed(4);
        let monitor = ServiceMonitor::new();
        let rejecting = SimService::builder("rejects", "demo")
            .handler(|_| Err("nope".into()))
            .build(&env);
        let out = invoke_with_retry(&rejecting, &req(), 10, &monitor);
        assert!(matches!(out.result, Err(ServiceError::BadRequest(_))));
        assert_eq!(monitor.history("rejects").unwrap().observations().len(), 1);
    }

    #[test]
    fn retry_does_not_retry_quota_exhaustion() {
        let env = SimEnv::with_seed(5);
        let monitor = ServiceMonitor::new();
        let limited = SimService::builder("limited", "demo")
            .quota(Quota::new(1, Duration::from_secs(3600)))
            .build(&env);
        assert!(invoke_with_retry(&limited, &req(), 0, &monitor)
            .result
            .is_ok());
        let out = invoke_with_retry(&limited, &req(), 10, &monitor);
        assert!(matches!(out.result, Err(ServiceError::QuotaExceeded)));
        // 1 success + 1 quota rejection = 2 observations, not 12.
        assert_eq!(monitor.history("limited").unwrap().observations().len(), 2);
    }

    #[test]
    fn failover_skips_dead_service() {
        let env = SimEnv::with_seed(6);
        let monitor = ServiceMonitor::new();
        let dead = svc(&env, "dead", 1.0);
        let alive = svc(&env, "alive", 0.0);
        let policy = InvocationPolicy {
            default_retries: 1,
            ..InvocationPolicy::default()
        };
        let ok = invoke_failover(&[dead, alive], &req(), &policy, &monitor).unwrap();
        assert_eq!(ok.service, "alive");
        assert_eq!(ok.services_tried, 2);
        assert_eq!(ok.attempts, 3); // dead: 2 attempts, alive: 1
    }

    #[test]
    fn failover_all_dead_reports_all_failed() {
        let env = SimEnv::with_seed(7);
        let monitor = ServiceMonitor::new();
        let candidates = vec![svc(&env, "d1", 1.0), svc(&env, "d2", 1.0)];
        let err = invoke_failover(&candidates, &req(), &InvocationPolicy::default(), &monitor)
            .unwrap_err();
        assert!(matches!(err, SdkError::AllFailed(_)));
    }

    #[test]
    fn failover_respects_max_services() {
        let env = SimEnv::with_seed(8);
        let monitor = ServiceMonitor::new();
        let candidates = vec![svc(&env, "d1", 1.0), svc(&env, "alive", 0.0)];
        let policy = InvocationPolicy {
            max_services: 1,
            ..InvocationPolicy::default()
        };
        assert!(invoke_failover(&candidates, &req(), &policy, &monitor).is_err());
    }

    #[test]
    fn failover_bad_request_aborts_immediately() {
        let env = SimEnv::with_seed(9);
        let monitor = ServiceMonitor::new();
        let rejecting = SimService::builder("rejects", "demo")
            .handler(|_| Err("malformed".into()))
            .build(&env);
        let alive = svc(&env, "alive", 0.0);
        let err = invoke_failover(
            &[rejecting, alive],
            &req(),
            &InvocationPolicy::default(),
            &monitor,
        )
        .unwrap_err();
        assert!(matches!(err, SdkError::Rejected(_)), "{err:?}");
    }

    #[test]
    fn failover_per_service_retry_overrides() {
        let env = SimEnv::with_seed(10);
        let monitor = ServiceMonitor::new();
        let dead = svc(&env, "dead", 1.0);
        let alive = svc(&env, "alive", 0.0);
        let policy = InvocationPolicy {
            default_retries: 0,
            per_service_retries: [("dead".to_string(), 4)].into_iter().collect(),
            max_services: usize::MAX,
            backoff: Backoff::None,
        };
        let ok = invoke_failover(&[dead, alive], &req(), &policy, &monitor).unwrap();
        assert_eq!(ok.attempts, 6); // dead 5, alive 1
    }

    #[test]
    fn redundant_all_returns_every_leg() {
        let env = SimEnv::with_seed(11);
        let monitor = ServiceMonitor::new();
        let candidates = vec![
            svc(&env, "a", 0.0),
            svc(&env, "b", 0.0),
            svc(&env, "c", 1.0),
        ];
        let legs = invoke_redundant(
            &candidates,
            &req(),
            RedundantMode::All,
            &InvocationPolicy {
                default_retries: 0,
                ..InvocationPolicy::default()
            },
            &monitor,
        )
        .unwrap();
        assert_eq!(legs.len(), 3);
        assert_eq!(legs.iter().filter(|l| l.result.is_ok()).count(), 2);
    }

    #[test]
    fn redundant_first_success_stops_early() {
        let env = SimEnv::with_seed(12);
        let monitor = ServiceMonitor::new();
        let candidates = vec![svc(&env, "a", 0.0), svc(&env, "b", 0.0)];
        let legs = invoke_redundant(
            &candidates,
            &req(),
            RedundantMode::FirstSuccess,
            &InvocationPolicy::default(),
            &monitor,
        )
        .unwrap();
        assert_eq!(legs.len(), 1);
        assert_eq!(legs[0].service, "a");
        assert!(monitor.history("b").is_none(), "b never invoked");
    }

    #[test]
    fn redundant_quorum_enforced() {
        let env = SimEnv::with_seed(13);
        let monitor = ServiceMonitor::new();
        let candidates = vec![
            svc(&env, "a", 0.0),
            svc(&env, "b", 1.0),
            svc(&env, "c", 1.0),
        ];
        let policy = InvocationPolicy {
            default_retries: 0,
            ..InvocationPolicy::default()
        };
        assert!(invoke_redundant(
            &candidates,
            &req(),
            RedundantMode::Quorum(1),
            &policy,
            &monitor
        )
        .is_ok());
        let err = invoke_redundant(
            &candidates,
            &req(),
            RedundantMode::Quorum(2),
            &policy,
            &monitor,
        )
        .unwrap_err();
        assert!(matches!(err, SdkError::AllFailed(_)));
    }

    #[test]
    fn backoff_schedules() {
        assert_eq!(Backoff::None.delay(0), Duration::ZERO);
        assert_eq!(
            Backoff::Fixed(Duration::from_millis(10)).delay(3),
            Duration::from_millis(10)
        );
        let exp = Backoff::standard_exponential();
        assert_eq!(exp.delay(0), Duration::from_millis(50));
        assert_eq!(exp.delay(1), Duration::from_millis(100));
        assert_eq!(exp.delay(2), Duration::from_millis(200));
        assert_eq!(exp.delay(10), Duration::from_secs(2), "capped");
    }

    #[test]
    fn backoff_survives_huge_retry_counts() {
        // Regression: `factor.powi(retry)` overflows to infinity for large
        // retry counts, and `Duration::from_secs_f64(inf)` panics. The cap
        // must be applied in the f64 domain before constructing a Duration.
        let exp = Backoff::standard_exponential();
        assert_eq!(exp.delay(10_000), Duration::from_secs(2));
        let jitter = Backoff::standard_full_jitter();
        assert_eq!(jitter.delay(10_000), Duration::from_secs(2));
        let mut rng = Rng::new(7);
        assert!(jitter.delay_sampled(10_000, &mut rng) <= Duration::from_secs(2));
        // Zero base never scales above zero, even at huge retry counts.
        let zero = Backoff::Exponential {
            base: Duration::ZERO,
            factor: 2.0,
            max: Duration::from_secs(2),
        };
        assert_eq!(zero.delay(0), Duration::ZERO);
    }

    #[test]
    fn backoff_advances_virtual_clock_between_retries() {
        let env = SimEnv::with_seed(14);
        let monitor = ServiceMonitor::new();
        let dead = svc(&env, "dead", 1.0);
        let t0 = env.clock().now();
        let (outcome, attempts) = invoke_with_backoff(
            &dead,
            &req(),
            2,
            Backoff::Fixed(Duration::from_millis(100)),
            &monitor,
        );
        assert!(outcome.result.is_err());
        assert_eq!(attempts, 3);
        let elapsed = env.clock().now().since(t0);
        // 3 failure detections plus 2 backoff delays of 100ms.
        assert!(
            elapsed >= Duration::from_millis(200),
            "elapsed {elapsed:?} must include both backoff delays"
        );
    }

    #[test]
    fn zero_backoff_adds_no_latency_on_success() {
        let env = SimEnv::with_seed(15);
        let monitor = ServiceMonitor::new();
        let alive = svc(&env, "alive", 0.0);
        let t0 = env.clock().now();
        invoke_with_backoff(&alive, &req(), 5, Backoff::standard_exponential(), &monitor);
        // Success on the first attempt: no backoff is realized.
        assert_eq!(env.clock().now().since(t0), Duration::from_millis(5));
    }

    #[test]
    fn full_jitter_delays_stay_within_envelope() {
        let policy = Backoff::standard_full_jitter();
        let mut rng = Rng::new(99);
        for retry in 0..12 {
            let envelope = policy.delay(retry);
            for _ in 0..50 {
                let d = policy.delay_sampled(retry, &mut rng);
                assert!(d <= envelope, "retry {retry}: {d:?} > {envelope:?}");
            }
        }
        assert_eq!(policy.delay(10), Duration::from_secs(2), "envelope capped");
    }

    #[test]
    fn full_jitter_differs_across_callers() {
        let policy = Backoff::standard_full_jitter();
        // Two independent invocations (fresh jitter streams, as each
        // invoke_with_backoff_governed call creates) must not produce the
        // identical delay sequence — that is the retry storm full jitter
        // exists to break up.
        let seq = |rng: &mut Rng| -> Vec<Duration> {
            (0..6).map(|r| policy.delay_sampled(r, rng)).collect()
        };
        let a = seq(&mut jitter_rng());
        let b = seq(&mut jitter_rng());
        assert_ne!(a, b, "two callers drew identical jitter sequences");
        // And the non-jittered policies remain deterministic.
        let exp = Backoff::standard_exponential();
        assert_eq!(
            exp.delay_sampled(3, &mut jitter_rng()),
            exp.delay_sampled(3, &mut jitter_rng())
        );
    }

    #[test]
    fn deadline_stops_retries_mid_sequence() {
        let env = SimEnv::with_seed(20);
        let monitor = ServiceMonitor::new();
        let dead = svc(&env, "dead", 1.0);
        let telemetry = cogsdk_obs::Telemetry::new();
        let ctx = telemetry.tracer().new_trace();
        // Each failed attempt burns 5s (the default timeout? no — flaky
        // failures are timeouts burning the 5s default timeout). Budget of
        // 12s admits attempt 1 (5s) and attempt 2 (10s), not attempt 3.
        let gov = Governance::with_deadline(crate::resilience::Deadline::within(
            env.clock(),
            Duration::from_secs(12),
        ));
        let (outcome, attempts) = invoke_with_backoff_governed(
            &dead,
            &req(),
            10,
            Backoff::None,
            &monitor,
            &telemetry,
            &ctx,
            &gov,
        );
        assert!(outcome.result.is_err());
        assert!(
            attempts < 11,
            "deadline must cut the retry budget short, made {attempts}"
        );
        assert_eq!(
            telemetry
                .metrics()
                .counter_value("sdk_deadline_exhausted_total", &[("stage", "backoff")]),
            Some(1)
        );
    }

    #[test]
    fn deadline_skips_backoff_sleep_it_cannot_afford() {
        let env = SimEnv::with_seed(21);
        let monitor = ServiceMonitor::new();
        let dead = SimService::builder("dead", "demo")
            .latency(LatencyModel::constant_ms(5.0))
            .failures(FailurePlan::flaky(1.0))
            .timeout(Duration::from_millis(50))
            .build(&env);
        let telemetry = cogsdk_obs::Telemetry::disabled();
        let ctx = telemetry.tracer().new_trace();
        let t0 = env.clock().now();
        let gov = Governance::with_deadline(crate::resilience::Deadline::within(
            env.clock(),
            Duration::from_millis(120),
        ));
        // Fixed 1s backoff dwarfs the 120ms budget: after the first 50ms
        // failure, the sleep must be skipped and the sequence must end.
        let (_, attempts) = invoke_with_backoff_governed(
            &dead,
            &req(),
            5,
            Backoff::Fixed(Duration::from_secs(1)),
            &monitor,
            &telemetry,
            &ctx,
            &gov,
        );
        assert_eq!(attempts, 1);
        assert!(
            env.clock().now().since(t0) < Duration::from_millis(200),
            "no backoff sleep was realized"
        );
    }

    #[test]
    fn failover_skips_tripped_service_without_attempting_it() {
        let env = SimEnv::with_seed(22);
        let monitor = ServiceMonitor::new();
        let telemetry = cogsdk_obs::Telemetry::new();
        let dead = svc(&env, "dead", 1.0);
        let alive = svc(&env, "alive", 0.0);
        let breakers = Arc::new(crate::resilience::BreakerRegistry::new(
            env.clock().clone(),
            telemetry.clone(),
            crate::resilience::BreakerConfig {
                window: 4,
                min_calls: 2,
                trip_error_rate: 0.5,
                open_for: Duration::from_secs(60),
                half_open_probes: 1,
            },
        ));
        let ctx = telemetry.tracer().new_trace();
        let gov = Governance::new(Some(Arc::clone(&breakers)), Deadline::NONE);
        let policy = InvocationPolicy {
            default_retries: 1,
            ..InvocationPolicy::default()
        };
        let candidates = vec![Arc::clone(&dead), Arc::clone(&alive)];

        // First call trips the breaker on "dead" (2 failed attempts).
        let ok = invoke_failover_governed(
            &candidates,
            &req(),
            &policy,
            &monitor,
            &telemetry,
            &ctx,
            &gov,
        )
        .unwrap();
        assert_eq!(ok.service, "alive");
        assert_eq!(ok.attempts, 3);
        assert_eq!(
            breakers.state("dead"),
            crate::resilience::BreakerState::Open
        );

        // Second call: dead is skipped entirely — one leg, one attempt.
        let (dead_calls_before, _) = dead.stats();
        let ok = invoke_failover_governed(
            &candidates,
            &req(),
            &policy,
            &monitor,
            &telemetry,
            &ctx,
            &gov,
        )
        .unwrap();
        assert_eq!(ok.service, "alive");
        assert_eq!(ok.services_tried, 1);
        assert_eq!(ok.attempts, 1);
        assert_eq!(dead.stats().0, dead_calls_before, "dead was not called");
    }

    #[test]
    fn failover_all_tripped_reports_circuit_open() {
        let env = SimEnv::with_seed(23);
        let monitor = ServiceMonitor::new();
        let telemetry = cogsdk_obs::Telemetry::new();
        let d1 = svc(&env, "d1", 1.0);
        let d2 = svc(&env, "d2", 1.0);
        let breakers = Arc::new(crate::resilience::BreakerRegistry::new(
            env.clock().clone(),
            telemetry.clone(),
            crate::resilience::BreakerConfig {
                window: 4,
                min_calls: 2,
                trip_error_rate: 0.5,
                open_for: Duration::from_secs(60),
                half_open_probes: 1,
            },
        ));
        let ctx = telemetry.tracer().new_trace();
        let gov = Governance::new(Some(breakers), Deadline::NONE);
        let policy = InvocationPolicy {
            default_retries: 1,
            ..InvocationPolicy::default()
        };
        let candidates = vec![d1, d2];
        // Trip both.
        let err = invoke_failover_governed(
            &candidates,
            &req(),
            &policy,
            &monitor,
            &telemetry,
            &ctx,
            &gov,
        )
        .unwrap_err();
        assert!(matches!(err, SdkError::AllFailed(_)));
        // Now both breakers are open: pure rejection, no attempts.
        let err = invoke_failover_governed(
            &candidates,
            &req(),
            &policy,
            &monitor,
            &telemetry,
            &ctx,
            &gov,
        )
        .unwrap_err();
        assert!(matches!(err, SdkError::CircuitOpen(_)), "{err:?}");
    }

    #[test]
    fn failover_deadline_expiry_reports_deadline_exceeded() {
        let env = SimEnv::with_seed(24);
        let monitor = ServiceMonitor::new();
        let telemetry = cogsdk_obs::Telemetry::disabled();
        let ctx = telemetry.tracer().new_trace();
        let candidates = vec![svc(&env, "a", 0.0)];
        let deadline = crate::resilience::Deadline::within(env.clock(), Duration::from_millis(10));
        env.clock().advance(Duration::from_millis(20));
        let gov = Governance::with_deadline(deadline);
        let err = invoke_failover_governed(
            &candidates,
            &req(),
            &InvocationPolicy::default(),
            &monitor,
            &telemetry,
            &ctx,
            &gov,
        )
        .unwrap_err();
        assert!(matches!(err, SdkError::DeadlineExceeded(_)), "{err:?}");
    }

    #[test]
    fn retry_within_refuses_expired_budget() {
        let env = SimEnv::with_seed(25);
        let monitor = ServiceMonitor::new();
        let alive = svc(&env, "alive", 0.0);
        let deadline = crate::resilience::Deadline::within(env.clock(), Duration::from_millis(1));
        env.clock().advance(Duration::from_millis(5));
        let err = invoke_with_retry_within(&alive, &req(), 2, &monitor, deadline).unwrap_err();
        assert!(matches!(err, SdkError::DeadlineExceeded(_)));
        assert!(monitor.history("alive").is_none(), "no attempt was made");

        let ok = invoke_with_retry_within(&alive, &req(), 2, &monitor, Deadline::NONE).unwrap();
        assert!(ok.result.is_ok());
    }

    #[test]
    fn redundant_all_tripped_reports_circuit_open() {
        let env = SimEnv::with_seed(26);
        let monitor = ServiceMonitor::new();
        let telemetry = cogsdk_obs::Telemetry::new();
        let d1 = svc(&env, "d1", 1.0);
        let breakers = Arc::new(crate::resilience::BreakerRegistry::new(
            env.clock().clone(),
            telemetry.clone(),
            crate::resilience::BreakerConfig {
                window: 4,
                min_calls: 2,
                trip_error_rate: 0.5,
                open_for: Duration::from_secs(60),
                half_open_probes: 1,
            },
        ));
        let ctx = telemetry.tracer().new_trace();
        let gov = Governance::new(Some(breakers), Deadline::NONE);
        let policy = InvocationPolicy {
            default_retries: 1,
            ..InvocationPolicy::default()
        };
        let candidates = vec![d1];
        let _ = invoke_redundant_governed(
            &candidates,
            &req(),
            RedundantMode::All,
            &policy,
            &monitor,
            &telemetry,
            &ctx,
            &gov,
        );
        let err = invoke_redundant_governed(
            &candidates,
            &req(),
            RedundantMode::All,
            &policy,
            &monitor,
            &telemetry,
            &ctx,
            &gov,
        )
        .unwrap_err();
        assert!(matches!(err, SdkError::CircuitOpen(_)), "{err:?}");
    }

    #[test]
    fn empty_candidates_error() {
        let monitor = ServiceMonitor::new();
        assert!(matches!(
            invoke_failover(&[], &req(), &InvocationPolicy::default(), &monitor),
            Err(SdkError::EmptyClass(_))
        ));
        assert!(invoke_redundant(
            &[],
            &req(),
            RedundantMode::All,
            &InvocationPolicy::default(),
            &monitor
        )
        .is_err());
    }
}
