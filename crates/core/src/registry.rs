//! The SDK-side service registry.
//!
//! Groups registered services by *functionality class* so the selection
//! machinery can enumerate "multiple services providing similar
//! functionality" (§2.1). The SDK registers [`SimService`]s directly; a
//! production build would register HTTP-backed implementations of the
//! same surface.

use cogsdk_sim::service::SimService;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe registry of services, indexed by name and class.
///
/// # Examples
///
/// ```
/// use cogsdk_core::ServiceRegistry;
/// use cogsdk_sim::{SimEnv, SimService};
///
/// let env = SimEnv::with_seed(1);
/// let reg = ServiceRegistry::new();
/// reg.register(SimService::builder("nlu-a", "nlu").build(&env));
/// assert_eq!(reg.class_members("nlu").len(), 1);
/// ```
#[derive(Default)]
pub struct ServiceRegistry {
    by_name: RwLock<BTreeMap<String, Arc<SimService>>>,
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("services", &self.names())
            .finish()
    }
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Registers a service; replaces and returns any service of the same
    /// name.
    pub fn register(&self, service: Arc<SimService>) -> Option<Arc<SimService>> {
        self.by_name
            .write()
            .insert(service.name().to_string(), service)
    }

    /// Removes a service by name.
    pub fn deregister(&self, name: &str) -> Option<Arc<SimService>> {
        self.by_name.write().remove(name)
    }

    /// Looks up a service by name.
    pub fn get(&self, name: &str) -> Option<Arc<SimService>> {
        self.by_name.read().get(name).cloned()
    }

    /// All services in a class, in name order.
    pub fn class_members(&self, class: &str) -> Vec<Arc<SimService>> {
        self.by_name
            .read()
            .values()
            .filter(|s| s.class() == class)
            .cloned()
            .collect()
    }

    /// All registered names, in order.
    pub fn names(&self) -> Vec<String> {
        self.by_name.read().keys().cloned().collect()
    }

    /// All distinct classes, in order.
    pub fn classes(&self) -> Vec<String> {
        let mut classes: Vec<String> = self
            .by_name
            .read()
            .values()
            .map(|s| s.class().to_string())
            .collect();
        classes.sort();
        classes.dedup();
        classes
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.by_name.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_sim::SimEnv;

    #[test]
    fn register_lookup_deregister() {
        let env = SimEnv::with_seed(1);
        let reg = ServiceRegistry::new();
        assert!(reg.is_empty());
        reg.register(SimService::builder("a", "x").build(&env));
        reg.register(SimService::builder("b", "x").build(&env));
        reg.register(SimService::builder("c", "y").build(&env));
        assert_eq!(reg.len(), 3);
        assert!(reg.get("a").is_some());
        assert_eq!(reg.class_members("x").len(), 2);
        assert_eq!(reg.classes(), vec!["x", "y"]);
        assert!(reg.deregister("a").is_some());
        assert!(reg.get("a").is_none());
    }

    #[test]
    fn replace_same_name() {
        let env = SimEnv::with_seed(2);
        let reg = ServiceRegistry::new();
        reg.register(SimService::builder("s", "x").quality(0.2).build(&env));
        let old = reg.register(SimService::builder("s", "x").quality(0.9).build(&env));
        assert_eq!(old.unwrap().quality(), 0.2);
        assert_eq!(reg.get("s").unwrap().quality(), 0.9);
        assert_eq!(reg.len(), 1);
    }
}
