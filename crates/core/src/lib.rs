//! The rich SDK (§2 of the paper).
//!
//! "We have developed a rich SDK which improves upon previous SDKs by
//! providing a much broader set of features for supporting applications
//! accessing services." This crate is that SDK, feature for feature:
//!
//! | Paper feature (Fig. 2) | Module |
//! |---|---|
//! | Monitoring & data collection (latency, availability, quality) | [`monitor`] |
//! | Latency prediction from latency parameters | [`predict`] |
//! | Service scoring (Eq. 1, Eq. 2, custom) and ranking | [`score`], [`rank`] |
//! | Failure handling: retries, ranked failover, redundant invocation | [`invoke`] |
//! | Response caching | [`cache`] |
//! | Synchronous & asynchronous invocation (`ListenableFuture`) | [`future`], [`pool`] |
//! | NLU support: multi-document analysis, search→fetch→analyze→aggregate | [`nlu`] |
//!
//! The [`RichSdk`] facade in [`sdk`] wires the features together.
//!
//! # Examples
//!
//! ```
//! use cogsdk_core::sdk::RichSdk;
//! use cogsdk_sim::{SimEnv, SimService, Request};
//! use cogsdk_sim::latency::LatencyModel;
//! use cogsdk_json::json;
//!
//! let env = SimEnv::with_seed(1);
//! let sdk = RichSdk::new(&env);
//! sdk.register(SimService::builder("echo", "demo")
//!     .latency(LatencyModel::constant_ms(5.0))
//!     .build(&env));
//!
//! let out = sdk.invoke("echo", &Request::new("op", json!({"x": 1}))).unwrap();
//! assert_eq!(out.payload, json!({"x": 1}));
//! ```

pub mod cache;
pub mod future;
pub mod gateway;
pub mod invoke;
pub mod monitor;
pub mod nlu;
pub mod pool;
pub mod predict;
pub mod rank;
pub mod registry;
pub mod resilience;
pub mod score;
pub mod sdk;

pub use cache::{CacheConfig, CacheStats, FetchSource, FlightJoin, Lookup, ResponseCache};
pub use future::ListenableFuture;
pub use gateway::{GatewayLimits, HttpGateway};
pub use invoke::{InvocationPolicy, RedundantMode};
pub use monitor::ServiceMonitor;
pub use pool::ThreadPool;
pub use predict::Predictor;
pub use rank::RankedService;
pub use registry::ServiceRegistry;
pub use resilience::{BreakerConfig, BreakerRegistry, BreakerState, Deadline, Governance};
pub use score::ScoringFormula;
pub use sdk::{ResilienceOptions, RichSdk};

use std::error::Error;
use std::fmt;

/// Error surfaced by SDK operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdkError {
    /// No service with the given name is registered.
    UnknownService(String),
    /// No service in the requested class is registered.
    EmptyClass(String),
    /// Every attempted service failed; carries the last failure.
    AllFailed(String),
    /// The request was rejected as invalid by the service.
    Rejected(String),
    /// A quality rating outside `[0, 1]` was supplied.
    InvalidRating(String),
    /// The end-to-end deadline budget ran out before the work finished.
    DeadlineExceeded(String),
    /// Every admissible candidate was behind an open circuit breaker.
    CircuitOpen(String),
}

impl fmt::Display for SdkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdkError::UnknownService(name) => write!(f, "unknown service: {name}"),
            SdkError::EmptyClass(class) => write!(f, "no services in class: {class}"),
            SdkError::AllFailed(last) => write!(f, "all candidate services failed; last: {last}"),
            SdkError::Rejected(msg) => write!(f, "request rejected: {msg}"),
            SdkError::InvalidRating(msg) => write!(f, "invalid quality rating: {msg}"),
            SdkError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            SdkError::CircuitOpen(msg) => write!(f, "circuit open: {msg}"),
        }
    }
}

impl SdkError {
    /// A stable machine-readable error kind, for metric labels.
    pub fn kind(&self) -> &'static str {
        match self {
            SdkError::UnknownService(_) => "unknown_service",
            SdkError::EmptyClass(_) => "empty_class",
            SdkError::AllFailed(_) => "all_failed",
            SdkError::Rejected(_) => "rejected",
            SdkError::InvalidRating(_) => "invalid_rating",
            SdkError::DeadlineExceeded(_) => "deadline_exceeded",
            SdkError::CircuitOpen(_) => "circuit_open",
        }
    }
}

impl Error for SdkError {}
