//! Latency prediction.
//!
//! §2: "The rich SDK … can then predict the latency of a service
//! invocation based on the latency parameters associated with the service
//! invocation. This allows a data analytics application to select a
//! service with the lowest expected latency based on the latency
//! parameters." With "insufficient past data … default values are used
//! which can be the average value for similar services, the median value
//! for similar services, or default values provided by the user."

use crate::monitor::ServiceHistory;
use cogsdk_stats::forecast::Ewma;
use cogsdk_stats::regression::{LinearRegression, MultipleRegression};

/// A latency predictor over a service's observation history.
#[derive(Debug, Clone, PartialEq)]
pub enum Predictor {
    /// Mean of past successful latencies.
    Mean,
    /// Median of past successful latencies (robust to tail outliers).
    Median,
    /// Exponentially weighted moving average with the given alpha.
    Ewma(f64),
    /// Linear regression of latency on the named latency parameter —
    /// the paper's size-conditioned predictor.
    RegressionOn(String),
    /// k-nearest-neighbours on the named parameter: mean latency of the
    /// `k` observations whose parameter value is closest.
    KnnOn(String, usize),
    /// Multiple linear regression on several latency parameters at once —
    /// §2's "correlated with one or more parameters".
    MultiRegressionOn(Vec<String>),
    /// Adaptive choice: regression on the named parameter when observed
    /// latency correlates with it (|r| ≥ [`AUTO_CORRELATION_THRESHOLD`]),
    /// otherwise the robust median.
    Auto(String),
}

/// Correlation magnitude above which [`Predictor::Auto`] trusts the
/// parameterized regression.
pub const AUTO_CORRELATION_THRESHOLD: f64 = 0.5;

/// Cold-start fallbacks, in the order the paper lists them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColdStart {
    /// Use the average over similar services.
    ClassMean(f64),
    /// Use a user-provided default.
    UserDefault(f64),
}

impl ColdStart {
    /// The fallback value in milliseconds.
    pub fn value_ms(self) -> f64 {
        match self {
            ColdStart::ClassMean(v) | ColdStart::UserDefault(v) => v,
        }
    }
}

/// Minimum observations before a parameterized predictor trusts itself.
const MIN_SAMPLES: usize = 3;

impl Predictor {
    /// Predicts the latency (ms) of the next call with the given latency
    /// parameters. Returns `None` when history is insufficient — callers
    /// then apply a [`ColdStart`] fallback.
    pub fn predict(&self, history: &ServiceHistory, params: &[(String, f64)]) -> Option<f64> {
        match self {
            Predictor::Mean => history.mean_latency_ms(),
            Predictor::Median => history.median_latency_ms(),
            Predictor::Ewma(alpha) => {
                let lats = history.success_latencies();
                if lats.is_empty() {
                    return None;
                }
                let mut ewma = Ewma::new(*alpha);
                for l in lats {
                    ewma.observe(l);
                }
                ewma.value()
            }
            Predictor::RegressionOn(param) => {
                let (xs, ys) = history.param_series(param);
                if xs.len() < MIN_SAMPLES {
                    return None;
                }
                let x = param_value(params, param)?;
                match LinearRegression::fit(&xs, &ys) {
                    Ok(fit) => Some(fit.predict(x).max(0.0)),
                    // Degenerate x spread: fall back to the plain mean.
                    Err(_) => history.mean_latency_ms(),
                }
            }
            Predictor::KnnOn(param, k) => {
                let (xs, ys) = history.param_series(param);
                if xs.is_empty() || *k == 0 {
                    return None;
                }
                let x = param_value(params, param)?;
                let mut by_distance: Vec<(f64, f64)> = xs
                    .iter()
                    .zip(&ys)
                    .map(|(xi, yi)| ((xi - x).abs(), *yi))
                    .collect();
                by_distance.sort_by(|a, b| a.0.total_cmp(&b.0));
                let take = (*k).min(by_distance.len());
                Some(by_distance[..take].iter().map(|(_, y)| y).sum::<f64>() / take as f64)
            }
            Predictor::MultiRegressionOn(names) => {
                if names.is_empty() {
                    return history.mean_latency_ms();
                }
                let (xs, ys) = history.multi_param_series(names);
                if xs.len() < names.len() + 1 + MIN_SAMPLES {
                    return None;
                }
                let features: Vec<f64> = names
                    .iter()
                    .map(|n| param_value(params, n))
                    .collect::<Option<_>>()?;
                let rows: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
                match MultipleRegression::fit(&rows, &ys) {
                    Ok(fit) => fit.predict(&features).ok().map(|v| v.max(0.0)),
                    // Degenerate design matrix: fall back to the mean.
                    Err(_) => history.mean_latency_ms(),
                }
            }
            Predictor::Auto(param) => {
                let correlated = history
                    .param_correlation(param)
                    .is_some_and(|r| r.abs() >= AUTO_CORRELATION_THRESHOLD);
                if correlated {
                    Predictor::RegressionOn(param.clone()).predict(history, params)
                } else {
                    Predictor::Median.predict(history, params)
                }
            }
        }
    }

    /// Predicts with a cold-start fallback, never failing.
    pub fn predict_or(
        &self,
        history: &ServiceHistory,
        params: &[(String, f64)],
        fallback: ColdStart,
    ) -> f64 {
        self.predict(history, params)
            .unwrap_or_else(|| fallback.value_ms())
    }
}

fn param_value(params: &[(String, f64)], name: &str) -> Option<f64> {
    params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ServiceMonitor;

    fn history_linear() -> ServiceHistory {
        // latency = 5 + 0.01 * size, exactly.
        let m = ServiceMonitor::new();
        for size in [100.0, 200.0, 400.0, 800.0, 1600.0] {
            m.record_raw(
                "svc",
                5.0 + 0.01 * size,
                true,
                0,
                vec![("size".into(), size)],
            );
        }
        m.history("svc").unwrap()
    }

    fn params(size: f64) -> Vec<(String, f64)> {
        vec![("size".into(), size)]
    }

    #[test]
    fn mean_and_median_predictors() {
        let h = history_linear();
        let mean = Predictor::Mean.predict(&h, &[]).unwrap();
        let median = Predictor::Median.predict(&h, &[]).unwrap();
        assert!((mean - 11.2).abs() < 1e-9, "mean={mean}");
        assert_eq!(median, 9.0);
    }

    #[test]
    fn regression_predictor_extrapolates() {
        let h = history_linear();
        let p = Predictor::RegressionOn("size".into());
        let at_3200 = p.predict(&h, &params(3200.0)).unwrap();
        assert!((at_3200 - 37.0).abs() < 1e-6, "got {at_3200}");
        // Mean would be wildly wrong at this size.
        let mean = Predictor::Mean.predict(&h, &params(3200.0)).unwrap();
        assert!((at_3200 - 37.0).abs() < (mean - 37.0).abs());
    }

    #[test]
    fn regression_needs_min_samples() {
        let m = ServiceMonitor::new();
        m.record_raw("s", 10.0, true, 0, vec![("size".into(), 1.0)]);
        m.record_raw("s", 20.0, true, 0, vec![("size".into(), 2.0)]);
        let h = m.history("s").unwrap();
        assert_eq!(
            Predictor::RegressionOn("size".into()).predict(&h, &params(3.0)),
            None
        );
    }

    #[test]
    fn regression_without_request_param_is_none() {
        let h = history_linear();
        let p = Predictor::RegressionOn("size".into());
        assert_eq!(p.predict(&h, &[]), None);
    }

    #[test]
    fn regression_with_constant_x_falls_back_to_mean() {
        let m = ServiceMonitor::new();
        for _ in 0..5 {
            m.record_raw("s", 10.0, true, 0, vec![("size".into(), 7.0)]);
        }
        let h = m.history("s").unwrap();
        let p = Predictor::RegressionOn("size".into());
        assert_eq!(p.predict(&h, &params(7.0)), Some(10.0));
    }

    #[test]
    fn knn_predictor_uses_nearest_neighbours() {
        let h = history_linear();
        let p = Predictor::KnnOn("size".into(), 2);
        // Nearest to 150 are sizes 100 (6ms) and 200 (7ms).
        assert_eq!(p.predict(&h, &params(150.0)), Some(6.5));
        assert_eq!(
            Predictor::KnnOn("size".into(), 0).predict(&h, &params(150.0)),
            None
        );
    }

    #[test]
    fn ewma_tracks_recent_regime() {
        let m = ServiceMonitor::new();
        for _ in 0..20 {
            m.record_raw("s", 10.0, true, 0, vec![]);
        }
        for _ in 0..5 {
            m.record_raw("s", 100.0, true, 0, vec![]);
        }
        let h = m.history("s").unwrap();
        let ewma = Predictor::Ewma(0.4).predict(&h, &[]).unwrap();
        let mean = Predictor::Mean.predict(&h, &[]).unwrap();
        assert!(ewma > mean, "ewma={ewma} mean={mean}");
    }

    #[test]
    fn cold_start_fallbacks() {
        let empty = ServiceHistory::default();
        assert_eq!(Predictor::Mean.predict(&empty, &[]), None);
        assert_eq!(
            Predictor::Mean.predict_or(&empty, &[], ColdStart::ClassMean(42.0)),
            42.0
        );
        assert_eq!(
            Predictor::Median.predict_or(&empty, &[], ColdStart::UserDefault(7.0)),
            7.0
        );
    }

    #[test]
    fn param_correlation_detects_size_dependence() {
        let h = history_linear();
        let r = h.param_correlation("size").unwrap();
        assert!(r > 0.95, "r={r}");
        assert!(h.param_correlation("missing").is_none());
    }

    #[test]
    fn auto_predictor_switches_on_correlation() {
        // Size-dependent service: Auto behaves like regression.
        let h = history_linear();
        let auto = Predictor::Auto("size".into());
        let reg = Predictor::RegressionOn("size".into());
        assert_eq!(
            auto.predict(&h, &params(3200.0)),
            reg.predict(&h, &params(3200.0))
        );

        // Size-independent service: Auto falls back to the median even
        // though a "size" parameter is present.
        let m = ServiceMonitor::new();
        let mut lat = 10.0;
        for size in [100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0] {
            // Latency wanders but is uncorrelated with size.
            lat = if lat > 10.0 { 9.0 } else { 11.0 };
            m.record_raw("s", lat, true, 0, vec![("size".into(), size)]);
        }
        let h2 = m.history("s").unwrap();
        let auto_pred = Predictor::Auto("size".into()).predict(&h2, &params(100_000.0));
        let median = Predictor::Median.predict(&h2, &params(100_000.0));
        assert_eq!(auto_pred, median);
    }

    #[test]
    fn multi_regression_predictor_combines_parameters() {
        // latency = 1 + 0.01*size + 2*batch.
        let m = ServiceMonitor::new();
        for i in 1..=6 {
            for j in 1..=4 {
                let size = (i * 500) as f64;
                let batch = j as f64;
                m.record_raw(
                    "s",
                    1.0 + 0.01 * size + 2.0 * batch,
                    true,
                    0,
                    vec![("size".into(), size), ("batch".into(), batch)],
                );
            }
        }
        let h = m.history("s").unwrap();
        let p = Predictor::MultiRegressionOn(vec!["size".into(), "batch".into()]);
        let pred = p
            .predict(
                &h,
                &[("size".to_string(), 10_000.0), ("batch".to_string(), 8.0)],
            )
            .unwrap();
        let truth = 1.0 + 0.01 * 10_000.0 + 2.0 * 8.0;
        assert!((pred - truth).abs() < 1e-6, "pred={pred} truth={truth}");
        // Missing a required parameter -> None.
        assert_eq!(p.predict(&h, &params(100.0)), None);
        // Too little data -> None.
        let m2 = ServiceMonitor::new();
        m2.record_raw(
            "s",
            1.0,
            true,
            0,
            vec![("size".into(), 1.0), ("batch".into(), 1.0)],
        );
        assert_eq!(
            p.predict(
                &m2.history("s").unwrap(),
                &[("size".to_string(), 1.0), ("batch".to_string(), 1.0)]
            ),
            None
        );
    }

    #[test]
    fn prediction_clamped_non_negative() {
        // Steep negative trend should not predict below zero.
        let m = ServiceMonitor::new();
        for (x, y) in [(1.0, 30.0), (2.0, 20.0), (3.0, 10.0), (4.0, 1.0)] {
            m.record_raw("s", y, true, 0, vec![("size".into(), x)]);
        }
        let h = m.history("s").unwrap();
        let p = Predictor::RegressionOn("size".into());
        assert_eq!(p.predict(&h, &params(100.0)), Some(0.0));
    }
}
