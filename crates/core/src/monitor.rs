//! Service monitoring and data collection.
//!
//! §2: "Our rich SDK can collect data on services related to performance,
//! availability, and the quality and accuracy of responses… The rich SDK
//! computes both average latencies and maintains histories of latencies
//! allowing users to compare latency distributions… The rich SDK can store
//! past latency measurements along with the latency parameters resulting
//! in each latency measurement."

use crate::SdkError;
use cogsdk_sim::cost::MicroDollars;
use cogsdk_sim::service::Outcome;
use cogsdk_stats::descriptive::{Histogram, Summary};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::time::Duration;

/// One recorded observation of a service call.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Observed latency in milliseconds.
    pub latency_ms: f64,
    /// Whether the call succeeded.
    pub success: bool,
    /// Monetary cost in micro-dollars.
    pub cost_micros: u64,
    /// The latency parameters attached to the request (§2), e.g. payload
    /// size.
    pub params: Vec<(String, f64)>,
    /// The failure kind (e.g. `"timeout"`) when `success` is false and
    /// the kind is known; feeds the per-kind error breakdown.
    pub error_kind: Option<&'static str>,
}

/// Default upper bound on retained observations per service; see
/// [`ServiceMonitor::with_window`] to configure it.
pub const MAX_OBSERVATIONS: usize = 2_048;

/// Per-service history.
#[derive(Debug, Clone, Default)]
pub struct ServiceHistory {
    observations: Vec<Observation>,
    quality_ratings: Vec<f64>,
    /// Lifetime cost, kept even as old observations age out.
    total_cost_micros: u64,
}

impl ServiceHistory {
    /// All observations, oldest first.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Latencies of successful calls, in ms.
    pub fn success_latencies(&self) -> Vec<f64> {
        self.observations
            .iter()
            .filter(|o| o.success)
            .map(|o| o.latency_ms)
            .collect()
    }

    /// Fraction of calls that succeeded; `None` with no data.
    pub fn availability(&self) -> Option<f64> {
        if self.observations.is_empty() {
            return None;
        }
        let ok = self.observations.iter().filter(|o| o.success).count();
        Some(ok as f64 / self.observations.len() as f64)
    }

    /// Mean successful-call latency in ms.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        cogsdk_stats::descriptive::mean(&self.success_latencies())
    }

    /// Median successful-call latency in ms.
    pub fn median_latency_ms(&self) -> Option<f64> {
        cogsdk_stats::descriptive::median(&self.success_latencies())
    }

    /// Mean cost per successful call in micro-dollars.
    pub fn mean_cost_micros(&self) -> Option<f64> {
        let costs: Vec<f64> = self
            .observations
            .iter()
            .filter(|o| o.success)
            .map(|o| o.cost_micros as f64)
            .collect();
        cogsdk_stats::descriptive::mean(&costs)
    }

    /// Mean user-supplied quality rating in `[0, 1]`.
    pub fn mean_quality(&self) -> Option<f64> {
        cogsdk_stats::descriptive::mean(&self.quality_ratings)
    }

    /// Full latency distribution summary (§2: "compare latency
    /// distributions").
    pub fn latency_summary(&self) -> Option<Summary> {
        Summary::from_slice(&self.success_latencies()).ok()
    }

    /// A histogram of successful-call latencies over `[0, hi_ms)`.
    pub fn latency_histogram(&self, hi_ms: f64, buckets: usize) -> Histogram {
        let mut h = Histogram::new(0.0, hi_ms, buckets);
        for l in self.success_latencies() {
            h.record(l);
        }
        h
    }

    /// Pearson correlation between a latency parameter and observed
    /// latency (§2: "Latency values can also be correlated with one or
    /// more parameters"). `None` when undefined (fewer than two points or
    /// constant input).
    pub fn param_correlation(&self, param: &str) -> Option<f64> {
        let (xs, ys) = self.param_series(param);
        cogsdk_stats::pearson(&xs, &ys).ok()
    }

    /// Multi-parameter training rows `(features, latency_ms)` for the
    /// named parameters; observations missing any parameter are skipped.
    pub fn multi_param_series(&self, params: &[String]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        'outer: for o in &self.observations {
            if !o.success {
                continue;
            }
            let mut row = Vec::with_capacity(params.len());
            for name in params {
                match o.params.iter().find(|(n, _)| n == name) {
                    Some((_, v)) => row.push(*v),
                    None => continue 'outer,
                }
            }
            xs.push(row);
            ys.push(o.latency_ms);
        }
        (xs, ys)
    }

    /// Successful-call latencies sorted ascending — one snapshot shared
    /// by every percentile read taken from it.
    fn sorted_success_latencies(&self) -> Vec<f64> {
        let mut latencies = self.success_latencies();
        latencies.sort_by(f64::total_cmp);
        latencies
    }

    /// Nearest-rank percentile over an ascending-sorted, non-empty slice;
    /// `p` must already be validated into `(0, 100]`.
    fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// The `p`-th percentile of successful-call latencies (nearest-rank
    /// over the retained window); `None` with no successful calls or `p`
    /// outside `(0, 100]`.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        if !(0.0..=100.0).contains(&p) || p == 0.0 {
            return None;
        }
        let sorted = self.sorted_success_latencies();
        if sorted.is_empty() {
            return None;
        }
        Some(Self::nearest_rank(&sorted, p))
    }

    /// `(p95, p99)` successful-call latencies in ms from a single sorted
    /// snapshot, so readers wanting both tail percentiles pay for one
    /// clone-and-sort instead of two.
    pub fn tail_latencies_ms(&self) -> Option<(f64, f64)> {
        let sorted = self.sorted_success_latencies();
        if sorted.is_empty() {
            return None;
        }
        Some((
            Self::nearest_rank(&sorted, 95.0),
            Self::nearest_rank(&sorted, 99.0),
        ))
    }

    /// The 95th-percentile successful-call latency in ms.
    pub fn p95_latency_ms(&self) -> Option<f64> {
        Some(self.tail_latencies_ms()?.0)
    }

    /// The 99th-percentile successful-call latency in ms.
    pub fn p99_latency_ms(&self) -> Option<f64> {
        Some(self.tail_latencies_ms()?.1)
    }

    /// Failure counts broken down by error kind. Failures recorded
    /// without a kind (raw recordings) count under `"unknown"`.
    pub fn failure_kinds(&self) -> BTreeMap<&'static str, usize> {
        let mut kinds = BTreeMap::new();
        for o in &self.observations {
            if !o.success {
                *kinds.entry(o.error_kind.unwrap_or("unknown")).or_insert(0) += 1;
            }
        }
        kinds
    }

    /// `(latency_param_value, latency_ms)` pairs for a named parameter,
    /// the training set for size-conditioned prediction.
    pub fn param_series(&self, param: &str) -> (Vec<f64>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for o in &self.observations {
            if !o.success {
                continue;
            }
            if let Some((_, v)) = o.params.iter().find(|(n, _)| n == param) {
                xs.push(*v);
                ys.push(o.latency_ms);
            }
        }
        (xs, ys)
    }
}

/// Collects observations for every service the SDK touches.
///
/// # Examples
///
/// ```
/// use cogsdk_core::ServiceMonitor;
///
/// let monitor = ServiceMonitor::new();
/// monitor.record_raw("svc", 12.0, true, 100, vec![("size".into(), 64.0)]);
/// monitor.record_raw("svc", 18.0, true, 100, vec![("size".into(), 128.0)]);
/// let h = monitor.history("svc").unwrap();
/// assert_eq!(h.mean_latency_ms(), Some(15.0));
/// assert_eq!(h.availability(), Some(1.0));
/// ```
#[derive(Debug)]
pub struct ServiceMonitor {
    histories: RwLock<BTreeMap<String, ServiceHistory>>,
    /// Sliding-window bound on observations (and quality ratings) kept
    /// per service.
    window: usize,
}

impl Default for ServiceMonitor {
    fn default() -> ServiceMonitor {
        ServiceMonitor::with_window(MAX_OBSERVATIONS)
    }
}

impl ServiceMonitor {
    /// Creates an empty monitor with the default window of
    /// [`MAX_OBSERVATIONS`] observations per service.
    pub fn new() -> ServiceMonitor {
        ServiceMonitor::default()
    }

    /// Creates an empty monitor retaining at most `window` observations
    /// per service. Small windows make the statistics track regime
    /// changes faster at the cost of noisier percentiles; large windows
    /// do the opposite.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(window: usize) -> ServiceMonitor {
        assert!(window > 0, "observation window must be positive");
        ServiceMonitor {
            histories: RwLock::new(BTreeMap::new()),
            window,
        }
    }

    /// The configured per-service observation bound.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Records the outcome of one invocation, including the failure kind
    /// for the per-kind error breakdown.
    pub fn record(&self, service: &str, outcome: &Outcome, params: Vec<(String, f64)>) {
        self.push(
            service,
            Observation {
                latency_ms: duration_ms(outcome.latency),
                success: outcome.result.is_ok(),
                cost_micros: outcome.cost.as_micros(),
                params,
                error_kind: outcome.result.as_ref().err().map(|e| e.kind()),
            },
        );
    }

    /// Records an observation from raw components (no failure kind).
    ///
    /// Histories are bounded sliding windows (the configured
    /// [`window`](Self::window) of most recent observations,
    /// [`MAX_OBSERVATIONS`] by default): unbounded growth would make
    /// every ranking pass O(lifetime) and predictions would average over
    /// stale regimes.
    pub fn record_raw(
        &self,
        service: &str,
        latency_ms: f64,
        success: bool,
        cost_micros: u64,
        params: Vec<(String, f64)>,
    ) {
        self.push(
            service,
            Observation {
                latency_ms,
                success,
                cost_micros,
                params,
                error_kind: None,
            },
        );
    }

    fn push(&self, service: &str, observation: Observation) {
        let cost_micros = observation.cost_micros;
        let mut map = self.histories.write();
        let history = map.entry(service.to_string()).or_default();
        history.observations.push(observation);
        history.total_cost_micros = history.total_cost_micros.saturating_add(cost_micros);
        if history.observations.len() > self.window {
            // Drop the oldest half in one amortized move.
            history.observations.drain(..(self.window / 2).max(1));
        }
    }

    /// Records a user-supplied quality rating (§2: "Users can also provide
    /// methods to rate the quality of different services").
    ///
    /// # Errors
    ///
    /// [`SdkError::InvalidRating`] if `rating` is outside `[0, 1]` (NaN
    /// included).
    pub fn rate_quality(&self, service: &str, rating: f64) -> Result<(), SdkError> {
        if !(0.0..=1.0).contains(&rating) {
            return Err(SdkError::InvalidRating(format!(
                "{rating} for {service}: must be in [0, 1]"
            )));
        }
        let mut map = self.histories.write();
        let history = map.entry(service.to_string()).or_default();
        history.quality_ratings.push(rating);
        if history.quality_ratings.len() > self.window {
            history.quality_ratings.drain(..(self.window / 2).max(1));
        }
        Ok(())
    }

    /// A snapshot of one service's history.
    pub fn history(&self, service: &str) -> Option<ServiceHistory> {
        self.histories.read().get(service).cloned()
    }

    /// Names of all monitored services.
    pub fn services(&self) -> Vec<String> {
        self.histories.read().keys().cloned().collect()
    }

    /// Cross-service default for cold-start prediction (§2: "the average
    /// value for similar services"): mean of the mean latencies of the
    /// given services.
    pub fn class_mean_latency_ms(&self, services: &[String]) -> Option<f64> {
        let map = self.histories.read();
        let means: Vec<f64> = services
            .iter()
            .filter_map(|s| map.get(s).and_then(ServiceHistory::mean_latency_ms))
            .collect();
        cogsdk_stats::descriptive::mean(&means)
    }

    /// Total lifetime spend across all services (not limited by the
    /// observation window).
    pub fn total_cost(&self) -> MicroDollars {
        let map = self.histories.read();
        let micros: u64 = map.values().map(|h| h.total_cost_micros).sum();
        MicroDollars::from_micros(micros)
    }
}

/// Converts a [`Duration`] to fractional milliseconds.
pub fn duration_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor_with_data() -> ServiceMonitor {
        let m = ServiceMonitor::new();
        for (lat, ok) in [(10.0, true), (20.0, true), (30.0, true), (100.0, false)] {
            m.record_raw("svc", lat, ok, 50, vec![("size".into(), lat * 2.0)]);
        }
        m
    }

    #[test]
    fn latency_statistics() {
        let m = monitor_with_data();
        let h = m.history("svc").unwrap();
        assert_eq!(h.mean_latency_ms(), Some(20.0));
        assert_eq!(h.median_latency_ms(), Some(20.0));
        assert_eq!(h.availability(), Some(0.75));
        let s = h.latency_summary().unwrap();
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.max(), 30.0);
    }

    #[test]
    fn failed_calls_excluded_from_latency_but_counted_for_availability() {
        let m = monitor_with_data();
        let h = m.history("svc").unwrap();
        assert_eq!(h.success_latencies().len(), 3);
        assert_eq!(h.observations().len(), 4);
    }

    #[test]
    fn param_series_pairs_latency_with_parameter() {
        let m = monitor_with_data();
        let h = m.history("svc").unwrap();
        let (xs, ys) = h.param_series("size");
        assert_eq!(xs, vec![20.0, 40.0, 60.0]);
        assert_eq!(ys, vec![10.0, 20.0, 30.0]);
        let (xs, _) = h.param_series("missing");
        assert!(xs.is_empty());
    }

    #[test]
    fn quality_ratings_average() {
        let m = ServiceMonitor::new();
        m.rate_quality("svc", 0.8).unwrap();
        m.rate_quality("svc", 0.6).unwrap();
        assert_eq!(m.history("svc").unwrap().mean_quality(), Some(0.7));
    }

    #[test]
    fn bad_rating_is_rejected_not_recorded() {
        let m = ServiceMonitor::new();
        for bad in [1.5, -0.1, f64::NAN] {
            let err = m.rate_quality("svc", bad).unwrap_err();
            assert!(matches!(err, SdkError::InvalidRating(_)), "{bad}: {err}");
            assert!(err.to_string().contains("[0, 1]"), "{err}");
        }
        // A rejected rating must leave no trace in the history.
        assert!(m.history("svc").is_none());
        m.rate_quality("svc", 1.0).unwrap(); // boundary values are valid
        m.rate_quality("svc", 0.0).unwrap();
        assert_eq!(m.history("svc").unwrap().mean_quality(), Some(0.5));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let m = ServiceMonitor::new();
        for i in 1..=100 {
            m.record_raw("svc", i as f64, true, 0, vec![]);
        }
        let h = m.history("svc").unwrap();
        assert_eq!(h.p95_latency_ms(), Some(95.0));
        assert_eq!(h.p99_latency_ms(), Some(99.0));
        assert_eq!(h.latency_percentile(50.0), Some(50.0));
        assert_eq!(h.latency_percentile(100.0), Some(100.0));
        assert_eq!(h.latency_percentile(0.0), None);
        assert_eq!(h.latency_percentile(101.0), None);
        assert!(ServiceHistory::default().p95_latency_ms().is_none());
    }

    #[test]
    fn tail_latencies_match_individual_percentiles() {
        let m = ServiceMonitor::new();
        for i in 1..=100 {
            m.record_raw("svc", (101 - i) as f64, true, 0, vec![]);
        }
        let h = m.history("svc").unwrap();
        assert_eq!(h.tail_latencies_ms(), Some((95.0, 99.0)));
        assert_eq!(
            h.tail_latencies_ms(),
            Some((h.p95_latency_ms().unwrap(), h.p99_latency_ms().unwrap()))
        );
        assert!(ServiceHistory::default().tail_latencies_ms().is_none());
    }

    #[test]
    fn failure_kinds_break_down_errors() {
        use cogsdk_sim::cost::MicroDollars;
        use cogsdk_sim::service::{Outcome, ServiceError};
        use std::time::Duration;

        let m = ServiceMonitor::new();
        for error in [
            ServiceError::Timeout,
            ServiceError::Timeout,
            ServiceError::Unavailable,
        ] {
            let outcome = Outcome {
                result: Err(error),
                latency: Duration::from_millis(5),
                cost: MicroDollars::from_micros(0),
                started: cogsdk_sim::SimTime::ZERO,
            };
            m.record("svc", &outcome, vec![]);
        }
        m.record_raw("svc", 1.0, false, 0, vec![]); // kind unknown
        m.record_raw("svc", 1.0, true, 0, vec![]);
        let kinds = m.history("svc").unwrap().failure_kinds();
        assert_eq!(kinds.get("timeout"), Some(&2));
        assert_eq!(kinds.get("unavailable"), Some(&1));
        assert_eq!(kinds.get("unknown"), Some(&1));
        assert_eq!(kinds.values().sum::<usize>(), 4);
    }

    #[test]
    fn unknown_service_has_no_history() {
        assert!(ServiceMonitor::new().history("nope").is_none());
    }

    #[test]
    fn class_mean_latency_for_cold_start() {
        let m = ServiceMonitor::new();
        m.record_raw("a", 10.0, true, 0, vec![]);
        m.record_raw("b", 30.0, true, 0, vec![]);
        let mean = m
            .class_mean_latency_ms(&["a".into(), "b".into(), "no-data".into()])
            .unwrap();
        assert_eq!(mean, 20.0);
        assert!(m.class_mean_latency_ms(&["no-data".into()]).is_none());
    }

    #[test]
    fn history_window_is_bounded_but_cost_is_lifetime() {
        let m = ServiceMonitor::new();
        let n = MAX_OBSERVATIONS * 3;
        for i in 0..n {
            m.record_raw("svc", i as f64, true, 1, vec![]);
        }
        let h = m.history("svc").unwrap();
        assert!(h.observations().len() <= MAX_OBSERVATIONS);
        // The window holds the most recent observations.
        let last = h.observations().last().unwrap();
        assert_eq!(last.latency_ms, (n - 1) as f64);
        // Lifetime cost is unaffected by the window.
        assert_eq!(m.total_cost().as_micros(), n as u64);
    }

    #[test]
    fn custom_window_bounds_history() {
        let m = ServiceMonitor::with_window(16);
        assert_eq!(m.window(), 16);
        for i in 0..100 {
            m.record_raw("svc", i as f64, true, 1, vec![]);
        }
        let h = m.history("svc").unwrap();
        assert!(h.observations().len() <= 16);
        assert_eq!(h.observations().last().unwrap().latency_ms, 99.0);
        // Cost stays lifetime even with a tiny window.
        assert_eq!(m.total_cost().as_micros(), 100);
        // Quality ratings share the bound.
        for _ in 0..100 {
            m.rate_quality("svc", 0.5).unwrap();
        }
        assert_eq!(m.history("svc").unwrap().mean_quality(), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = ServiceMonitor::with_window(0);
    }

    #[test]
    fn cost_accounting() {
        let m = monitor_with_data();
        assert_eq!(m.total_cost().as_micros(), 200);
        let h = m.history("svc").unwrap();
        assert_eq!(h.mean_cost_micros(), Some(50.0));
    }

    #[test]
    fn histogram_of_latencies() {
        let m = monitor_with_data();
        let h = m.history("svc").unwrap().latency_histogram(40.0, 4);
        assert_eq!(h.counts(), &[0, 1, 1, 1]);
        assert_eq!(h.overflow(), 0);
    }
}
