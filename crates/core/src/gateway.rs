//! The rich SDK's HTTP interface.
//!
//! §2: "In order to allow programs written in other languages to access
//! the rich SDK, the rich SDK can expose an HTTP interface allowing
//! applications written in other languages to use it."
//!
//! [`HttpGateway`] implements a small HTTP/1.1 surface over a
//! [`RichSdk`]:
//!
//! | Route | Body | Effect |
//! |---|---|---|
//! | `POST /invoke/{service}` | request JSON | [`RichSdk::invoke`] |
//! | `POST /invoke-cached/{service}` | request JSON | [`RichSdk::invoke_cached`] |
//! | `POST /invoke-class/{class}` | request JSON | ranked selection + failover |
//! | `GET /services` | — | registered service names |
//! | `GET /monitor/{service}` | — | availability and latency summary |
//! | `GET /metrics` | — | Prometheus text exposition of the SDK's metrics |
//! | `GET /trace` | — | JSON-Lines dump of the trace event ring buffer |
//! | `GET /trace?trace_id=N` | — | one trace (tail-sampler retained copy preferred) |
//! | `GET /slo` | — | burn-rate status of every configured objective |
//! | `GET /profile` | — | critical-path profile of retained traces |
//! | `POST /snapshot` | — | checkpoint the attached durable store (admin) |
//! | `POST /query` | `{"sparql": …}` | conjunctive query via the host's KB planner |
//!
//! Invocation requests may carry an `X-Tenant` header; the gateway interns
//! the tenant into the trace context so every downstream RED metric
//! (attempts, cache probes, pool jobs) gains a per-tenant series, and
//! records per-route request/error/duration metrics with exemplar trace
//! ids. When an [`SloEngine`] is attached ([`HttpGateway::with_observability`])
//! each finished invocation is classified against its objectives, and when
//! a tail sampler is enabled the gateway holds the trace open until the
//! verdict (error/deadline/breaker/SLO-violation) is known.
//!
//! The request parser/serializer is self-contained ([`parse_request`],
//! [`format_response`]) so the protocol layer is unit-testable without
//! sockets; [`HttpGateway::serve`] binds a real `std::net::TcpListener`
//! for cross-language clients.

use crate::rank::RankOptions;
use crate::sdk::RichSdk;
use crate::SdkError;
use cogsdk_json::{json, Json};
use cogsdk_obs::{
    profile_traces, prometheus_text, trace_jsonl_with_summary, EventKind, SloEngine, SloStatus,
    SpanCtx, TenantId, TraceId, TraceVerdict,
};
use cogsdk_sim::service::Request;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A minimal parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The request method (`GET`, `POST`, …).
    pub method: String,
    /// The path, with any query string stripped into `query`.
    pub path: String,
    /// Decoded query-string pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Value of the `X-Tenant` header, if the client sent one.
    pub tenant: Option<String>,
    /// The raw body.
    pub body: String,
}

impl HttpRequest {
    /// First value for a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A minimal HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Value for a `Retry-After` header (seconds), set on 503s produced
    /// by load shedding and open circuit breakers.
    pub retry_after: Option<u64>,
}

impl HttpResponse {
    fn ok(body: Json) -> HttpResponse {
        HttpResponse {
            status: 200,
            body: body.to_json(),
            content_type: "application/json",
            retry_after: None,
        }
    }

    fn text(content_type: &'static str, body: String) -> HttpResponse {
        HttpResponse {
            status: 200,
            body,
            content_type,
            retry_after: None,
        }
    }

    fn error(status: u16, message: impl std::fmt::Display) -> HttpResponse {
        HttpResponse {
            status,
            body: json!({"error": (message.to_string())}).to_json(),
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// A structured error body carrying the machine-readable kind and
    /// whether the client can reasonably retry — so cross-language
    /// callers branch on fields instead of parsing prose.
    fn structured_error(
        status: u16,
        message: impl std::fmt::Display,
        kind: &str,
        retryable: bool,
    ) -> HttpResponse {
        HttpResponse {
            status,
            body: json!({
                "error": (message.to_string()),
                "kind": kind,
                "retryable": (retryable),
            })
            .to_json(),
            content_type: "application/json",
            retry_after: None,
        }
    }

    fn with_retry_after(mut self, secs: u64) -> HttpResponse {
        self.retry_after = Some(secs);
        self
    }
}

/// Parses the head + body of an HTTP/1.1 request from text.
///
/// # Errors
///
/// Returns a description of the first malformation (missing request
/// line, bad content length, …).
pub fn parse_request(text: &str) -> Result<HttpRequest, String> {
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();
    let version = parts.next().ok_or("missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version: {version}"));
    }
    if !path.starts_with('/') {
        return Err(format!("invalid path: {path}"));
    }
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (
            p.to_string(),
            q.split('&')
                .filter(|pair| !pair.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (pair.to_string(), String::new()),
                })
                .collect(),
        ),
        None => (path, Vec::new()),
    };
    // Scan headers to the blank line (capturing `X-Tenant`); body is the
    // rest.
    let mut tenant = None;
    let mut body = String::new();
    let mut in_body = false;
    for line in lines {
        if in_body {
            if !body.is_empty() {
                body.push_str("\r\n");
            }
            body.push_str(line);
        } else if line.is_empty() {
            in_body = true;
        } else if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("x-tenant") {
                let value = value.trim();
                if !value.is_empty() {
                    tenant = Some(value.to_string());
                }
            }
        }
    }
    Ok(HttpRequest {
        method,
        path,
        query,
        tenant,
        body,
    })
}

/// Serializes a response as HTTP/1.1 text.
pub fn format_response(resp: &HttpResponse) -> String {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    let retry_after = match resp.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len(),
        retry_after,
        resp.body
    )
}

/// Concurrency limits for the gateway's invocation routes (the bulkhead).
///
/// Each invocation route (`invoke`, `invoke-cached`, `invoke-class`) gets
/// its own compartment: at most `max_concurrent` requests run at once,
/// at most `max_queue` wait for a slot, and no waiter holds a connection
/// longer than `max_queue_wait` before being shed with a 503 carrying
/// `Retry-After: {retry_after_secs}`. Read-only routes (`/metrics`,
/// `/services`, …) are never gated so operators can always observe an
/// overloaded gateway.
#[derive(Debug, Clone)]
pub struct GatewayLimits {
    /// Requests allowed in flight per route.
    pub max_concurrent: usize,
    /// Requests allowed to wait for a slot per route.
    pub max_queue: usize,
    /// Longest a queued request waits before being shed.
    pub max_queue_wait: Duration,
    /// `Retry-After` hint (seconds) on shed and breaker-rejected responses.
    pub retry_after_secs: u64,
}

impl Default for GatewayLimits {
    fn default() -> GatewayLimits {
        GatewayLimits {
            max_concurrent: 64,
            max_queue: 128,
            max_queue_wait: Duration::from_millis(50),
            retry_after_secs: 1,
        }
    }
}

#[derive(Default)]
struct GateState {
    active: usize,
    queued: usize,
}

/// Per-route concurrency gate with a bounded wait queue.
///
/// Uses real wall-clock waiting (not the virtual sim clock): the gateway
/// serves actual threads, and the bulkhead exists to protect them.
struct Bulkhead {
    limits: GatewayLimits,
    routes: Mutex<HashMap<String, GateState>>,
    freed: Condvar,
}

enum Admit {
    Entered,
    Shed,
}

impl Bulkhead {
    fn new(limits: GatewayLimits) -> Bulkhead {
        Bulkhead {
            limits,
            routes: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    fn enter(&self, route: &str) -> Admit {
        let mut routes = self.routes.lock();
        {
            let state = routes.entry(route.to_string()).or_default();
            if state.active < self.limits.max_concurrent {
                state.active += 1;
                return Admit::Entered;
            }
            if state.queued >= self.limits.max_queue {
                return Admit::Shed;
            }
            state.queued += 1;
        }
        let deadline = std::time::Instant::now() + self.limits.max_queue_wait;
        loop {
            {
                let state = routes.get_mut(route).expect("queued on this route");
                if state.active < self.limits.max_concurrent {
                    state.queued -= 1;
                    state.active += 1;
                    return Admit::Entered;
                }
            }
            if self.freed.wait_until(&mut routes, deadline).timed_out() {
                let state = routes.get_mut(route).expect("queued on this route");
                if state.active < self.limits.max_concurrent {
                    state.queued -= 1;
                    state.active += 1;
                    return Admit::Entered;
                }
                state.queued -= 1;
                return Admit::Shed;
            }
        }
    }

    fn exit(&self, route: &str) {
        let mut routes = self.routes.lock();
        if let Some(state) = routes.get_mut(route) {
            state.active = state.active.saturating_sub(1);
        }
        self.freed.notify_all();
    }
}

/// First path segment — bounds metric label cardinality.
fn route_label(path: &str) -> &str {
    path.split('/').find(|s| !s.is_empty()).unwrap_or("/")
}

/// Admin hook behind `POST /snapshot`: checkpoints whatever durable
/// store the host wired in (the gateway itself has no KB dependency)
/// and returns a JSON status body.
pub type SnapshotHandler = Box<dyn Fn() -> Result<Json, String> + Send + Sync>;

/// Query hook behind `POST /query`: the host wires in a closure running a
/// SPARQL-subset conjunctive query against its knowledge base (the
/// gateway itself has no KB dependency). The handler receives the full
/// request so it can honor the `X-Tenant` header and body flags such as
/// `explain`; it returns the JSON body to serve, or an error message
/// answered as a 400.
pub type QueryHandler = Box<dyn Fn(&HttpRequest) -> Result<Json, String> + Send + Sync>;

/// Bulk-ingest hook behind `POST /ingest/bulk`: the host wires in a
/// closure driving its streaming bulk loader (e.g. built with
/// `cogsdk_kb::gateway_ingest_handler`). The handler receives the full
/// request so it can honor tuning fields in the body (batch size, worker
/// count, queue bounds); it returns the JSON ingest report, or an error
/// message answered as a 400.
pub type IngestHandler = Box<dyn Fn(&HttpRequest) -> Result<Json, String> + Send + Sync>;

/// The gateway: routes HTTP requests onto a shared [`RichSdk`].
pub struct HttpGateway {
    sdk: Arc<RichSdk>,
    gate: Bulkhead,
    slo: Option<Arc<SloEngine>>,
    snapshot: Option<SnapshotHandler>,
    query: Option<QueryHandler>,
    ingest: Option<IngestHandler>,
}

impl std::fmt::Debug for HttpGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpGateway").finish_non_exhaustive()
    }
}

impl HttpGateway {
    /// Creates a gateway over an SDK handle with default limits.
    pub fn new(sdk: Arc<RichSdk>) -> HttpGateway {
        HttpGateway::with_limits(sdk, GatewayLimits::default())
    }

    /// Creates a gateway with explicit bulkhead limits.
    pub fn with_limits(sdk: Arc<RichSdk>, limits: GatewayLimits) -> HttpGateway {
        HttpGateway {
            sdk,
            gate: Bulkhead::new(limits),
            slo: None,
            snapshot: None,
            query: None,
            ingest: None,
        }
    }

    /// As [`HttpGateway::with_limits`], additionally attaching an SLO
    /// engine: every finished invocation is classified against its
    /// objectives, burn rates are re-evaluated, and `/slo` serves the
    /// engine's status.
    pub fn with_observability(
        sdk: Arc<RichSdk>,
        limits: GatewayLimits,
        slo: Arc<SloEngine>,
    ) -> HttpGateway {
        HttpGateway {
            sdk,
            gate: Bulkhead::new(limits),
            slo: Some(slo),
            snapshot: None,
            query: None,
            ingest: None,
        }
    }

    /// The attached SLO engine, if any.
    pub fn slo_engine(&self) -> Option<&Arc<SloEngine>> {
        self.slo.as_ref()
    }

    /// Attaches the `POST /snapshot` admin handler. The host passes a
    /// closure checkpointing its durable store (e.g. a
    /// `PersonalKnowledgeBase::snapshot` call); the route answers 404
    /// until one is attached.
    pub fn set_snapshot_handler(&mut self, handler: SnapshotHandler) {
        self.snapshot = Some(handler);
    }

    /// Attaches the `POST /query` handler. The host passes a closure
    /// evaluating conjunctive queries against its knowledge base (e.g.
    /// built with `cogsdk_kb::gateway_query_handler`); the route answers
    /// 404 until one is attached.
    pub fn set_query_handler(&mut self, handler: QueryHandler) {
        self.query = Some(handler);
    }

    /// Attaches the `POST /ingest/bulk` handler. The host passes a
    /// closure driving its streaming bulk loader (e.g. built with
    /// `cogsdk_kb::gateway_ingest_handler`); the route answers 404 until
    /// one is attached.
    pub fn set_ingest_handler(&mut self, handler: IngestHandler) {
        self.ingest = Some(handler);
    }

    /// Routes one parsed request through the bulkhead. No I/O.
    pub fn handle(&self, request: &HttpRequest) -> HttpResponse {
        let route = route_label(&request.path);
        let gated = request.method == "POST"
            && matches!(route, "invoke" | "invoke-cached" | "invoke-class");
        let response = if gated {
            match self.gate.enter(route) {
                Admit::Entered => {
                    let response = self.route(request);
                    self.gate.exit(route);
                    response
                }
                Admit::Shed => self.shed_response(route),
            }
        } else {
            self.route(request)
        };
        let telemetry = self.sdk.telemetry();
        let metrics = telemetry.metrics();
        if metrics.is_enabled() {
            let status = response.status.to_string();
            let tenant = request
                .tenant
                .as_deref()
                .map(|t| telemetry.tracer().intern_tenant(t))
                .and_then(|id| telemetry.tracer().tenant_name(id));
            match tenant.as_deref() {
                Some(t) => metrics.inc_counter(
                    "gateway_requests_total",
                    &[("route", route), ("status", &status), ("tenant", t)],
                ),
                None => metrics.inc_counter(
                    "gateway_requests_total",
                    &[("route", route), ("status", &status)],
                ),
            }
        }
        response
    }

    /// Runs one invocation-route handler inside a fresh (per-tenant)
    /// trace: holds the trace in the tail sampler until the outcome is
    /// known, records per-route RED metrics with an exemplar trace id,
    /// classifies the request against any attached SLO objectives, and
    /// finalizes the sampler with the resulting verdict.
    fn observe_invoke(
        &self,
        route: &str,
        request: &HttpRequest,
        f: impl FnOnce(&SpanCtx) -> HttpResponse,
    ) -> HttpResponse {
        let telemetry = self.sdk.telemetry();
        let tracer = telemetry.tracer();
        if !telemetry.is_enabled() {
            let ctx = tracer.new_trace();
            return f(&ctx);
        }
        let tenant_id = match request.tenant.as_deref() {
            Some(t) => tracer.intern_tenant(t),
            None => TenantId::NONE,
        };
        let ctx = tracer.new_trace_for(tenant_id);
        let sampler = telemetry.sampler();
        if let Some(sampler) = &sampler {
            sampler.hold(ctx.trace);
        }
        let started = tracer.now_ms();
        let response = f(&ctx);
        let latency_ms = (tracer.now_ms() - started).max(0.0);
        // 4xx responses are the client's fault; only 5xx burns the budget.
        let ok = response.status < 500;
        let metrics = telemetry.metrics();
        let status = response.status.to_string();
        let tenant = tracer.tenant_name(tenant_id);
        match tenant.as_deref() {
            Some(t) => {
                metrics.inc_counter(
                    "gateway_route_requests_total",
                    &[("route", route), ("status", &status), ("tenant", t)],
                );
                if !ok {
                    metrics.inc_counter(
                        "gateway_route_errors_total",
                        &[("route", route), ("tenant", t)],
                    );
                }
                metrics.observe_with_exemplar(
                    "gateway_route_latency_ms",
                    &[("route", route), ("tenant", t)],
                    latency_ms,
                    ctx.trace.0,
                );
            }
            None => {
                metrics.inc_counter(
                    "gateway_route_requests_total",
                    &[("route", route), ("status", &status)],
                );
                if !ok {
                    metrics.inc_counter("gateway_route_errors_total", &[("route", route)]);
                }
                metrics.observe_with_exemplar(
                    "gateway_route_latency_ms",
                    &[("route", route)],
                    latency_ms,
                    ctx.trace.0,
                );
            }
        }
        let mut violated = false;
        if let Some(engine) = &self.slo {
            let record = engine.record(route, tenant.as_deref(), ok, latency_ms, &ctx);
            violated = record.violated;
        }
        if let Some(sampler) = &sampler {
            let verdict = if response.status == 504 {
                Some(TraceVerdict::DeadlineExceeded)
            } else if response.status == 503 {
                Some(TraceVerdict::BreakerRejected)
            } else if response.status >= 500 {
                Some(TraceVerdict::Error)
            } else if violated {
                Some(TraceVerdict::SloViolation)
            } else {
                None
            };
            sampler.finalize(ctx.trace, verdict);
        }
        response
    }

    fn shed_response(&self, route: &str) -> HttpResponse {
        let telemetry = self.sdk.telemetry();
        if telemetry.is_enabled() {
            let ctx = telemetry.tracer().new_trace();
            telemetry.tracer().emit(&ctx, || EventKind::GatewayShed {
                route: route.to_string(),
            });
            telemetry
                .metrics()
                .inc_counter("gateway_shed_total", &[("route", route)]);
        }
        HttpResponse::structured_error(
            503,
            format!("gateway overloaded on route {route}; request shed"),
            "shed",
            true,
        )
        .with_retry_after(self.gate.limits.retry_after_secs)
    }

    fn sdk_error_response(&self, error: &SdkError) -> HttpResponse {
        let status = match error {
            SdkError::UnknownService(_) | SdkError::EmptyClass(_) => 404,
            SdkError::Rejected(_) | SdkError::InvalidRating(_) => 400,
            SdkError::AllFailed(_) => 502,
            SdkError::DeadlineExceeded(_) => 504,
            SdkError::CircuitOpen(_) => 503,
        };
        let retryable = matches!(
            error,
            SdkError::AllFailed(_) | SdkError::DeadlineExceeded(_) | SdkError::CircuitOpen(_)
        );
        let response = HttpResponse::structured_error(status, error, error.kind(), retryable);
        if matches!(error, SdkError::CircuitOpen(_)) {
            let metrics = self.sdk.telemetry().metrics();
            if metrics.is_enabled() {
                metrics.inc_counter("gateway_breaker_rejections_total", &[]);
            }
            return response.with_retry_after(self.gate.limits.retry_after_secs);
        }
        response
    }

    fn route(&self, request: &HttpRequest) -> HttpResponse {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["services"]) => {
                let names: Vec<Json> = self
                    .sdk
                    .registry()
                    .names()
                    .into_iter()
                    .map(Json::from)
                    .collect();
                HttpResponse::ok(json!({"services": (Json::Array(names))}))
            }
            ("GET", ["metrics"]) => {
                // Publish ring/sampler overflow counters so drops are
                // visible in the same scrape that would miss their data.
                self.sdk.telemetry().sync_health_metrics();
                HttpResponse::text(
                    "text/plain; version=0.0.4",
                    prometheus_text(self.sdk.telemetry().metrics()),
                )
            }
            ("GET", ["trace"]) => self.trace_response(request),
            ("GET", ["slo"]) => self.slo_response(),
            ("POST", ["snapshot"]) => self.snapshot_response(),
            ("POST", ["query"]) => self.query_response(request),
            ("POST", ["ingest", "bulk"]) => self.ingest_response(request),
            ("GET", ["profile"]) => self.profile_response(request),
            ("GET", ["monitor", service]) => match self.sdk.monitor().history(service) {
                Some(history) => {
                    let mut body = Json::object();
                    body.insert("service", *service);
                    body.insert("observations", history.observations().len());
                    body.insert("availability", history.availability());
                    body.insert("mean_latency_ms", history.mean_latency_ms());
                    body.insert("median_latency_ms", history.median_latency_ms());
                    body.insert("mean_quality", history.mean_quality());
                    HttpResponse::ok(body)
                }
                None => HttpResponse::error(404, format!("no history for {service}")),
            },
            ("POST", ["invoke", service]) => match parse_body(&request.body) {
                Ok(req) => self.observe_invoke("invoke", request, |ctx| {
                    match self.sdk.invoke_in(service, &req, ctx) {
                        Ok(resp) => HttpResponse::ok(json!({"payload": (resp.payload)})),
                        Err(e) => self.sdk_error_response(&e),
                    }
                }),
                Err(e) => HttpResponse::error(400, e),
            },
            ("POST", ["invoke-cached", service]) => match parse_body(&request.body) {
                Ok(req) => self.observe_invoke("invoke-cached", request, |ctx| {
                    match self.sdk.invoke_cached_outcome_in(service, &req, ctx) {
                        Ok((resp, source)) => HttpResponse::ok(json!({
                            "payload": (resp.payload),
                            "cache_hit": (source.served_locally()),
                        })),
                        Err(e) => self.sdk_error_response(&e),
                    }
                }),
                Err(e) => HttpResponse::error(400, e),
            },
            ("POST", ["invoke-class", class]) => match parse_body(&request.body) {
                Ok(req) => self.observe_invoke("invoke-class", request, |ctx| {
                    match self
                        .sdk
                        .invoke_class_in(class, &req, &RankOptions::default(), ctx)
                    {
                        Ok(ok) => HttpResponse::ok(json!({
                            "payload": (ok.response.payload),
                            "service": (ok.service.as_str()),
                            "services_tried": (ok.services_tried),
                        })),
                        Err(e) => self.sdk_error_response(&e),
                    }
                }),
                Err(e) => HttpResponse::error(400, e),
            },
            ("POST", _) | ("GET", _) => HttpResponse::error(404, "no such route"),
            _ => HttpResponse::error(405, "method not allowed"),
        }
    }

    /// `/trace` dump: the full ring buffer, or — with `?trace_id=N` —
    /// just that trace, preferring the tail sampler's retained copy (it
    /// survives ring-buffer wraparound). Every dump ends with a summary
    /// line reporting how many events the ring dropped.
    fn trace_response(&self, request: &HttpRequest) -> HttpResponse {
        let tracer = self.sdk.telemetry().tracer();
        let events = match request.query_param("trace_id") {
            Some(raw) => {
                let id = match raw.trim_start_matches('t').parse::<u64>() {
                    Ok(id) => TraceId(id),
                    Err(_) => return HttpResponse::error(400, format!("bad trace_id: {raw}")),
                };
                let retained = self
                    .sdk
                    .telemetry()
                    .sampler()
                    .and_then(|s| s.retained_trace(id));
                match retained {
                    Some(trace) => trace.events,
                    None => tracer
                        .events()
                        .into_iter()
                        .filter(|e| e.trace == id)
                        .collect(),
                }
            }
            None => tracer.events(),
        };
        HttpResponse::text(
            "application/x-ndjson",
            trace_jsonl_with_summary(&events, tracer.dropped()),
        )
    }

    /// `POST /snapshot`: checkpoints the host's durable store through
    /// the attached handler.
    fn snapshot_response(&self) -> HttpResponse {
        let handler = match &self.snapshot {
            Some(handler) => handler,
            None => return HttpResponse::error(404, "no snapshot handler attached"),
        };
        match handler() {
            Ok(body) => HttpResponse::ok(body),
            Err(e) => HttpResponse::error(500, format!("snapshot failed: {e}")),
        }
    }

    /// `POST /query`: evaluates a conjunctive query through the attached
    /// handler. Handler errors (parse failures, bad bodies) answer 400.
    fn query_response(&self, request: &HttpRequest) -> HttpResponse {
        let handler = match &self.query {
            Some(handler) => handler,
            None => return HttpResponse::error(404, "no query handler attached"),
        };
        match handler(request) {
            Ok(body) => HttpResponse::ok(body),
            Err(e) => HttpResponse::error(400, e),
        }
    }

    /// `POST /ingest/bulk`: streams the request's documents through the
    /// attached bulk loader. Handler errors (bad bodies, failed commits)
    /// answer 400.
    fn ingest_response(&self, request: &HttpRequest) -> HttpResponse {
        let handler = match &self.ingest {
            Some(handler) => handler,
            None => return HttpResponse::error(404, "no ingest handler attached"),
        };
        match handler(request) {
            Ok(body) => HttpResponse::ok(body),
            Err(e) => HttpResponse::error(400, e),
        }
    }

    /// `/slo` status: one entry per objective with window counts, burn
    /// rates, and alert state.
    fn slo_response(&self) -> HttpResponse {
        let engine = match &self.slo {
            Some(engine) => engine,
            None => return HttpResponse::error(404, "no SLO engine attached"),
        };
        let statuses = engine.snapshot();
        let mut list = Json::Array(Vec::new());
        for status in &statuses {
            list.push(slo_status_json(status));
        }
        let mut body = Json::object();
        body.insert("burn_threshold", engine.config().burn_threshold);
        body.insert("objectives", list);
        HttpResponse::ok(body)
    }

    /// `/profile`: critical-path profile over the tail sampler's retained
    /// traces. `?format=flamegraph` returns folded-stacks text;
    /// `?top=K` limits the per-operation table.
    fn profile_response(&self, request: &HttpRequest) -> HttpResponse {
        let sampler = match self.sdk.telemetry().sampler() {
            Some(sampler) => sampler,
            None => return HttpResponse::error(404, "tail sampling not enabled"),
        };
        let profile = profile_traces(&sampler.retained_span_trees());
        if request.query_param("format") == Some("flamegraph") {
            return HttpResponse::text("text/plain; charset=utf-8", profile.flamegraph());
        }
        let mut body = profile.to_json();
        if let Some(top) = request.query_param("top").and_then(|t| t.parse().ok()) {
            let mut ops = Json::Array(Vec::new());
            for op in profile.top_k(top) {
                let mut o = Json::object();
                o.insert("op", op.op.as_str());
                o.insert("spans", op.spans as i64);
                o.insert("total_ms", op.total_ms);
                o.insert("self_ms", op.self_ms);
                o.insert("critical_ms", op.critical_ms);
                ops.push(o);
            }
            body.insert("ops", ops);
        }
        HttpResponse::ok(body)
    }

    /// Handles raw HTTP text end to end (parse → route → serialize).
    pub fn handle_text(&self, text: &str) -> String {
        let response = match parse_request(text) {
            Ok(req) => self.handle(&req),
            Err(e) => HttpResponse::error(400, e),
        };
        format_response(&response)
    }

    /// Binds a TCP listener and serves until `shutdown` is set, returning
    /// the bound address immediately via the callback. Each connection is
    /// served on the accept thread (the gateway targets test harnesses
    /// and cross-language demos, not production load).
    ///
    /// # Errors
    ///
    /// I/O errors from binding.
    pub fn serve(
        self: Arc<Self>,
        addr: &str,
        shutdown: Arc<AtomicBool>,
    ) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let gateway = self;
        let handle = std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = serve_connection(&gateway, stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // Short poll keeps shutdown responsive while adding
                        // well under a millisecond to connection latency.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok((local, handle))
    }
}

fn serve_connection(gateway: &HttpGateway, stream: std::net::TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    // Read header block.
    let mut head = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        head.push_str(&line);
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    // Honour Content-Length for the body.
    let content_length = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    let text = format!("{head}{}", String::from_utf8_lossy(&body));
    let response = gateway.handle_text(&text);
    let mut stream = stream;
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn slo_status_json(status: &SloStatus) -> Json {
    let mut o = Json::object();
    o.insert("route", status.spec.route.as_str());
    if let Some(tenant) = &status.spec.tenant {
        o.insert("tenant", tenant.as_str());
    }
    o.insert("latency_ms", status.spec.latency_ms);
    o.insert("objective", status.spec.objective);
    o.insert("fast_good", status.fast_good as i64);
    o.insert("fast_bad", status.fast_bad as i64);
    o.insert("slow_good", status.slow_good as i64);
    o.insert("slow_bad", status.slow_bad as i64);
    o.insert("fast_burn", status.fast_burn);
    o.insert("slow_burn", status.slow_burn);
    o.insert("alerting", status.alerting);
    o.insert("alerts_fired", status.alerts_fired as i64);
    o
}

fn parse_body(body: &str) -> Result<Request, String> {
    let parsed = Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let operation = parsed
        .get("operation")
        .and_then(Json::as_str)
        .unwrap_or("invoke")
        .to_string();
    let payload = parsed.get("payload").cloned().unwrap_or(Json::Null);
    let mut request = Request::new(operation, payload);
    if let Some(params) = parsed.get("params").and_then(Json::as_object) {
        for (name, value) in params {
            if let Some(v) = value.as_f64() {
                request = request.with_param(name.clone(), v);
            }
        }
    }
    Ok(request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_sim::latency::LatencyModel;
    use cogsdk_sim::{SimEnv, SimService};

    fn gateway() -> (SimEnv, Arc<HttpGateway>) {
        let env = SimEnv::with_seed(77);
        let sdk = Arc::new(RichSdk::new(&env));
        sdk.register(
            SimService::builder("echo", "demo")
                .latency(LatencyModel::constant_ms(5.0))
                .build(&env),
        );
        sdk.register(
            SimService::builder("echo2", "demo")
                .latency(LatencyModel::constant_ms(25.0))
                .build(&env),
        );
        (env, Arc::new(HttpGateway::new(sdk)))
    }

    fn post(path: &str, body: &str) -> String {
        format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn parse_request_round_trip() {
        let req = parse_request(&post("/invoke/echo", "{\"payload\":1}")).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/invoke/echo");
        assert_eq!(req.body, "{\"payload\":1}");
    }

    #[test]
    fn parse_request_rejects_malformed() {
        assert!(parse_request("").is_err());
        assert!(parse_request("GET\r\n\r\n").is_err());
        assert!(parse_request("GET /x SPDY/3\r\n\r\n").is_err());
        assert!(parse_request("GET nopath HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn invoke_route_works() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text(&post(
            "/invoke/echo",
            r#"{"operation": "op", "payload": {"x": 1}}"#,
        ));
        assert!(raw.starts_with("HTTP/1.1 200 OK"), "{raw}");
        let body = raw.split("\r\n\r\n").nth(1).unwrap();
        let parsed = Json::parse(body).unwrap();
        assert_eq!(parsed.pointer("/payload/x").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn cached_route_reports_hits() {
        let (_env, gw) = gateway();
        let body = r#"{"payload": {"k": "v"}}"#;
        let first = gw.handle_text(&post("/invoke-cached/echo", body));
        let second = gw.handle_text(&post("/invoke-cached/echo", body));
        assert!(first.contains("\"cache_hit\":false"));
        assert!(second.contains("\"cache_hit\":true"));
    }

    #[test]
    fn class_route_selects_and_reports_service() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text(&post("/invoke-class/demo", r#"{"payload": {}}"#));
        assert!(raw.contains("\"service\":"), "{raw}");
        assert!(raw.starts_with("HTTP/1.1 200"));
    }

    #[test]
    fn services_and_monitor_routes() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text("GET /services HTTP/1.1\r\n\r\n");
        assert!(raw.contains("echo2"), "{raw}");
        // Monitor before any call: 404.
        let raw = gw.handle_text("GET /monitor/echo HTTP/1.1\r\n\r\n");
        assert!(raw.starts_with("HTTP/1.1 404"));
        gw.handle_text(&post("/invoke/echo", r#"{"payload": 1}"#));
        let raw = gw.handle_text("GET /monitor/echo HTTP/1.1\r\n\r\n");
        assert!(raw.contains("\"availability\":1.0"), "{raw}");
    }

    #[test]
    fn error_statuses() {
        let (_env, gw) = gateway();
        assert!(gw
            .handle_text(&post("/invoke/ghost", r#"{"payload": 1}"#))
            .starts_with("HTTP/1.1 404"));
        assert!(gw
            .handle_text(&post("/invoke/echo", "not json"))
            .starts_with("HTTP/1.1 400"));
        assert!(gw
            .handle_text("DELETE /services HTTP/1.1\r\n\r\n")
            .starts_with("HTTP/1.1 405"));
        assert!(gw
            .handle_text("GET /nope HTTP/1.1\r\n\r\n")
            .starts_with("HTTP/1.1 404"));
        assert!(gw.handle_text("garbage").starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn params_flow_through_as_latency_parameters() {
        let (_env, gw) = gateway();
        gw.handle_text(&post(
            "/invoke/echo",
            r#"{"payload": 1, "params": {"size": 512.0}}"#,
        ));
        let history = gw.sdk.monitor().history("echo").unwrap();
        let (xs, _) = history.param_series("size");
        assert_eq!(xs, vec![512.0]);
    }

    #[test]
    fn body_with_crlf_survives_parsing() {
        // Multi-line bodies must be reassembled byte-for-byte.
        let body = "{\"a\":\r\n1}";
        let text = format!(
            "POST /invoke/echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = parse_request(&text).unwrap();
        assert_eq!(req.body, body);
    }

    #[test]
    fn format_response_reports_content_length() {
        let resp = HttpResponse {
            status: 200,
            body: "{\"x\":1}".into(),
            content_type: "application/json",
            retry_after: None,
        };
        let text = format_response(&resp);
        assert!(text.contains("Content-Length: 7"));
        assert!(text.contains("Content-Type: application/json"));
        assert!(text.ends_with("{\"x\":1}"));
        let unknown = HttpResponse {
            status: 418,
            body: String::new(),
            content_type: "text/plain",
            retry_after: None,
        };
        assert!(format_response(&unknown).starts_with("HTTP/1.1 418 Unknown"));
    }

    #[test]
    fn format_response_emits_retry_after_header() {
        let resp = HttpResponse::structured_error(503, "shed", "shed", true).with_retry_after(7);
        let text = format_response(&resp);
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 7\r\n"), "{text}");
    }

    fn telemetry_gateway() -> (SimEnv, Arc<HttpGateway>) {
        let env = SimEnv::with_seed(78);
        let sdk = Arc::new(RichSdk::with_telemetry(&env, cogsdk_obs::Telemetry::new()));
        sdk.register(
            SimService::builder("echo", "demo")
                .latency(LatencyModel::constant_ms(5.0))
                .build(&env),
        );
        sdk.register(
            SimService::builder("flaky", "demo")
                .latency(LatencyModel::constant_ms(5.0))
                .failures(cogsdk_sim::failure::FailurePlan::flaky(1.0))
                .build(&env),
        );
        (env, Arc::new(HttpGateway::new(sdk)))
    }

    #[test]
    fn metrics_route_exposes_prometheus_text() {
        let (_env, gw) = telemetry_gateway();
        gw.handle_text(&post("/invoke/echo", r#"{"payload": 1}"#));
        // Inject failures so the error-kind breakdown has data.
        for _ in 0..2 {
            gw.handle_text(&post("/invoke/flaky", r#"{"payload": 1}"#));
        }
        let raw = gw.handle_text("GET /metrics HTTP/1.1\r\n\r\n");
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        assert!(raw.contains("Content-Type: text/plain"), "{raw}");
        let body = raw.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("# TYPE sdk_attempts_total counter"), "{body}");
        assert!(
            body.contains(r#"sdk_attempts_total{outcome="ok",service="echo"} 1"#),
            "{body}"
        );
        assert!(body.contains("sdk_errors_total{kind="), "{body}");
        assert!(body.contains("sdk_attempt_latency_ms_bucket"), "{body}");
        // The gateway counts its own requests too.
        assert!(
            body.contains(r#"gateway_requests_total{route="invoke""#),
            "{body}"
        );
    }

    #[test]
    fn trace_route_streams_jsonl_events() {
        let (_env, gw) = telemetry_gateway();
        gw.handle_text(&post("/invoke/echo", r#"{"payload": 1}"#));
        let raw = gw.handle_text("GET /trace HTTP/1.1\r\n\r\n");
        assert!(raw.contains("Content-Type: application/x-ndjson"), "{raw}");
        let body = raw.split("\r\n\r\n").nth(1).unwrap();
        let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
        assert!(lines.len() >= 3, "{body}"); // invoke_start, attempt, invoke_end
        for line in &lines {
            Json::parse(line).expect("each trace line is standalone JSON");
        }
        assert!(body.contains("\"event\":\"invoke_start\""), "{body}");
        assert!(body.contains("\"event\":\"attempt\""), "{body}");
    }

    #[test]
    fn metrics_route_on_untelemetered_sdk_is_empty_but_ok() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text("GET /metrics HTTP/1.1\r\n\r\n");
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    }

    #[test]
    fn invoke_class_empty_class_is_404() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text(&post("/invoke-class/ghost-class", r#"{"payload": 1}"#));
        assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");
    }

    #[test]
    fn structured_error_bodies_carry_kind_and_retryable() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text(&post("/invoke/ghost", r#"{"payload": 1}"#));
        assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");
        assert!(raw.contains("\"kind\":\"unknown_service\""), "{raw}");
        assert!(raw.contains("\"retryable\":false"), "{raw}");
        let (_env, gw) = telemetry_gateway();
        let raw = gw.handle_text(&post("/invoke/flaky", r#"{"payload": 1}"#));
        assert!(raw.starts_with("HTTP/1.1 502"), "{raw}");
        assert!(raw.contains("\"kind\":\"all_failed\""), "{raw}");
        assert!(raw.contains("\"retryable\":true"), "{raw}");
    }

    #[test]
    fn saturated_route_sheds_with_retry_after_and_metrics() {
        let env = SimEnv::with_seed(79);
        let sdk = Arc::new(RichSdk::with_telemetry(&env, cogsdk_obs::Telemetry::new()));
        sdk.register(
            SimService::builder("echo", "demo")
                .latency(LatencyModel::constant_ms(5.0))
                .build(&env),
        );
        let limits = GatewayLimits {
            max_concurrent: 0, // route fully saturated: every request sheds
            max_queue: 0,
            max_queue_wait: Duration::from_millis(1),
            retry_after_secs: 2,
        };
        let gw = HttpGateway::with_limits(sdk, limits);
        let raw = gw.handle_text(&post("/invoke/echo", r#"{"payload": 1}"#));
        assert!(raw.starts_with("HTTP/1.1 503 Service Unavailable"), "{raw}");
        assert!(raw.contains("Retry-After: 2\r\n"), "{raw}");
        assert!(raw.contains("\"kind\":\"shed\""), "{raw}");
        assert!(raw.contains("\"retryable\":true"), "{raw}");
        // Read-only routes stay reachable during overload, so operators
        // can still observe the shedding they are debugging.
        let metrics = gw.handle_text("GET /metrics HTTP/1.1\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(
            metrics.contains(r#"gateway_shed_total{route="invoke"} 1"#),
            "{metrics}"
        );
        assert!(
            metrics.contains(r#"gateway_requests_total{route="invoke",status="503"} 1"#),
            "{metrics}"
        );
        let trace = gw.handle_text("GET /trace HTTP/1.1\r\n\r\n");
        assert!(trace.contains("\"event\":\"gateway_shed\""), "{trace}");
    }

    #[test]
    fn queued_request_waits_then_sheds() {
        let env = SimEnv::with_seed(80);
        let sdk = Arc::new(RichSdk::new(&env));
        sdk.register(
            SimService::builder("echo", "demo")
                .latency(LatencyModel::constant_ms(5.0))
                .build(&env),
        );
        let limits = GatewayLimits {
            max_concurrent: 0,
            max_queue: 4, // admitted to the queue, but no slot ever frees
            max_queue_wait: Duration::from_millis(5),
            retry_after_secs: 1,
        };
        let gw = HttpGateway::with_limits(sdk, limits);
        let started = std::time::Instant::now();
        let raw = gw.handle_text(&post("/invoke/echo", r#"{"payload": 1}"#));
        assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
        assert!(started.elapsed() >= Duration::from_millis(5));
    }

    fn post_as_tenant(path: &str, tenant: &str, body: &str) -> String {
        format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nX-Tenant: {tenant}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn parse_request_splits_query_and_captures_tenant() {
        let req = parse_request(
            "GET /trace?trace_id=7&format=flamegraph HTTP/1.1\r\nX-Tenant: acme\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.path, "/trace");
        assert_eq!(req.query_param("trace_id"), Some("7"));
        assert_eq!(req.query_param("format"), Some("flamegraph"));
        assert_eq!(req.tenant.as_deref(), Some("acme"));
        // No query, no tenant: fields stay empty.
        let bare = parse_request("GET /trace HTTP/1.1\r\n\r\n").unwrap();
        assert!(bare.query.is_empty());
        assert_eq!(bare.tenant, None);
    }

    #[test]
    fn tenant_header_threads_per_tenant_series_through_the_stack() {
        let (_env, gw) = telemetry_gateway();
        gw.handle_text(&post_as_tenant("/invoke/echo", "acme", r#"{"payload": 1}"#));
        gw.handle_text(&post("/invoke/echo", r#"{"payload": 2}"#));
        let raw = gw.handle_text("GET /metrics HTTP/1.1\r\n\r\n");
        let body = raw.split("\r\n\r\n").nth(1).unwrap();
        // SDK-level RED picks up the tenant...
        assert!(
            body.contains(r#"sdk_attempts_total{outcome="ok",service="echo",tenant="acme"} 1"#),
            "{body}"
        );
        // ...while untenanted traffic keeps its original series.
        assert!(
            body.contains(r#"sdk_attempts_total{outcome="ok",service="echo"} 1"#),
            "{body}"
        );
        // Gateway-level RED: request counts and a latency histogram with
        // per-tenant series.
        assert!(
            body.contains(
                r#"gateway_route_requests_total{route="invoke",status="200",tenant="acme"} 1"#
            ),
            "{body}"
        );
        assert!(
            body.contains(r#"gateway_route_latency_ms_bucket{route="invoke",tenant="acme""#),
            "{body}"
        );
    }

    #[test]
    fn slo_route_serves_objective_status() {
        let env = SimEnv::with_seed(81);
        let telemetry = cogsdk_obs::Telemetry::new();
        let sdk = Arc::new(RichSdk::with_telemetry(&env, telemetry.clone()));
        sdk.register(
            SimService::builder("echo", "demo")
                .latency(LatencyModel::constant_ms(5.0))
                .build(&env),
        );
        let engine = Arc::new(cogsdk_obs::SloEngine::new(
            telemetry,
            cogsdk_obs::SloConfig::default(),
        ));
        engine.add_objective(cogsdk_obs::SloSpec::new("invoke", 100.0, 0.99));
        let gw = HttpGateway::with_observability(sdk, GatewayLimits::default(), engine);
        gw.handle_text(&post("/invoke/echo", r#"{"payload": 1}"#));
        let raw = gw.handle_text("GET /slo HTTP/1.1\r\n\r\n");
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        let body = Json::parse(raw.split("\r\n\r\n").nth(1).unwrap()).unwrap();
        assert_eq!(
            body.pointer("/objectives/0/route").and_then(Json::as_str),
            Some("invoke")
        );
        assert_eq!(
            body.pointer("/objectives/0/alerting")
                .and_then(Json::as_bool),
            Some(false)
        );
        // Without an engine the route 404s instead of lying.
        let (_env2, plain) = telemetry_gateway();
        assert!(plain
            .handle_text("GET /slo HTTP/1.1\r\n\r\n")
            .starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn profile_and_filtered_trace_serve_retained_traces() {
        let env = SimEnv::with_seed(82);
        let telemetry = cogsdk_obs::Telemetry::new();
        telemetry.enable_tail_sampling(cogsdk_obs::SamplerConfig {
            healthy_sample_rate: 1.0,
            ..cogsdk_obs::SamplerConfig::default()
        });
        let sdk = Arc::new(RichSdk::with_telemetry(&env, telemetry.clone()));
        sdk.register(
            SimService::builder("echo", "demo")
                .latency(LatencyModel::constant_ms(5.0))
                .build(&env),
        );
        let gw = HttpGateway::new(sdk);
        gw.handle_text(&post("/invoke/echo", r#"{"payload": 1}"#));
        let raw = gw.handle_text("GET /profile HTTP/1.1\r\n\r\n");
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        let body = Json::parse(raw.split("\r\n\r\n").nth(1).unwrap()).unwrap();
        assert_eq!(body.pointer("/traces").and_then(Json::as_i64), Some(1));
        assert!(
            body.pointer("/ops/0/op")
                .and_then(Json::as_str)
                .unwrap_or("")
                .starts_with("invoke:"),
            "{body:?}"
        );
        // Flamegraph rendering of the same data.
        let flame = gw.handle_text("GET /profile?format=flamegraph HTTP/1.1\r\n\r\n");
        assert!(flame.contains("invoke:"), "{flame}");
        // Filtered trace dump: only the requested trace, plus a summary.
        let retained = gw.sdk.telemetry().sampler().unwrap().retained();
        let id = retained[0].trace;
        let raw = gw.handle_text(&format!("GET /trace?trace_id={} HTTP/1.1\r\n\r\n", id.0));
        let body = raw.split("\r\n\r\n").nth(1).unwrap();
        for line in body.lines().filter(|l| !l.is_empty()) {
            let parsed = Json::parse(line).unwrap();
            if parsed.get("summary").is_none() {
                assert_eq!(
                    parsed.pointer("/trace").and_then(Json::as_i64),
                    Some(id.0 as i64),
                    "{line}"
                );
            }
        }
        assert!(body.contains("\"summary\":true"), "{body}");
        // Nonsense ids are a client error.
        assert!(gw
            .handle_text("GET /trace?trace_id=xyz HTTP/1.1\r\n\r\n")
            .starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn real_tcp_round_trip() {
        let (_env, gw) = gateway();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (addr, handle) = gw.clone().serve("127.0.0.1:0", shutdown.clone()).unwrap();
        // A real cross-language-style client: plain TCP.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let body = r#"{"operation": "op", "payload": {"over": "tcp"}}"#;
        stream
            .write_all(post("/invoke/echo", body).as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"over\":\"tcp\""));
        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }
    #[test]
    fn snapshot_route_requires_an_attached_handler() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text(&post("/snapshot", ""));
        assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");
        assert!(raw.contains("no snapshot handler attached"), "{raw}");
    }

    #[test]
    fn snapshot_route_runs_the_attached_handler() {
        let env = SimEnv::with_seed(81);
        let sdk = Arc::new(RichSdk::new(&env));
        let mut gw = HttpGateway::new(sdk);
        let calls = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let seen = calls.clone();
        gw.set_snapshot_handler(Box::new(move || {
            seen.fetch_add(1, Ordering::SeqCst);
            Ok(json!({"bytes": 123, "ok": true}))
        }));
        let raw = gw.handle_text(&post("/snapshot", ""));
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        let body = Json::parse(raw.split("\r\n\r\n").nth(1).unwrap()).unwrap();
        assert_eq!(body.pointer("/bytes").and_then(Json::as_i64), Some(123));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // Handler failures surface as 500s.
        gw.set_snapshot_handler(Box::new(|| Err("disk full".into())));
        let raw = gw.handle_text(&post("/snapshot", ""));
        assert!(raw.starts_with("HTTP/1.1 500"), "{raw}");
        assert!(raw.contains("disk full"), "{raw}");
    }

    #[test]
    fn query_route_requires_an_attached_handler() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text(&post("/query", r#"{"sparql": "SELECT ..."}"#));
        assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");
        assert!(raw.contains("no query handler attached"), "{raw}");
    }

    #[test]
    fn query_route_runs_the_attached_handler() {
        let env = SimEnv::with_seed(82);
        let sdk = Arc::new(RichSdk::new(&env));
        let mut gw = HttpGateway::new(sdk);
        // The handler sees the parsed request: body and tenant header.
        gw.set_query_handler(Box::new(move |req| {
            let body = Json::parse(&req.body).map_err(|e| e.to_string())?;
            let sparql = body
                .get("sparql")
                .and_then(Json::as_str)
                .ok_or("missing sparql")?;
            Ok(json!({
                "echo": (sparql),
                "tenant": (req.tenant.clone().unwrap_or_default()),
            }))
        }));
        let raw = gw.handle_text(&post_as_tenant(
            "/query",
            "acme",
            r#"{"sparql": "SELECT ?x WHERE { ?x <p> ?y }"}"#,
        ));
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        let body = Json::parse(raw.split("\r\n\r\n").nth(1).unwrap()).unwrap();
        assert_eq!(
            body.pointer("/echo").and_then(Json::as_str),
            Some("SELECT ?x WHERE { ?x <p> ?y }")
        );
        assert_eq!(body.pointer("/tenant").and_then(Json::as_str), Some("acme"));
        // Handler errors (bad bodies, parse failures) answer 400.
        let raw = gw.handle_text(&post("/query", "not json"));
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    }
}
