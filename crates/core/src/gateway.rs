//! The rich SDK's HTTP interface.
//!
//! §2: "In order to allow programs written in other languages to access
//! the rich SDK, the rich SDK can expose an HTTP interface allowing
//! applications written in other languages to use it."
//!
//! [`HttpGateway`] implements a small HTTP/1.1 surface over a
//! [`RichSdk`]:
//!
//! | Route | Body | Effect |
//! |---|---|---|
//! | `POST /invoke/{service}` | request JSON | [`RichSdk::invoke`] |
//! | `POST /invoke-cached/{service}` | request JSON | [`RichSdk::invoke_cached`] |
//! | `POST /invoke-class/{class}` | request JSON | ranked selection + failover |
//! | `GET /services` | — | registered service names |
//! | `GET /monitor/{service}` | — | availability and latency summary |
//! | `GET /metrics` | — | Prometheus text exposition of the SDK's metrics |
//! | `GET /trace` | — | JSON-Lines dump of the trace event ring buffer |
//!
//! The request parser/serializer is self-contained ([`parse_request`],
//! [`format_response`]) so the protocol layer is unit-testable without
//! sockets; [`HttpGateway::serve`] binds a real `std::net::TcpListener`
//! for cross-language clients.

use crate::rank::RankOptions;
use crate::sdk::RichSdk;
use crate::SdkError;
use cogsdk_json::{json, Json};
use cogsdk_obs::{prometheus_text, trace_jsonl};
use cogsdk_sim::service::Request;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A minimal parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The request method (`GET`, `POST`, …).
    pub method: String,
    /// The path (no query-string handling; the SDK API never needs one).
    pub path: String,
    /// The raw body.
    pub body: String,
}

/// A minimal HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
}

impl HttpResponse {
    fn ok(body: Json) -> HttpResponse {
        HttpResponse {
            status: 200,
            body: body.to_json(),
            content_type: "application/json",
        }
    }

    fn text(content_type: &'static str, body: String) -> HttpResponse {
        HttpResponse {
            status: 200,
            body,
            content_type,
        }
    }

    fn error(status: u16, message: impl std::fmt::Display) -> HttpResponse {
        HttpResponse {
            status,
            body: json!({"error": (message.to_string())}).to_json(),
            content_type: "application/json",
        }
    }
}

/// Parses the head + body of an HTTP/1.1 request from text.
///
/// # Errors
///
/// Returns a description of the first malformation (missing request
/// line, bad content length, …).
pub fn parse_request(text: &str) -> Result<HttpRequest, String> {
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();
    let version = parts.next().ok_or("missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version: {version}"));
    }
    if !path.starts_with('/') {
        return Err(format!("invalid path: {path}"));
    }
    // Skip headers to the blank line; body is the rest.
    let mut body = String::new();
    let mut in_body = false;
    for line in lines {
        if in_body {
            if !body.is_empty() {
                body.push_str("\r\n");
            }
            body.push_str(line);
        } else if line.is_empty() {
            in_body = true;
        }
    }
    Ok(HttpRequest { method, path, body })
}

/// Serializes a response as HTTP/1.1 text.
pub fn format_response(resp: &HttpResponse) -> String {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        502 => "Bad Gateway",
        _ => "Unknown",
    };
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len(),
        resp.body
    )
}

/// The gateway: routes HTTP requests onto a shared [`RichSdk`].
pub struct HttpGateway {
    sdk: Arc<RichSdk>,
}

impl std::fmt::Debug for HttpGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpGateway").finish_non_exhaustive()
    }
}

impl HttpGateway {
    /// Creates a gateway over an SDK handle.
    pub fn new(sdk: Arc<RichSdk>) -> HttpGateway {
        HttpGateway { sdk }
    }

    /// Routes one parsed request. Pure: no I/O.
    pub fn handle(&self, request: &HttpRequest) -> HttpResponse {
        let response = self.route(request);
        let metrics = self.sdk.telemetry().metrics();
        if metrics.is_enabled() {
            // First path segment bounds label cardinality.
            let route = request
                .path
                .split('/')
                .find(|s| !s.is_empty())
                .unwrap_or("/");
            let status = response.status.to_string();
            metrics.inc_counter(
                "gateway_requests_total",
                &[("route", route), ("status", &status)],
            );
        }
        response
    }

    fn route(&self, request: &HttpRequest) -> HttpResponse {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["services"]) => {
                let names: Vec<Json> = self
                    .sdk
                    .registry()
                    .names()
                    .into_iter()
                    .map(Json::from)
                    .collect();
                HttpResponse::ok(json!({"services": (Json::Array(names))}))
            }
            ("GET", ["metrics"]) => HttpResponse::text(
                "text/plain; version=0.0.4",
                prometheus_text(self.sdk.telemetry().metrics()),
            ),
            ("GET", ["trace"]) => HttpResponse::text(
                "application/x-ndjson",
                trace_jsonl(&self.sdk.telemetry().tracer().events()),
            ),
            ("GET", ["monitor", service]) => match self.sdk.monitor().history(service) {
                Some(history) => {
                    let mut body = Json::object();
                    body.insert("service", *service);
                    body.insert("observations", history.observations().len());
                    body.insert("availability", history.availability());
                    body.insert("mean_latency_ms", history.mean_latency_ms());
                    body.insert("median_latency_ms", history.median_latency_ms());
                    body.insert("mean_quality", history.mean_quality());
                    HttpResponse::ok(body)
                }
                None => HttpResponse::error(404, format!("no history for {service}")),
            },
            ("POST", ["invoke", service]) => match parse_body(&request.body) {
                Ok(req) => match self.sdk.invoke(service, &req) {
                    Ok(resp) => HttpResponse::ok(json!({"payload": (resp.payload)})),
                    Err(e) => sdk_error_response(&e),
                },
                Err(e) => HttpResponse::error(400, e),
            },
            ("POST", ["invoke-cached", service]) => match parse_body(&request.body) {
                Ok(req) => match self.sdk.invoke_cached(service, &req) {
                    Ok((resp, hit)) => HttpResponse::ok(json!({
                        "payload": (resp.payload),
                        "cache_hit": (hit),
                    })),
                    Err(e) => sdk_error_response(&e),
                },
                Err(e) => HttpResponse::error(400, e),
            },
            ("POST", ["invoke-class", class]) => match parse_body(&request.body) {
                Ok(req) => match self.sdk.invoke_class(class, &req, &RankOptions::default()) {
                    Ok(ok) => HttpResponse::ok(json!({
                        "payload": (ok.response.payload),
                        "service": (ok.service.as_str()),
                        "services_tried": (ok.services_tried),
                    })),
                    Err(e) => sdk_error_response(&e),
                },
                Err(e) => HttpResponse::error(400, e),
            },
            ("POST", _) | ("GET", _) => HttpResponse::error(404, "no such route"),
            _ => HttpResponse::error(405, "method not allowed"),
        }
    }

    /// Handles raw HTTP text end to end (parse → route → serialize).
    pub fn handle_text(&self, text: &str) -> String {
        let response = match parse_request(text) {
            Ok(req) => self.handle(&req),
            Err(e) => HttpResponse::error(400, e),
        };
        format_response(&response)
    }

    /// Binds a TCP listener and serves until `shutdown` is set, returning
    /// the bound address immediately via the callback. Each connection is
    /// served on the accept thread (the gateway targets test harnesses
    /// and cross-language demos, not production load).
    ///
    /// # Errors
    ///
    /// I/O errors from binding.
    pub fn serve(
        self: Arc<Self>,
        addr: &str,
        shutdown: Arc<AtomicBool>,
    ) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let gateway = self;
        let handle = std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = serve_connection(&gateway, stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // Short poll keeps shutdown responsive while adding
                        // well under a millisecond to connection latency.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok((local, handle))
    }
}

fn serve_connection(gateway: &HttpGateway, stream: std::net::TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    // Read header block.
    let mut head = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        head.push_str(&line);
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    // Honour Content-Length for the body.
    let content_length = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    let text = format!("{head}{}", String::from_utf8_lossy(&body));
    let response = gateway.handle_text(&text);
    let mut stream = stream;
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn parse_body(body: &str) -> Result<Request, String> {
    let parsed = Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let operation = parsed
        .get("operation")
        .and_then(Json::as_str)
        .unwrap_or("invoke")
        .to_string();
    let payload = parsed.get("payload").cloned().unwrap_or(Json::Null);
    let mut request = Request::new(operation, payload);
    if let Some(params) = parsed.get("params").and_then(Json::as_object) {
        for (name, value) in params {
            if let Some(v) = value.as_f64() {
                request = request.with_param(name.clone(), v);
            }
        }
    }
    Ok(request)
}

fn sdk_error_response(error: &SdkError) -> HttpResponse {
    match error {
        SdkError::UnknownService(_) | SdkError::EmptyClass(_) => HttpResponse::error(404, error),
        SdkError::Rejected(_) | SdkError::InvalidRating(_) => HttpResponse::error(400, error),
        SdkError::AllFailed(_) => HttpResponse::error(502, error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_sim::latency::LatencyModel;
    use cogsdk_sim::{SimEnv, SimService};

    fn gateway() -> (SimEnv, Arc<HttpGateway>) {
        let env = SimEnv::with_seed(77);
        let sdk = Arc::new(RichSdk::new(&env));
        sdk.register(
            SimService::builder("echo", "demo")
                .latency(LatencyModel::constant_ms(5.0))
                .build(&env),
        );
        sdk.register(
            SimService::builder("echo2", "demo")
                .latency(LatencyModel::constant_ms(25.0))
                .build(&env),
        );
        (env, Arc::new(HttpGateway::new(sdk)))
    }

    fn post(path: &str, body: &str) -> String {
        format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn parse_request_round_trip() {
        let req = parse_request(&post("/invoke/echo", "{\"payload\":1}")).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/invoke/echo");
        assert_eq!(req.body, "{\"payload\":1}");
    }

    #[test]
    fn parse_request_rejects_malformed() {
        assert!(parse_request("").is_err());
        assert!(parse_request("GET\r\n\r\n").is_err());
        assert!(parse_request("GET /x SPDY/3\r\n\r\n").is_err());
        assert!(parse_request("GET nopath HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn invoke_route_works() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text(&post(
            "/invoke/echo",
            r#"{"operation": "op", "payload": {"x": 1}}"#,
        ));
        assert!(raw.starts_with("HTTP/1.1 200 OK"), "{raw}");
        let body = raw.split("\r\n\r\n").nth(1).unwrap();
        let parsed = Json::parse(body).unwrap();
        assert_eq!(parsed.pointer("/payload/x").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn cached_route_reports_hits() {
        let (_env, gw) = gateway();
        let body = r#"{"payload": {"k": "v"}}"#;
        let first = gw.handle_text(&post("/invoke-cached/echo", body));
        let second = gw.handle_text(&post("/invoke-cached/echo", body));
        assert!(first.contains("\"cache_hit\":false"));
        assert!(second.contains("\"cache_hit\":true"));
    }

    #[test]
    fn class_route_selects_and_reports_service() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text(&post("/invoke-class/demo", r#"{"payload": {}}"#));
        assert!(raw.contains("\"service\":"), "{raw}");
        assert!(raw.starts_with("HTTP/1.1 200"));
    }

    #[test]
    fn services_and_monitor_routes() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text("GET /services HTTP/1.1\r\n\r\n");
        assert!(raw.contains("echo2"), "{raw}");
        // Monitor before any call: 404.
        let raw = gw.handle_text("GET /monitor/echo HTTP/1.1\r\n\r\n");
        assert!(raw.starts_with("HTTP/1.1 404"));
        gw.handle_text(&post("/invoke/echo", r#"{"payload": 1}"#));
        let raw = gw.handle_text("GET /monitor/echo HTTP/1.1\r\n\r\n");
        assert!(raw.contains("\"availability\":1.0"), "{raw}");
    }

    #[test]
    fn error_statuses() {
        let (_env, gw) = gateway();
        assert!(gw
            .handle_text(&post("/invoke/ghost", r#"{"payload": 1}"#))
            .starts_with("HTTP/1.1 404"));
        assert!(gw
            .handle_text(&post("/invoke/echo", "not json"))
            .starts_with("HTTP/1.1 400"));
        assert!(gw
            .handle_text("DELETE /services HTTP/1.1\r\n\r\n")
            .starts_with("HTTP/1.1 405"));
        assert!(gw
            .handle_text("GET /nope HTTP/1.1\r\n\r\n")
            .starts_with("HTTP/1.1 404"));
        assert!(gw.handle_text("garbage").starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn params_flow_through_as_latency_parameters() {
        let (_env, gw) = gateway();
        gw.handle_text(&post(
            "/invoke/echo",
            r#"{"payload": 1, "params": {"size": 512.0}}"#,
        ));
        let history = gw.sdk.monitor().history("echo").unwrap();
        let (xs, _) = history.param_series("size");
        assert_eq!(xs, vec![512.0]);
    }

    #[test]
    fn body_with_crlf_survives_parsing() {
        // Multi-line bodies must be reassembled byte-for-byte.
        let body = "{\"a\":\r\n1}";
        let text = format!(
            "POST /invoke/echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = parse_request(&text).unwrap();
        assert_eq!(req.body, body);
    }

    #[test]
    fn format_response_reports_content_length() {
        let resp = HttpResponse {
            status: 200,
            body: "{\"x\":1}".into(),
            content_type: "application/json",
        };
        let text = format_response(&resp);
        assert!(text.contains("Content-Length: 7"));
        assert!(text.contains("Content-Type: application/json"));
        assert!(text.ends_with("{\"x\":1}"));
        let unknown = HttpResponse {
            status: 418,
            body: String::new(),
            content_type: "text/plain",
        };
        assert!(format_response(&unknown).starts_with("HTTP/1.1 418 Unknown"));
    }

    fn telemetry_gateway() -> (SimEnv, Arc<HttpGateway>) {
        let env = SimEnv::with_seed(78);
        let sdk = Arc::new(RichSdk::with_telemetry(&env, cogsdk_obs::Telemetry::new()));
        sdk.register(
            SimService::builder("echo", "demo")
                .latency(LatencyModel::constant_ms(5.0))
                .build(&env),
        );
        sdk.register(
            SimService::builder("flaky", "demo")
                .latency(LatencyModel::constant_ms(5.0))
                .failures(cogsdk_sim::failure::FailurePlan::flaky(1.0))
                .build(&env),
        );
        (env, Arc::new(HttpGateway::new(sdk)))
    }

    #[test]
    fn metrics_route_exposes_prometheus_text() {
        let (_env, gw) = telemetry_gateway();
        gw.handle_text(&post("/invoke/echo", r#"{"payload": 1}"#));
        // Inject failures so the error-kind breakdown has data.
        for _ in 0..2 {
            gw.handle_text(&post("/invoke/flaky", r#"{"payload": 1}"#));
        }
        let raw = gw.handle_text("GET /metrics HTTP/1.1\r\n\r\n");
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        assert!(raw.contains("Content-Type: text/plain"), "{raw}");
        let body = raw.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("# TYPE sdk_attempts_total counter"), "{body}");
        assert!(
            body.contains(r#"sdk_attempts_total{outcome="ok",service="echo"} 1"#),
            "{body}"
        );
        assert!(body.contains("sdk_errors_total{kind="), "{body}");
        assert!(body.contains("sdk_attempt_latency_ms_bucket"), "{body}");
        // The gateway counts its own requests too.
        assert!(
            body.contains(r#"gateway_requests_total{route="invoke""#),
            "{body}"
        );
    }

    #[test]
    fn trace_route_streams_jsonl_events() {
        let (_env, gw) = telemetry_gateway();
        gw.handle_text(&post("/invoke/echo", r#"{"payload": 1}"#));
        let raw = gw.handle_text("GET /trace HTTP/1.1\r\n\r\n");
        assert!(raw.contains("Content-Type: application/x-ndjson"), "{raw}");
        let body = raw.split("\r\n\r\n").nth(1).unwrap();
        let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
        assert!(lines.len() >= 3, "{body}"); // invoke_start, attempt, invoke_end
        for line in &lines {
            Json::parse(line).expect("each trace line is standalone JSON");
        }
        assert!(body.contains("\"event\":\"invoke_start\""), "{body}");
        assert!(body.contains("\"event\":\"attempt\""), "{body}");
    }

    #[test]
    fn metrics_route_on_untelemetered_sdk_is_empty_but_ok() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text("GET /metrics HTTP/1.1\r\n\r\n");
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    }

    #[test]
    fn invoke_class_empty_class_is_404() {
        let (_env, gw) = gateway();
        let raw = gw.handle_text(&post("/invoke-class/ghost-class", r#"{"payload": 1}"#));
        assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");
    }

    #[test]
    fn real_tcp_round_trip() {
        let (_env, gw) = gateway();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (addr, handle) = gw.clone().serve("127.0.0.1:0", shutdown.clone()).unwrap();
        // A real cross-language-style client: plain TCP.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let body = r#"{"operation": "op", "payload": {"over": "tcp"}}"#;
        stream
            .write_all(post("/invoke/echo", body).as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"over\":\"tcp\""));
        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }
}
