//! Natural-language-understanding support (§2.2, Figure 3).
//!
//! "Natural language understanding services typically expose an API
//! wherein they are passed a single text document and return the results
//! from analyzing the single document. Our rich SDK provides support for
//! analyzing multiple documents and aggregating the results… We provide
//! the ability to perform Web searches, analyze all of the documents
//! returned by a Web search, and aggregate the results from all analyzed
//! documents." The SDK also combines *multiple* NLU services, assigning
//! "a higher degree of confidence to entities or relationships which are
//! identified by more services" (§2.1), and stores fetched documents
//! locally "along with the query itself and the time the query was made".

use crate::cache::{FetchSource, ResponseCache};
use crate::invoke::{invoke_with_retry, invoke_with_retry_within};
use crate::monitor::ServiceMonitor;
use crate::pool::ThreadPool;
use crate::resilience::Deadline;
use crate::SdkError;
use cogsdk_json::{json, Json};
use cogsdk_obs::{SpanCtx, Telemetry};
use cogsdk_search::html::extract_text;
use cogsdk_sim::clock::SimTime;
use cogsdk_sim::service::{Request, ServiceError, SimService};
use cogsdk_text::analysis::DocumentAnalysis;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One entity aggregated across a document set.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityAggregate {
    /// Canonical entity id.
    pub canonical: String,
    /// Display name.
    pub name: String,
    /// Number of documents mentioning the entity.
    pub documents: usize,
    /// Total mentions across all documents.
    pub mentions: usize,
    /// Mention-weighted mean sentiment toward the entity — the paper's
    /// "how favorably people, companies, and other entities are
    /// represented on the Web".
    pub mean_sentiment: f64,
}

/// One keyword aggregated across a document set.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordAggregate {
    /// The keyword.
    pub text: String,
    /// Number of documents containing it.
    pub documents: usize,
    /// Total occurrences.
    pub total_count: usize,
}

/// The aggregate of many single-document analyses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AggregateAnalysis {
    /// Number of documents aggregated.
    pub documents: usize,
    /// Entities, most widely mentioned first.
    pub entities: Vec<EntityAggregate>,
    /// Keywords, most widespread first.
    pub keywords: Vec<KeywordAggregate>,
    /// Concept → mean confidence over documents mentioning it.
    pub concepts: Vec<(String, f64)>,
    /// Mean document sentiment.
    pub mean_sentiment: f64,
}

/// Folds per-document analyses into one aggregate.
pub fn aggregate(analyses: &[DocumentAnalysis]) -> AggregateAnalysis {
    if analyses.is_empty() {
        return AggregateAnalysis::default();
    }
    let mut entities: BTreeMap<String, EntityAggregate> = BTreeMap::new();
    let mut keywords: BTreeMap<String, KeywordAggregate> = BTreeMap::new();
    let mut concepts: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    let mut sentiment_sum = 0.0;
    for a in analyses {
        sentiment_sum += a.sentiment.score;
        for e in &a.entities {
            let agg = entities
                .entry(e.canonical.clone())
                .or_insert_with(|| EntityAggregate {
                    canonical: e.canonical.clone(),
                    name: e.name.clone(),
                    documents: 0,
                    mentions: 0,
                    mean_sentiment: 0.0,
                });
            // Mention-weighted running mean of sentiment.
            let new_mentions = agg.mentions + e.count;
            agg.mean_sentiment = (agg.mean_sentiment * agg.mentions as f64
                + e.sentiment.score * e.count as f64)
                / new_mentions.max(1) as f64;
            agg.documents += 1;
            agg.mentions = new_mentions;
        }
        for k in &a.keywords {
            let agg = keywords
                .entry(k.text.clone())
                .or_insert_with(|| KeywordAggregate {
                    text: k.text.clone(),
                    documents: 0,
                    total_count: 0,
                });
            agg.documents += 1;
            agg.total_count += k.count;
        }
        for c in &a.concepts {
            let e = concepts.entry(c.label.clone()).or_insert((0.0, 0));
            e.0 += c.confidence;
            e.1 += 1;
        }
    }
    let mut entities: Vec<EntityAggregate> = entities.into_values().collect();
    entities.sort_by(|a, b| {
        b.documents
            .cmp(&a.documents)
            .then(b.mentions.cmp(&a.mentions))
            .then_with(|| a.canonical.cmp(&b.canonical))
    });
    let mut keywords: Vec<KeywordAggregate> = keywords.into_values().collect();
    keywords.sort_by(|a, b| {
        b.documents
            .cmp(&a.documents)
            .then(b.total_count.cmp(&a.total_count))
            .then_with(|| a.text.cmp(&b.text))
    });
    let mut concepts: Vec<(String, f64)> = concepts
        .into_iter()
        .map(|(label, (sum, n))| (label, sum / n as f64))
        .collect();
    concepts.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    AggregateAnalysis {
        documents: analyses.len(),
        entities,
        keywords,
        concepts,
        mean_sentiment: sentiment_sum / analyses.len() as f64,
    }
}

/// An entity in a multi-service consensus, with the fraction of services
/// that found it (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusEntity {
    /// Canonical entity id.
    pub canonical: String,
    /// Fraction of responding services that identified the entity.
    pub confidence: f64,
    /// Names of the services that identified it.
    pub services: Vec<String>,
    /// Mean sentiment across those services.
    pub mean_sentiment: f64,
}

/// A relation in a multi-service consensus.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusRelation {
    /// Subject entity id.
    pub subject: String,
    /// Predicate.
    pub predicate: String,
    /// Object entity id.
    pub object: String,
    /// Fraction of responding services that extracted the relation.
    pub confidence: f64,
}

/// The combined output of several NLU services on one document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConsensusAnalysis {
    /// Services that responded successfully.
    pub responding_services: Vec<String>,
    /// Entities with cross-service confidence, highest first.
    pub entities: Vec<ConsensusEntity>,
    /// Relations with cross-service confidence, highest first.
    pub relations: Vec<ConsensusRelation>,
}

/// A search hit as the SDK sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebHit {
    /// Result URL.
    pub url: String,
    /// Result title.
    pub title: String,
}

/// A stored web document: the paper stores "all of the documents from a
/// particular Web search along with the query itself and the time the
/// query was made" (§2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredDocument {
    /// The URL the document came from.
    pub url: String,
    /// Raw HTML.
    pub html: String,
    /// The query that surfaced it.
    pub query: String,
    /// Virtual time the query was made.
    pub fetched_at: SimTime,
}

/// Local store of fetched documents, grouped by query.
#[derive(Debug, Default)]
pub struct DocumentStore {
    docs: RwLock<Vec<StoredDocument>>,
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> DocumentStore {
        DocumentStore::default()
    }

    /// Stores one fetched document.
    pub fn store(&self, doc: StoredDocument) {
        self.docs.write().push(doc);
    }

    /// Documents fetched for a query, in fetch order.
    pub fn by_query(&self, query: &str) -> Vec<StoredDocument> {
        self.docs
            .read()
            .iter()
            .filter(|d| d.query == query)
            .cloned()
            .collect()
    }

    /// Looks up a document by URL (any query).
    pub fn by_url(&self, url: &str) -> Option<StoredDocument> {
        self.docs.read().iter().find(|d| d.url == url).cloned()
    }

    /// Total stored documents.
    pub fn len(&self) -> usize {
        self.docs.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.read().is_empty()
    }
}

/// The NLU support layer: NLU/search/web services plus local document
/// storage and a pool for parallel fan-out.
pub struct NluSupport {
    monitor: Arc<ServiceMonitor>,
    pool: Arc<ThreadPool>,
    store: Arc<DocumentStore>,
    cache: Option<Arc<ResponseCache>>,
    telemetry: Telemetry,
    retries: usize,
}

impl std::fmt::Debug for NluSupport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NluSupport")
            .field("stored_documents", &self.store.len())
            .finish_non_exhaustive()
    }
}

impl NluSupport {
    /// Creates the support layer (no response cache; analysis results are
    /// recomputed per call).
    pub fn new(monitor: Arc<ServiceMonitor>, pool: Arc<ThreadPool>) -> NluSupport {
        NluSupport {
            monitor,
            pool,
            store: Arc::new(DocumentStore::new()),
            cache: None,
            telemetry: Telemetry::disabled(),
            retries: 2,
        }
    }

    /// As [`NluSupport::new`], sharing the SDK's sharded response cache
    /// so [`analyze_text_cached`](NluSupport::analyze_text_cached) can
    /// dedupe repeated (and concurrent) analyses of the same text.
    pub fn with_cache(
        monitor: Arc<ServiceMonitor>,
        pool: Arc<ThreadPool>,
        cache: Arc<ResponseCache>,
    ) -> NluSupport {
        NluSupport {
            monitor,
            pool,
            store: Arc::new(DocumentStore::new()),
            cache: Some(cache),
            telemetry: Telemetry::disabled(),
            retries: 2,
        }
    }

    /// Attaches a telemetry sink so the `_in` analysis variants can
    /// record per-service (and per-tenant) RED metrics.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> NluSupport {
        self.telemetry = telemetry;
        self
    }

    /// The local document store.
    pub fn document_store(&self) -> &Arc<DocumentStore> {
        &self.store
    }

    /// Analyzes one text with one NLU service.
    ///
    /// # Errors
    ///
    /// [`SdkError::AllFailed`] if the service stays unresponsive through
    /// the retry budget; [`SdkError::Rejected`] for malformed requests.
    pub fn analyze_text(
        &self,
        nlu: &Arc<SimService>,
        text: &str,
    ) -> Result<DocumentAnalysis, SdkError> {
        let request = Request::new("analyze", json!({"text": (text)}))
            .with_param("text_len", text.len() as f64);
        let outcome = invoke_with_retry(nlu, &request, self.retries, &self.monitor);
        match outcome.result {
            Ok(resp) => Ok(DocumentAnalysis::from_json(&resp.payload)),
            Err(ServiceError::BadRequest(m)) => Err(SdkError::Rejected(m)),
            Err(e) => Err(SdkError::AllFailed(format!("{}: {e}", nlu.name()))),
        }
    }

    /// As [`analyze_text`](NluSupport::analyze_text), inside a caller's
    /// span: records `nlu_requests_total` / `nlu_latency_ms` RED metrics
    /// — with a `tenant` series when the span is tenanted — and attaches
    /// the trace id as a latency exemplar.
    ///
    /// # Errors
    ///
    /// As for [`analyze_text`](NluSupport::analyze_text).
    pub fn analyze_text_in(
        &self,
        nlu: &Arc<SimService>,
        text: &str,
        ctx: &SpanCtx,
    ) -> Result<DocumentAnalysis, SdkError> {
        if !self.telemetry.is_enabled() {
            return self.analyze_text(nlu, text);
        }
        let tracer = self.telemetry.tracer();
        let started = tracer.now_ms();
        let result = self.analyze_text(nlu, text);
        let latency_ms = (tracer.now_ms() - started).max(0.0);
        let metrics = self.telemetry.metrics();
        let outcome = if result.is_ok() { "ok" } else { "error" };
        let service = nlu.name();
        match tracer.tenant_name(ctx.tenant).as_deref() {
            Some(t) => {
                metrics.inc_counter(
                    "nlu_requests_total",
                    &[("outcome", outcome), ("service", service), ("tenant", t)],
                );
                metrics.observe_with_exemplar(
                    "nlu_latency_ms",
                    &[("service", service), ("tenant", t)],
                    latency_ms,
                    ctx.trace.0,
                );
            }
            None => {
                metrics.inc_counter(
                    "nlu_requests_total",
                    &[("outcome", outcome), ("service", service)],
                );
                metrics.observe_with_exemplar(
                    "nlu_latency_ms",
                    &[("service", service)],
                    latency_ms,
                    ctx.trace.0,
                );
            }
        }
        result
    }

    /// As [`analyze_text`](NluSupport::analyze_text), read-through the
    /// SDK's response cache: a repeated analysis of the same text by the
    /// same service is served from cache, and *concurrent* analyses of
    /// the same text coalesce onto one in-flight service call. Falls back
    /// to an uncached call when this layer was built without a cache.
    ///
    /// # Errors
    ///
    /// As for [`analyze_text`](NluSupport::analyze_text); a coalesced
    /// caller receives the leader's error verbatim.
    pub fn analyze_text_cached(
        &self,
        nlu: &Arc<SimService>,
        text: &str,
    ) -> Result<(DocumentAnalysis, FetchSource), SdkError> {
        let Some(cache) = &self.cache else {
            return self
                .analyze_text(nlu, text)
                .map(|a| (a, FetchSource::Fetched));
        };
        let request = Request::new("analyze", json!({"text": (text)}))
            .with_param("text_len", text.len() as f64);
        // The raw payload is cached (not the parsed analysis) so the NLU
        // layer shares the Json-valued sharded cache with invoke paths.
        let key = format!("{}::{}", nlu.name(), request.cache_key());
        let (payload, source) = cache.get_or_fetch(&key, || {
            let outcome = invoke_with_retry(nlu, &request, self.retries, &self.monitor);
            match outcome.result {
                Ok(resp) => Ok(resp.payload),
                Err(ServiceError::BadRequest(m)) => Err(SdkError::Rejected(m)),
                Err(e) => Err(SdkError::AllFailed(format!("{}: {e}", nlu.name()))),
            }
        })?;
        Ok((DocumentAnalysis::from_json(&payload), source))
    }

    /// As [`analyze_documents`](NluSupport::analyze_documents), with each
    /// per-document analysis read-through the response cache. Returns the
    /// aggregate plus how many documents were served without their own
    /// upstream call (cache hit, stale serve, or coalesced wait).
    pub fn analyze_documents_cached(
        &self,
        nlu: &Arc<SimService>,
        texts: &[String],
    ) -> (AggregateAnalysis, usize) {
        let mut served_locally = 0;
        let analyses: Vec<DocumentAnalysis> = texts
            .iter()
            .filter_map(|t| {
                self.analyze_text_cached(nlu, t).ok().map(|(a, source)| {
                    if source.served_locally() {
                        served_locally += 1;
                    }
                    a
                })
            })
            .collect();
        (aggregate(&analyses), served_locally)
    }

    /// Analyzes many documents with one service and aggregates — the
    /// §2.2 "passing multiple files to a service and aggregating the
    /// results" feature. Documents whose analysis fails are skipped (and
    /// reported in the count difference).
    pub fn analyze_documents(&self, nlu: &Arc<SimService>, texts: &[String]) -> AggregateAnalysis {
        let analyses: Vec<DocumentAnalysis> = texts
            .iter()
            .filter_map(|t| self.analyze_text(nlu, t).ok())
            .collect();
        aggregate(&analyses)
    }

    /// As [`analyze_text`](NluSupport::analyze_text), bounded by an
    /// end-to-end deadline: retries stop once the budget runs out.
    ///
    /// # Errors
    ///
    /// As for [`analyze_text`](NluSupport::analyze_text), plus
    /// [`SdkError::DeadlineExceeded`] when the budget was already spent.
    pub fn analyze_text_within(
        &self,
        nlu: &Arc<SimService>,
        text: &str,
        deadline: Deadline,
    ) -> Result<DocumentAnalysis, SdkError> {
        let request = Request::new("analyze", json!({"text": (text)}))
            .with_param("text_len", text.len() as f64);
        let outcome =
            invoke_with_retry_within(nlu, &request, self.retries, &self.monitor, deadline)?;
        match outcome.result {
            Ok(resp) => Ok(DocumentAnalysis::from_json(&resp.payload)),
            Err(ServiceError::BadRequest(m)) => Err(SdkError::Rejected(m)),
            Err(e) => Err(SdkError::AllFailed(format!("{}: {e}", nlu.name()))),
        }
    }

    /// As [`analyze_documents`](NluSupport::analyze_documents), bounded by
    /// an end-to-end deadline: no document's analysis *starts* after the
    /// budget has elapsed, so the aggregate is a partial-but-timely answer
    /// instead of a late complete one. Returns the aggregate plus the
    /// number of documents skipped for lack of budget.
    pub fn analyze_documents_within(
        &self,
        nlu: &Arc<SimService>,
        texts: &[String],
        deadline: Deadline,
    ) -> (AggregateAnalysis, usize) {
        let mut analyses = Vec::new();
        let mut skipped = 0;
        for (i, text) in texts.iter().enumerate() {
            if deadline.is_expired(nlu.clock().now()) {
                skipped = texts.len() - i;
                break;
            }
            if let Ok(a) = self.analyze_text_within(nlu, text, deadline) {
                analyses.push(a);
            }
        }
        (aggregate(&analyses), skipped)
    }

    /// Analyzes many documents in parallel on the thread pool.
    pub fn analyze_documents_parallel(
        &self,
        nlu: &Arc<SimService>,
        texts: Vec<String>,
    ) -> AggregateAnalysis {
        let monitor = self.monitor.clone();
        let retries = self.retries;
        let nlu = nlu.clone();
        let results = self.pool.map_all(texts, move |text: String| {
            let request = Request::new("analyze", json!({"text": (text.as_str())}))
                .with_param("text_len", text.len() as f64);
            let outcome = invoke_with_retry(&nlu, &request, retries, &monitor);
            outcome
                .result
                .ok()
                .map(|r| DocumentAnalysis::from_json(&r.payload))
        });
        let analyses: Vec<DocumentAnalysis> = results.into_iter().flatten().collect();
        aggregate(&analyses)
    }

    /// Runs the same document through several NLU services and combines
    /// the outputs with per-item confidence (§2.1).
    pub fn consensus_analyze(&self, services: &[Arc<SimService>], text: &str) -> ConsensusAnalysis {
        let mut responding = Vec::new();
        let mut entity_votes: BTreeMap<String, (Vec<String>, f64)> = BTreeMap::new();
        let mut relation_votes: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for svc in services {
            let Ok(analysis) = self.analyze_text(svc, text) else {
                continue;
            };
            responding.push(svc.name().to_string());
            for e in &analysis.entities {
                let entry = entity_votes
                    .entry(e.canonical.clone())
                    .or_insert_with(|| (Vec::new(), 0.0));
                entry.0.push(svc.name().to_string());
                entry.1 += e.sentiment.score;
            }
            for r in &analysis.relations {
                *relation_votes
                    .entry((r.subject.clone(), r.predicate.clone(), r.object.clone()))
                    .or_insert(0) += 1;
            }
        }
        let n = responding.len().max(1) as f64;
        let mut entities: Vec<ConsensusEntity> = entity_votes
            .into_iter()
            .map(|(canonical, (services, sentiment_sum))| ConsensusEntity {
                confidence: services.len() as f64 / n,
                mean_sentiment: sentiment_sum / services.len() as f64,
                canonical,
                services,
            })
            .collect();
        entities.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then_with(|| a.canonical.cmp(&b.canonical))
        });
        let mut relations: Vec<ConsensusRelation> = relation_votes
            .into_iter()
            .map(|((subject, predicate, object), votes)| ConsensusRelation {
                subject,
                predicate,
                object,
                confidence: votes as f64 / n,
            })
            .collect();
        relations.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
        ConsensusAnalysis {
            responding_services: responding,
            entities,
            relations,
        }
    }

    /// Automatically rates NLU service quality by agreement with the
    /// fleet consensus over a document sample, feeding the ratings into
    /// the monitor (so rankings learn quality without human raters).
    ///
    /// The paper invites "more sophisticated methods … for evaluating the
    /// quality of responses provided by services" (§5); this is one: a
    /// service's rating on a document is its F1 score against the
    /// majority-vote entity set, averaged over the sample.
    ///
    /// Returns the mean rating recorded per service.
    pub fn rate_quality_by_consensus(
        &self,
        services: &[Arc<SimService>],
        texts: &[String],
    ) -> Vec<(String, f64)> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for text in texts {
            // Gather every service's entity set.
            let mut per_service: Vec<(String, Vec<String>)> = Vec::new();
            for svc in services {
                if let Ok(analysis) = self.analyze_text(svc, text) {
                    per_service.push((
                        svc.name().to_string(),
                        analysis
                            .entities
                            .iter()
                            .map(|e| e.canonical.clone())
                            .collect(),
                    ));
                }
            }
            if per_service.len() < 2 {
                continue; // no consensus to score against
            }
            // Majority vote: entities found by more than half the
            // responders form the reference set.
            let mut votes: BTreeMap<&str, usize> = BTreeMap::new();
            for (_, entities) in &per_service {
                for e in entities {
                    *votes.entry(e.as_str()).or_insert(0) += 1;
                }
            }
            let majority: Vec<&str> = votes
                .iter()
                .filter(|(_, &v)| v * 2 > per_service.len())
                .map(|(&e, _)| e)
                .collect();
            if majority.is_empty() {
                continue;
            }
            for (name, entities) in &per_service {
                let tp = entities
                    .iter()
                    .filter(|e| majority.contains(&e.as_str()))
                    .count();
                let precision = if entities.is_empty() {
                    0.0
                } else {
                    tp as f64 / entities.len() as f64
                };
                let recall = tp as f64 / majority.len() as f64;
                let f1 = if precision + recall > 0.0 {
                    2.0 * precision * recall / (precision + recall)
                } else {
                    0.0
                };
                let entry = sums.entry(name.clone()).or_insert((0.0, 0));
                entry.0 += f1;
                entry.1 += 1;
            }
        }
        let mut out = Vec::new();
        for (name, (sum, n)) in sums {
            let mean = (sum / n as f64).clamp(0.0, 1.0);
            self.monitor
                .rate_quality(&name, mean)
                .expect("consensus rating is clamped to [0, 1]");
            out.push((name, mean));
        }
        out
    }

    /// Performs a web search via a search service.
    ///
    /// # Errors
    ///
    /// [`SdkError`] when the search service cannot be reached.
    pub fn web_search(
        &self,
        search: &Arc<SimService>,
        query: &str,
        limit: usize,
        news_only: bool,
    ) -> Result<Vec<WebHit>, SdkError> {
        let request = Request::new(
            "search",
            json!({"query": (query), "limit": (limit), "news": (news_only)}),
        );
        let outcome = invoke_with_retry(search, &request, self.retries, &self.monitor);
        let payload = match outcome.result {
            Ok(r) => r.payload,
            Err(ServiceError::BadRequest(m)) => return Err(SdkError::Rejected(m)),
            Err(e) => return Err(SdkError::AllFailed(format!("{}: {e}", search.name()))),
        };
        Ok(payload
            .get("hits")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|h| {
                Some(WebHit {
                    url: h.get("url")?.as_str()?.to_string(),
                    title: h
                        .get("title")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                })
            })
            .collect())
    }

    /// Fetches a URL, storing the HTML locally tagged with `query` and
    /// the fetch time. A stored copy is served without a remote call —
    /// the paper's "performance is considerably improved since the
    /// documents do not have to be fetched again".
    ///
    /// # Errors
    ///
    /// [`SdkError`] for unreachable web service or unknown URLs.
    pub fn fetch_document(
        &self,
        web: &Arc<SimService>,
        url: &str,
        query: &str,
    ) -> Result<StoredDocument, SdkError> {
        if let Some(stored) = self.store.by_url(url) {
            return Ok(stored);
        }
        let request = Request::new("fetch", json!({"url": (url)}));
        let outcome = invoke_with_retry(web, &request, self.retries, &self.monitor);
        let payload = match outcome.result {
            Ok(r) => r.payload,
            Err(ServiceError::BadRequest(m)) => return Err(SdkError::Rejected(m)),
            Err(e) => return Err(SdkError::AllFailed(format!("{}: {e}", web.name()))),
        };
        let html = payload
            .get("html")
            .and_then(Json::as_str)
            .ok_or_else(|| SdkError::Rejected("fetch response missing html".into()))?
            .to_string();
        let doc = StoredDocument {
            url: url.to_string(),
            html,
            query: query.to_string(),
            fetched_at: SimTime::ZERO,
        };
        self.store.store(doc.clone());
        Ok(doc)
    }

    /// The full Figure-3 pipeline: search → fetch each hit → extract text
    /// → analyze with the NLU service → aggregate.
    ///
    /// # Errors
    ///
    /// Propagates search-service failure; individual fetch/analyze
    /// failures skip that document.
    pub fn search_and_analyze(
        &self,
        search: &Arc<SimService>,
        web: &Arc<SimService>,
        nlu: &Arc<SimService>,
        query: &str,
        limit: usize,
    ) -> Result<AggregateAnalysis, SdkError> {
        let hits = self.web_search(search, query, limit, false)?;
        let texts: Vec<String> = hits
            .iter()
            .filter_map(|hit| {
                self.fetch_document(web, &hit.url, query)
                    .ok()
                    .map(|doc| extract_text(&doc.html))
            })
            .collect();
        let analyses: Vec<DocumentAnalysis> = texts
            .iter()
            .filter_map(|t| self.analyze_text(nlu, t).ok())
            .collect();
        Ok(aggregate(&analyses))
    }

    /// As [`search_and_analyze`](NluSupport::search_and_analyze), bounded
    /// by an end-to-end deadline across the whole pipeline: fetching and
    /// analysis both stop starting new work once the budget has elapsed.
    /// Returns the (possibly partial) aggregate plus the number of hits
    /// or documents skipped for lack of budget.
    ///
    /// # Errors
    ///
    /// Propagates search-service failure, as for
    /// [`search_and_analyze`](NluSupport::search_and_analyze).
    #[allow(clippy::too_many_arguments)]
    pub fn search_and_analyze_within(
        &self,
        search: &Arc<SimService>,
        web: &Arc<SimService>,
        nlu: &Arc<SimService>,
        query: &str,
        limit: usize,
        deadline: Deadline,
    ) -> Result<(AggregateAnalysis, usize), SdkError> {
        let hits = self.web_search(search, query, limit, false)?;
        let mut texts = Vec::new();
        let mut skipped = 0;
        for (i, hit) in hits.iter().enumerate() {
            if deadline.is_expired(web.clock().now()) {
                skipped = hits.len() - i;
                break;
            }
            if let Ok(doc) = self.fetch_document(web, &hit.url, query) {
                texts.push(extract_text(&doc.html));
            }
        }
        let (agg, analysis_skipped) = self.analyze_documents_within(nlu, &texts, deadline);
        Ok((agg, skipped + analysis_skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_search::services::standard_web;
    use cogsdk_sim::SimEnv;
    use cogsdk_text::analysis::{Analyzer, NluConfig};
    use cogsdk_text::services::{nlu_service, standard_fleet, NluVendorSpec};

    fn support() -> NluSupport {
        NluSupport::new(
            Arc::new(ServiceMonitor::new()),
            Arc::new(ThreadPool::new(4)),
        )
    }

    fn perfect_nlu(env: &SimEnv) -> Arc<SimService> {
        let mut spec = NluVendorSpec::new("nlu-perfect", NluConfig::perfect());
        spec.failures = cogsdk_sim::failure::FailurePlan::reliable();
        nlu_service(env, Arc::new(Analyzer::with_default_lexicons()), spec)
    }

    #[test]
    fn aggregate_combines_entities_and_sentiment() {
        let analyzer = Analyzer::with_default_lexicons();
        let cfg = NluConfig::perfect();
        let analyses = vec![
            analyzer.analyze("IBM posted excellent growth. IBM wins.", &cfg),
            analyzer.analyze("IBM faced a terrible lawsuit.", &cfg),
            analyzer.analyze("Germany celebrated impressive results.", &cfg),
        ];
        let agg = aggregate(&analyses);
        assert_eq!(agg.documents, 3);
        let ibm = agg.entities.iter().find(|e| e.canonical == "ibm").unwrap();
        assert_eq!(ibm.documents, 2);
        assert!(ibm.mentions >= 2);
        // IBM first: mentioned in most documents.
        assert_eq!(agg.entities[0].canonical, "ibm");
        assert!(!agg.keywords.is_empty());
    }

    #[test]
    fn aggregate_of_empty_is_default() {
        assert_eq!(aggregate(&[]), AggregateAnalysis::default());
    }

    #[test]
    fn analyze_text_through_service() {
        let env = SimEnv::with_seed(1);
        let nlu = perfect_nlu(&env);
        let s = support();
        let a = s
            .analyze_text(&nlu, "Microsoft praised excellent results.")
            .unwrap();
        assert_eq!(a.entities[0].canonical, "microsoft");
        assert!(a.sentiment.score > 0.0);
    }

    #[test]
    fn analyze_text_in_records_tenant_red_metrics() {
        let env = SimEnv::with_seed(9);
        let nlu = perfect_nlu(&env);
        let t = Telemetry::new();
        let s = support().with_telemetry(t.clone());
        let tenant = t.tracer().intern_tenant("acme");
        let ctx = t.tracer().new_trace_for(tenant);
        s.analyze_text_in(&nlu, "IBM posted excellent growth.", &ctx)
            .unwrap();
        assert_eq!(
            t.metrics().counter_value(
                "nlu_requests_total",
                &[
                    ("outcome", "ok"),
                    ("service", "nlu-perfect"),
                    ("tenant", "acme")
                ],
            ),
            Some(1)
        );
        let hist = t
            .metrics()
            .histogram(
                "nlu_latency_ms",
                &[("service", "nlu-perfect"), ("tenant", "acme")],
            )
            .unwrap();
        assert_eq!(hist.count, 1);
        // Untenanted spans keep the original series shape.
        let ctx = t.tracer().new_trace();
        s.analyze_text_in(&nlu, "IBM posted excellent growth.", &ctx)
            .unwrap();
        assert_eq!(
            t.metrics().counter_value(
                "nlu_requests_total",
                &[("outcome", "ok"), ("service", "nlu-perfect")],
            ),
            Some(1)
        );
    }

    #[test]
    fn analyze_documents_parallel_matches_sequential() {
        let env = SimEnv::with_seed(2);
        let nlu = perfect_nlu(&env);
        let s = support();
        let texts = vec![
            "IBM grew impressively.".to_string(),
            "France struggled with a terrible crisis.".to_string(),
            "IBM and France partnered Google.".to_string(),
        ];
        let seq = s.analyze_documents(&nlu, &texts);
        let par = s.analyze_documents_parallel(&nlu, texts);
        assert_eq!(seq.documents, par.documents);
        assert_eq!(seq.entities, par.entities);
    }

    #[test]
    fn consensus_confidence_reflects_agreement() {
        let env = SimEnv::with_seed(3);
        let analyzer = Arc::new(Analyzer::with_default_lexicons());
        // Three vendors with very different recall.
        let fleet = standard_fleet(&env, analyzer);
        let s = support();
        let text = "IBM acquired Oracle. Germany and France and Japan and India watched. \
                    Microsoft and Google and Amazon commented.";
        let consensus = s.consensus_analyze(&fleet, text);
        assert!(!consensus.responding_services.is_empty());
        assert!(!consensus.entities.is_empty());
        // Confidences within (0, 1]; sorted descending.
        for e in &consensus.entities {
            assert!(e.confidence > 0.0 && e.confidence <= 1.0);
        }
        assert!(consensus
            .entities
            .windows(2)
            .all(|w| w[0].confidence >= w[1].confidence));
        // With lossy vendors, at least one entity should be contested
        // (confidence < 1) while some should be unanimous among
        // high-recall vendors.
        let min = consensus.entities.last().unwrap().confidence;
        let max = consensus.entities[0].confidence;
        assert!(max > min, "expected disagreement, got flat {max}");
    }

    #[test]
    fn analyze_documents_within_stops_once_budget_is_spent() {
        let env = SimEnv::with_seed(7);
        let nlu = perfect_nlu(&env);
        let s = support();
        let texts: Vec<String> = (0..4)
            .map(|i| format!("IBM posted excellent growth in quarter {i}."))
            .collect();
        // An already-expired budget analyzes nothing and calls no service.
        let expired = Deadline::within(env.clock(), std::time::Duration::ZERO);
        env.clock().advance(std::time::Duration::from_micros(1));
        let (agg, skipped) = s.analyze_documents_within(&nlu, &texts, expired);
        assert_eq!(agg, AggregateAnalysis::default());
        assert_eq!(skipped, texts.len());
        assert_eq!(nlu.stats().0, 0, "no budget, no calls");
        // An unbounded budget analyzes everything.
        let (agg, skipped) = s.analyze_documents_within(&nlu, &texts, Deadline::NONE);
        assert_eq!(agg.documents, texts.len());
        assert_eq!(skipped, 0);
        // A budget covering roughly one document's analysis yields a
        // partial-but-timely aggregate.
        let t0 = env.clock().now();
        s.analyze_text(&nlu, &texts[0]).unwrap();
        let one_doc = env.clock().now().since(t0);
        let deadline = Deadline::within(env.clock(), one_doc + one_doc / 2);
        let (agg, skipped) = s.analyze_documents_within(&nlu, &texts, deadline);
        assert!(agg.documents < texts.len(), "{}", agg.documents);
        assert!(agg.documents >= 1);
        assert_eq!(skipped, texts.len() - agg.documents);
    }

    #[test]
    fn search_and_analyze_within_skips_late_fetches() {
        let env = SimEnv::with_seed(8);
        let (engines, web, _idx) = standard_web(&env, 7, 120);
        let nlu = perfect_nlu(&env);
        let s = support();
        // Expired before any fetch: the search result arrives, but every
        // downstream fetch/analysis is skipped.
        let expired = Deadline::within(env.clock(), std::time::Duration::ZERO);
        env.clock().advance(std::time::Duration::from_micros(1));
        let (agg, skipped) = s
            .search_and_analyze_within(&engines[0], &web, &nlu, "market growth", 5, expired)
            .unwrap();
        assert_eq!(agg.documents, 0);
        assert!(skipped > 0);
        assert!(s.document_store().is_empty(), "no fetch should have run");
        // Unbounded matches the plain pipeline.
        let (agg, skipped) = s
            .search_and_analyze_within(&engines[0], &web, &nlu, "market growth", 5, Deadline::NONE)
            .unwrap();
        assert!(agg.documents > 0);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn web_search_and_fetch_pipeline() {
        let env = SimEnv::with_seed(4);
        let (engines, web, _idx) = standard_web(&env, 7, 120);
        let nlu = perfect_nlu(&env);
        let s = support();
        let agg = s
            .search_and_analyze(&engines[0], &web, &nlu, "market growth", 5)
            .unwrap();
        assert!(agg.documents > 0);
        assert!(!agg.entities.is_empty() || !agg.keywords.is_empty());
        // Documents were stored locally with the query recorded.
        assert!(!s.document_store().is_empty());
        assert_eq!(
            s.document_store().by_query("market growth").len(),
            s.document_store().len()
        );
    }

    #[test]
    fn fetch_document_caches_locally() {
        let env = SimEnv::with_seed(5);
        let (engines, web, _idx) = standard_web(&env, 7, 60);
        let s = support();
        let hits = s.web_search(&engines[0], "energy", 3, false).unwrap();
        assert!(!hits.is_empty());
        let url = &hits[0].url;
        let (calls_before, _) = web.stats();
        s.fetch_document(&web, url, "energy").unwrap();
        let (calls_mid, _) = web.stats();
        s.fetch_document(&web, url, "energy").unwrap();
        let (calls_after, _) = web.stats();
        assert!(calls_mid > calls_before);
        assert_eq!(calls_after, calls_mid, "second fetch served locally");
    }

    #[test]
    fn news_restriction_passes_through() {
        let env = SimEnv::with_seed(6);
        let (engines, _web, idx) = standard_web(&env, 7, 120);
        let s = support();
        let hits = s.web_search(&engines[0], "market", 10, true).unwrap();
        for hit in hits {
            assert!(idx.by_url(&hit.url).unwrap().doc.is_news);
        }
    }

    #[test]
    fn document_store_lookup() {
        let store = DocumentStore::new();
        store.store(StoredDocument {
            url: "https://x/1".into(),
            html: "<html></html>".into(),
            query: "q1".into(),
            fetched_at: SimTime::ZERO,
        });
        assert_eq!(store.len(), 1);
        assert!(store.by_url("https://x/1").is_some());
        assert!(store.by_url("https://x/2").is_none());
        assert_eq!(store.by_query("q1").len(), 1);
        assert!(store.by_query("q2").is_empty());
    }
}
