//! Service scoring: the paper's Equation 1, Equation 2, and custom
//! formulas.
//!
//! §2, Eq. 1: `S = α₁·r + β₁·c − γ₁·q` where `r` is predicted response
//! time, `c` predicted monetary cost, `q` predicted quality (higher is
//! better). Eq. 2 normalizes each term by the class-wide maximum:
//! `Sₙ = α₂·r/r_max + β₂·c/c_max − γ₂·q/q_max`. In both, **lower scores
//! rank better**.

use std::fmt;
use std::sync::Arc;

/// The inputs to a scoring formula for one service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreInputs {
    /// Predicted response time (ms).
    pub response_ms: f64,
    /// Predicted monetary cost (micro-dollars).
    pub cost_micros: f64,
    /// Predicted quality in `[0, 1]`.
    pub quality: f64,
}

/// Class-wide maxima used by the normalized formula (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMaxima {
    /// Largest predicted response time among candidates.
    pub response_ms: f64,
    /// Largest predicted cost among candidates.
    pub cost_micros: f64,
    /// Largest predicted quality among candidates.
    pub quality: f64,
}

impl ClassMaxima {
    /// Computes maxima over a set of inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn over(inputs: &[ScoreInputs]) -> ClassMaxima {
        assert!(!inputs.is_empty(), "maxima need at least one candidate");
        ClassMaxima {
            response_ms: inputs.iter().map(|i| i.response_ms).fold(0.0, f64::max),
            cost_micros: inputs.iter().map(|i| i.cost_micros).fold(0.0, f64::max),
            quality: inputs.iter().map(|i| i.quality).fold(0.0, f64::max),
        }
    }
}

/// A user-supplied scoring function.
pub type CustomScorer = Arc<dyn Fn(&ScoreInputs, &ClassMaxima) -> f64 + Send + Sync>;

/// The scoring formula used to rank services.
#[derive(Clone)]
pub enum ScoringFormula {
    /// Equation 1: raw weighted sum.
    Weighted {
        /// Weight of response time (α₁).
        alpha: f64,
        /// Weight of monetary cost (β₁).
        beta: f64,
        /// Weight of quality (γ₁, subtracted).
        gamma: f64,
    },
    /// Equation 2: weighted sum of terms normalized to `[0, 1]` by the
    /// class maxima.
    Normalized {
        /// Weight of normalized response time (α₂).
        alpha: f64,
        /// Weight of normalized cost (β₂).
        beta: f64,
        /// Weight of normalized quality (γ₂, subtracted).
        gamma: f64,
    },
    /// A customized formula provided by the user.
    Custom(CustomScorer),
}

impl fmt::Debug for ScoringFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoringFormula::Weighted { alpha, beta, gamma } => f
                .debug_struct("Weighted")
                .field("alpha", alpha)
                .field("beta", beta)
                .field("gamma", gamma)
                .finish(),
            ScoringFormula::Normalized { alpha, beta, gamma } => f
                .debug_struct("Normalized")
                .field("alpha", alpha)
                .field("beta", beta)
                .field("gamma", gamma)
                .finish(),
            ScoringFormula::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl ScoringFormula {
    /// Equation 1 with the given weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn weighted(alpha: f64, beta: f64, gamma: f64) -> ScoringFormula {
        validate(alpha, beta, gamma);
        ScoringFormula::Weighted { alpha, beta, gamma }
    }

    /// Equation 2 with the given weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn normalized(alpha: f64, beta: f64, gamma: f64) -> ScoringFormula {
        validate(alpha, beta, gamma);
        ScoringFormula::Normalized { alpha, beta, gamma }
    }

    /// A custom formula.
    pub fn custom(
        f: impl Fn(&ScoreInputs, &ClassMaxima) -> f64 + Send + Sync + 'static,
    ) -> ScoringFormula {
        ScoringFormula::Custom(Arc::new(f))
    }

    /// Default weights: balanced latency/cost with a quality bonus.
    pub fn default_weights() -> ScoringFormula {
        ScoringFormula::normalized(1.0, 1.0, 1.0)
    }

    /// Scores one candidate. Lower is better.
    pub fn score(&self, inputs: &ScoreInputs, maxima: &ClassMaxima) -> f64 {
        match self {
            ScoringFormula::Weighted { alpha, beta, gamma } => {
                alpha * inputs.response_ms + beta * inputs.cost_micros - gamma * inputs.quality
            }
            ScoringFormula::Normalized { alpha, beta, gamma } => {
                let norm = |v: f64, max: f64| if max > 0.0 { v / max } else { 0.0 };
                alpha * norm(inputs.response_ms, maxima.response_ms)
                    + beta * norm(inputs.cost_micros, maxima.cost_micros)
                    - gamma * norm(inputs.quality, maxima.quality)
            }
            ScoringFormula::Custom(f) => f(inputs, maxima),
        }
    }
}

fn validate(alpha: f64, beta: f64, gamma: f64) {
    for (name, w) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
        assert!(
            w.is_finite() && w >= 0.0,
            "weight {name} must be finite and non-negative, got {w}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(r: f64, c: f64, q: f64) -> ScoreInputs {
        ScoreInputs {
            response_ms: r,
            cost_micros: c,
            quality: q,
        }
    }

    #[test]
    fn equation_1_matches_paper_formula() {
        let f = ScoringFormula::weighted(2.0, 3.0, 4.0);
        let m = ClassMaxima {
            response_ms: 1.0,
            cost_micros: 1.0,
            quality: 1.0,
        };
        // S = 2*10 + 3*5 - 4*0.5 = 33
        assert_eq!(f.score(&inputs(10.0, 5.0, 0.5), &m), 33.0);
    }

    #[test]
    fn equation_2_normalizes_terms() {
        let candidates = [inputs(100.0, 1000.0, 0.5), inputs(50.0, 2000.0, 1.0)];
        let m = ClassMaxima::over(&candidates);
        let f = ScoringFormula::normalized(1.0, 1.0, 1.0);
        // Candidate 0: 100/100 + 1000/2000 - 0.5/1.0 = 1.0
        assert!((f.score(&candidates[0], &m) - 1.0).abs() < 1e-12);
        // Candidate 1: 50/100 + 2000/2000 - 1.0/1.0 = 0.5
        assert!((f.score(&candidates[1], &m) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lower_score_means_better_service() {
        let m = ClassMaxima {
            response_ms: 100.0,
            cost_micros: 100.0,
            quality: 1.0,
        };
        let f = ScoringFormula::default_weights();
        let fast_cheap_good = f.score(&inputs(10.0, 10.0, 0.9), &m);
        let slow_pricey_bad = f.score(&inputs(90.0, 90.0, 0.2), &m);
        assert!(fast_cheap_good < slow_pricey_bad);
    }

    #[test]
    fn normalized_handles_zero_maxima() {
        // All-free services: cost max is zero; no division blowup.
        let m = ClassMaxima {
            response_ms: 10.0,
            cost_micros: 0.0,
            quality: 1.0,
        };
        let f = ScoringFormula::normalized(1.0, 1.0, 1.0);
        let s = f.score(&inputs(5.0, 0.0, 1.0), &m);
        assert!(s.is_finite());
        assert!((s - (0.5 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn custom_formula_is_used() {
        // Quality-only selection.
        let f = ScoringFormula::custom(|i, _| -i.quality);
        let m = ClassMaxima {
            response_ms: 1.0,
            cost_micros: 1.0,
            quality: 1.0,
        };
        assert_eq!(f.score(&inputs(999.0, 999.0, 0.8), &m), -0.8);
    }

    #[test]
    fn quality_weight_can_flip_ranking() {
        // The crossover experiment E2 in miniature: as gamma grows, the
        // high-quality slow service overtakes the fast cheap one.
        let fast = inputs(10.0, 100.0, 0.3);
        let good = inputs(80.0, 500.0, 0.95);
        let m = ClassMaxima::over(&[fast, good]);
        let low_gamma = ScoringFormula::normalized(1.0, 1.0, 0.1);
        assert!(low_gamma.score(&fast, &m) < low_gamma.score(&good, &m));
        let high_gamma = ScoringFormula::normalized(1.0, 1.0, 10.0);
        assert!(high_gamma.score(&good, &m) < high_gamma.score(&fast, &m));
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_rejected() {
        let _ = ScoringFormula::weighted(1.0, -1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn maxima_of_empty_rejected() {
        let _ = ClassMaxima::over(&[]);
    }
}
