//! `ListenableFuture`: asynchronous results with completion callbacks.
//!
//! §2: "Our rich SDK implements asynchronous calls to services using the
//! ListenableFuture interface. The ListenableFuture interface extends the
//! Future interface by giving users the ability to register callbacks
//! which comprise code to be executed after the future completes
//! execution." This is the Rust rendition of Guava's contract: poll
//! ([`is_done`](ListenableFuture::is_done)), block
//! ([`wait`](ListenableFuture::wait)), and
//! [`add_listener`](ListenableFuture::add_listener).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

type Listener<T> = Box<dyn FnOnce(&T) + Send>;

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    value: Option<Arc<T>>,
    listeners: Vec<Listener<T>>,
}

/// A future that can be completed once and observed many times.
///
/// Cloning shares the same underlying slot. Callbacks registered before
/// completion run (on the completing thread) at completion time;
/// callbacks registered after completion run immediately on the
/// registering thread — exactly Guava's semantics.
///
/// # Examples
///
/// ```
/// use cogsdk_core::ListenableFuture;
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use std::sync::Arc;
///
/// let future: ListenableFuture<i32> = ListenableFuture::new();
/// let fired = Arc::new(AtomicBool::new(false));
/// let fired2 = fired.clone();
/// future.add_listener(move |v| {
///     assert_eq!(*v, 42);
///     fired2.store(true, Ordering::SeqCst);
/// });
/// future.complete(42);
/// assert!(fired.load(Ordering::SeqCst));
/// assert_eq!(*future.wait(), 42);
/// ```
pub struct ListenableFuture<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for ListenableFuture<T> {
    fn clone(&self) -> Self {
        ListenableFuture {
            shared: self.shared.clone(),
        }
    }
}

impl<T> std::fmt::Debug for ListenableFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let done = self.shared.state.lock().value.is_some();
        f.debug_struct("ListenableFuture")
            .field("done", &done)
            .finish()
    }
}

impl<T: Send + Sync + 'static> Default for ListenableFuture<T> {
    fn default() -> Self {
        ListenableFuture::new()
    }
}

impl<T: Send + Sync + 'static> ListenableFuture<T> {
    /// Creates an incomplete future.
    pub fn new() -> ListenableFuture<T> {
        ListenableFuture {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    value: None,
                    listeners: Vec::new(),
                }),
                ready: Condvar::new(),
            }),
        }
    }

    /// A future that is already complete.
    pub fn completed(value: T) -> ListenableFuture<T> {
        let f = ListenableFuture::new();
        f.complete(value);
        f
    }

    /// Completes the future, waking waiters and firing listeners.
    ///
    /// # Panics
    ///
    /// Panics if the future is already complete — completing twice is
    /// always a caller bug.
    pub fn complete(&self, value: T) {
        let listeners;
        let arc = Arc::new(value);
        {
            let mut state = self.shared.state.lock();
            assert!(state.value.is_none(), "future completed twice");
            state.value = Some(arc.clone());
            listeners = std::mem::take(&mut state.listeners);
        }
        self.shared.ready.notify_all();
        for listener in listeners {
            listener(&arc);
        }
    }

    /// Whether the computation has finished.
    pub fn is_done(&self) -> bool {
        self.shared.state.lock().value.is_some()
    }

    /// Retrieves the result if complete (non-blocking).
    pub fn poll(&self) -> Option<Arc<T>> {
        self.shared.state.lock().value.clone()
    }

    /// Blocks until the result is available.
    pub fn wait(&self) -> Arc<T> {
        let mut state = self.shared.state.lock();
        while state.value.is_none() {
            self.shared.ready.wait(&mut state);
        }
        state.value.clone().expect("checked above")
    }

    /// Blocks up to `timeout`; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Arc<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        while state.value.is_none() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            if self
                .shared
                .ready
                .wait_until(&mut state, deadline)
                .timed_out()
            {
                break;
            }
        }
        state.value.clone()
    }

    /// Registers a completion callback (Guava's `addListener`). Runs
    /// immediately if the future is already complete.
    pub fn add_listener(&self, f: impl FnOnce(&T) + Send + 'static) {
        let already = {
            let mut state = self.shared.state.lock();
            match &state.value {
                Some(v) => Some(v.clone()),
                None => {
                    state.listeners.push(Box::new(f));
                    return;
                }
            }
        };
        if let Some(v) = already {
            f(&v);
        }
    }

    /// Transforms the result into a new future (Guava's
    /// `Futures.transform`).
    pub fn map<U: Send + Sync + 'static>(
        &self,
        f: impl FnOnce(&T) -> U + Send + 'static,
    ) -> ListenableFuture<U> {
        let out = ListenableFuture::new();
        let out2 = out.clone();
        self.add_listener(move |v| out2.complete(f(v)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn complete_then_wait() {
        let f = ListenableFuture::completed(7);
        assert!(f.is_done());
        assert_eq!(*f.wait(), 7);
        assert_eq!(f.poll().map(|v| *v), Some(7));
    }

    #[test]
    fn wait_blocks_until_completion_from_another_thread() {
        let f: ListenableFuture<String> = ListenableFuture::new();
        assert!(!f.is_done());
        assert!(f.poll().is_none());
        let f2 = f.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            f2.complete("done".to_string());
        });
        assert_eq!(*f.wait(), "done");
        t.join().unwrap();
    }

    #[test]
    fn listeners_fire_in_registration_order() {
        let f: ListenableFuture<i32> = ListenableFuture::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let order = order.clone();
            f.add_listener(move |_| order.lock().push(i));
        }
        f.complete(0);
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn late_listener_runs_immediately() {
        let f = ListenableFuture::completed(5);
        let count = Arc::new(AtomicUsize::new(0));
        let count2 = count.clone();
        f.add_listener(move |v| {
            assert_eq!(*v, 5);
            count2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_timeout_expires_and_succeeds() {
        let f: ListenableFuture<i32> = ListenableFuture::new();
        assert!(f.wait_timeout(Duration::from_millis(10)).is_none());
        f.complete(3);
        assert_eq!(
            f.wait_timeout(Duration::from_millis(10)).map(|v| *v),
            Some(3)
        );
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_completion_panics() {
        let f = ListenableFuture::completed(1);
        f.complete(2);
    }

    #[test]
    fn map_chains_computations() {
        let f: ListenableFuture<i32> = ListenableFuture::new();
        let g = f.map(|v| v * 2).map(|v| format!("={v}"));
        f.complete(21);
        assert_eq!(*g.wait(), "=42");
    }

    #[test]
    fn map_on_completed_future() {
        let f = ListenableFuture::completed(10);
        assert_eq!(*f.map(|v| v + 1).wait(), 11);
    }

    #[test]
    fn future_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ListenableFuture<i32>>();
    }
}
