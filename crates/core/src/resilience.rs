//! The resilience layer: circuit breakers and end-to-end deadline budgets.
//!
//! The paper's failure handling (§2.1) retries and fails over — but a
//! retry into a hard-down service burns the full timeout on every call,
//! and a failover chain with no overall budget can overshoot the caller's
//! SLO by the sum of every leg. This module adds the two guards
//! production systems put around exactly that code:
//!
//! * [`CircuitBreaker`] — per-service Closed→Open→HalfOpen state driven
//!   by a sliding window of attempt results. Once a service trips, the
//!   invocation layers skip it instantly instead of timing out into it;
//!   after a cool-down, a bounded budget of half-open probes decides
//!   whether it has recovered.
//! * [`Deadline`] — an absolute point on the simulation timeline threaded
//!   through retries, failover legs, redundant invocations, the NLU
//!   aggregator, and KB federation, so each layer spends only the
//!   *remaining* budget and never starts work it cannot finish in time.
//!
//! [`Governance`] bundles both so one optional parameter rides through
//! every invocation path. All state changes emit `cogsdk-obs` events and
//! metrics (`sdk_breaker_transitions_total`, `sdk_breaker_state`,
//! `sdk_breaker_rejections_total`, `sdk_deadline_exhausted_total`).

use cogsdk_obs::{EventKind, SpanCtx, Telemetry};
use cogsdk_sim::{SimClock, SimTime};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// An absolute end-to-end budget on the simulation timeline.
///
/// `Deadline::NONE` means unbounded; everything else is "finish before
/// this instant". Cheap to copy, threaded by value.
///
/// # Examples
///
/// ```
/// use cogsdk_core::resilience::Deadline;
/// use cogsdk_sim::{SimClock, SimTime};
/// use std::time::Duration;
///
/// let clock = SimClock::new();
/// let d = Deadline::within(&clock, Duration::from_millis(100));
/// assert!(!d.is_expired(clock.now()));
/// assert!(d.is_expired(SimTime::from_millis(150)));
/// assert!(!Deadline::NONE.is_expired(SimTime::from_millis(150)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline(Option<SimTime>);

impl Deadline {
    /// No deadline: work may take as long as it takes.
    pub const NONE: Deadline = Deadline(None);

    /// A deadline at an absolute simulation instant.
    pub fn at(t: SimTime) -> Deadline {
        Deadline(Some(t))
    }

    /// A deadline `budget` from the clock's current now.
    pub fn within(clock: &SimClock, budget: Duration) -> Deadline {
        Deadline(Some(clock.now().after(budget)))
    }

    /// The absolute instant, if bounded.
    pub fn instant(&self) -> Option<SimTime> {
        self.0
    }

    /// Whether the budget has run out at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        matches!(self.0, Some(t) if now >= t)
    }

    /// Budget left at `now`: `None` when unbounded, zero when expired.
    pub fn remaining(&self, now: SimTime) -> Option<Duration> {
        self.0.map(|t| t.since(now))
    }
}

impl fmt::Display for Deadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(t) => write!(f, "deadline@{t}"),
            None => write!(f, "no-deadline"),
        }
    }
}

/// Circuit breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all calls pass through; results feed the error window.
    Closed,
    /// Tripped: calls are rejected without being attempted until the
    /// cool-down elapses.
    Open,
    /// Probing: a bounded number of trial calls decide whether the
    /// service has recovered.
    HalfOpen,
}

impl BreakerState {
    /// Stable machine name, used in events and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric code for the `sdk_breaker_state` gauge
    /// (closed=0, open=1, half_open=2).
    pub fn code(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::Open => 1.0,
            BreakerState::HalfOpen => 2.0,
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Trip thresholds and probe budgets for one breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window length (attempt results) the error rate is
    /// computed over.
    pub window: usize,
    /// Minimum results in the window before the breaker may trip (avoids
    /// tripping on one unlucky call after startup).
    pub min_calls: usize,
    /// Error rate in `[0, 1]` at or above which a Closed breaker trips.
    pub trip_error_rate: f64,
    /// How long an Open breaker rejects before allowing probes.
    pub open_for: Duration,
    /// Probe budget in HalfOpen: this many consecutive successes close
    /// the breaker; any failure re-opens it.
    pub half_open_probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 32,
            min_calls: 8,
            trip_error_rate: 0.5,
            open_for: Duration::from_secs(5),
            half_open_probes: 2,
        }
    }
}

impl BreakerConfig {
    fn validate(&self) {
        assert!(self.window > 0, "breaker window must be positive");
        assert!(
            self.min_calls > 0 && self.min_calls <= self.window,
            "min_calls must be in 1..=window"
        );
        assert!(
            (0.0..=1.0).contains(&self.trip_error_rate) && self.trip_error_rate > 0.0,
            "trip_error_rate must be in (0, 1]"
        );
        assert!(self.half_open_probes > 0, "need at least one probe");
    }
}

/// The admission decision for one prospective call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed with the call.
    Allowed,
    /// The breaker is open; do not call. `retry_after` is how long until
    /// probes will be admitted.
    Rejected {
        /// Time until the cool-down elapses (zero if probes are merely
        /// saturated).
        retry_after: Duration,
    },
}

impl Admission {
    /// Whether the call may proceed.
    pub fn is_allowed(&self) -> bool {
        matches!(self, Admission::Allowed)
    }
}

#[derive(Debug)]
struct BreakerCore {
    state: BreakerState,
    /// Recent attempt results, newest last; `true` = success.
    window: VecDeque<bool>,
    opened_at: SimTime,
    probes_in_flight: usize,
    probe_successes: usize,
}

/// One per-service breaker. Thread-safe; time comes from the caller so
/// the machine is fully deterministic under the virtual clock.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    core: Mutex<BreakerCore>,
}

/// A state transition `(from, to)` that callers should surface.
pub type Transition = (BreakerState, BreakerState);

impl CircuitBreaker {
    /// Creates a Closed breaker.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent (zero window, `min_calls` larger
    /// than the window, a non-positive trip rate, or zero probes).
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        cfg.validate();
        CircuitBreaker {
            cfg,
            core: Mutex::new(BreakerCore {
                state: BreakerState::Closed,
                window: VecDeque::with_capacity(cfg.window),
                opened_at: SimTime::ZERO,
                probes_in_flight: 0,
                probe_successes: 0,
            }),
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.core.lock().state
    }

    /// The error rate over the current window (0 when empty).
    pub fn error_rate(&self) -> f64 {
        let core = self.core.lock();
        if core.window.is_empty() {
            0.0
        } else {
            core.window.iter().filter(|ok| !**ok).count() as f64 / core.window.len() as f64
        }
    }

    /// Decides whether a call at `now` may proceed. An Open breaker whose
    /// cool-down has elapsed moves to HalfOpen here (the returned
    /// transition, if any, should be surfaced by the caller).
    pub fn admit(&self, now: SimTime) -> (Admission, Option<Transition>) {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed => (Admission::Allowed, None),
            BreakerState::Open => {
                let reopen_at = core.opened_at.after(self.cfg.open_for);
                if now >= reopen_at {
                    core.state = BreakerState::HalfOpen;
                    core.probes_in_flight = 1;
                    core.probe_successes = 0;
                    (
                        Admission::Allowed,
                        Some((BreakerState::Open, BreakerState::HalfOpen)),
                    )
                } else {
                    (
                        Admission::Rejected {
                            retry_after: reopen_at.since(now),
                        },
                        None,
                    )
                }
            }
            BreakerState::HalfOpen => {
                if core.probes_in_flight < self.cfg.half_open_probes {
                    core.probes_in_flight += 1;
                    (Admission::Allowed, None)
                } else {
                    // Probe budget saturated: reject without resetting the
                    // cool-down; retry as soon as a probe resolves.
                    (
                        Admission::Rejected {
                            retry_after: Duration::ZERO,
                        },
                        None,
                    )
                }
            }
        }
    }

    /// Feeds one attempt result into the machine. Returns the transition
    /// it caused, if any (Closed→Open on tripping, HalfOpen→Closed on
    /// enough probe successes, HalfOpen→Open on a probe failure).
    pub fn record(&self, now: SimTime, success: bool) -> Option<Transition> {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed => {
                core.window.push_back(success);
                while core.window.len() > self.cfg.window {
                    core.window.pop_front();
                }
                let errors = core.window.iter().filter(|ok| !**ok).count();
                if core.window.len() >= self.cfg.min_calls
                    && errors as f64 / core.window.len() as f64 >= self.cfg.trip_error_rate
                {
                    core.state = BreakerState::Open;
                    core.opened_at = now;
                    core.window.clear();
                    Some((BreakerState::Closed, BreakerState::Open))
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                core.probes_in_flight = core.probes_in_flight.saturating_sub(1);
                if success {
                    core.probe_successes += 1;
                    if core.probe_successes >= self.cfg.half_open_probes {
                        core.state = BreakerState::Closed;
                        core.window.clear();
                        Some((BreakerState::HalfOpen, BreakerState::Closed))
                    } else {
                        None
                    }
                } else {
                    core.state = BreakerState::Open;
                    core.opened_at = now;
                    Some((BreakerState::HalfOpen, BreakerState::Open))
                }
            }
            // A late result from a call admitted before the trip: the
            // window was reset when the breaker opened, so drop it.
            BreakerState::Open => None,
        }
    }
}

/// All breakers for a service fleet, keyed by service name, sharing one
/// config, clock, and telemetry sink. Breakers are created lazily on
/// first use.
#[derive(Debug)]
pub struct BreakerRegistry {
    cfg: BreakerConfig,
    clock: SimClock,
    telemetry: Telemetry,
    breakers: RwLock<BTreeMap<String, Arc<CircuitBreaker>>>,
}

impl BreakerRegistry {
    /// Creates an empty registry.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent (see [`CircuitBreaker::new`]).
    pub fn new(clock: SimClock, telemetry: Telemetry, cfg: BreakerConfig) -> BreakerRegistry {
        cfg.validate();
        BreakerRegistry {
            cfg,
            clock,
            telemetry,
            breakers: RwLock::new(BTreeMap::new()),
        }
    }

    /// The shared breaker config.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// The breaker guarding `service`, creating it Closed if absent.
    pub fn breaker(&self, service: &str) -> Arc<CircuitBreaker> {
        if let Some(b) = self.breakers.read().get(service) {
            return Arc::clone(b);
        }
        let mut map = self.breakers.write();
        Arc::clone(
            map.entry(service.to_string())
                .or_insert_with(|| Arc::new(CircuitBreaker::new(self.cfg))),
        )
    }

    /// The current state of `service`'s breaker (Closed if it has never
    /// been used).
    pub fn state(&self, service: &str) -> BreakerState {
        self.breakers
            .read()
            .get(service)
            .map(|b| b.state())
            .unwrap_or(BreakerState::Closed)
    }

    /// Asks `service`'s breaker whether a call may proceed now, emitting
    /// transition/rejection events and metrics.
    pub fn admit(&self, service: &str, ctx: &SpanCtx) -> Admission {
        let breaker = self.breaker(service);
        let (admission, transition) = breaker.admit(self.clock.now());
        if let Some(t) = transition {
            self.publish_transition(service, ctx, t);
        }
        if !admission.is_allowed() {
            self.telemetry
                .tracer()
                .emit(ctx, || EventKind::BreakerRejected {
                    service: service.to_string(),
                });
            self.telemetry
                .metrics()
                .inc_counter("sdk_breaker_rejections_total", &[("service", service)]);
        }
        admission
    }

    /// Feeds one attempt result into `service`'s breaker, emitting any
    /// transition it causes.
    pub fn record(&self, service: &str, success: bool, ctx: &SpanCtx) {
        let breaker = self.breaker(service);
        if let Some(t) = breaker.record(self.clock.now(), success) {
            self.publish_transition(service, ctx, t);
        }
    }

    fn publish_transition(&self, service: &str, ctx: &SpanCtx, (from, to): Transition) {
        self.telemetry
            .tracer()
            .emit(ctx, || EventKind::BreakerTransition {
                service: service.to_string(),
                from: from.name(),
                to: to.name(),
            });
        let metrics = self.telemetry.metrics();
        metrics.inc_counter(
            "sdk_breaker_transitions_total",
            &[("service", service), ("to", to.name())],
        );
        metrics.set_gauge("sdk_breaker_state", &[("service", service)], to.code());
    }
}

/// The governance bundle threaded through the invocation layers: an
/// optional breaker fleet plus a deadline. [`Governance::none`] is the
/// zero-cost default that preserves pre-resilience behaviour exactly.
#[derive(Debug, Clone, Default)]
pub struct Governance {
    /// Per-service circuit breakers, if enabled.
    pub breakers: Option<Arc<BreakerRegistry>>,
    /// The end-to-end budget for the current operation.
    pub deadline: Deadline,
}

impl Governance {
    /// No breakers, no deadline.
    pub fn none() -> Governance {
        Governance::default()
    }

    /// Deadline only.
    pub fn with_deadline(deadline: Deadline) -> Governance {
        Governance {
            breakers: None,
            deadline,
        }
    }

    /// Breakers plus an optional deadline.
    pub fn new(breakers: Option<Arc<BreakerRegistry>>, deadline: Deadline) -> Governance {
        Governance { breakers, deadline }
    }

    /// This governance with the deadline replaced.
    pub fn deadline(mut self, deadline: Deadline) -> Governance {
        self.deadline = deadline;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_calls: 4,
            trip_error_rate: 0.5,
            open_for: Duration::from_secs(1),
            half_open_probes: 2,
        }
    }

    #[test]
    fn deadline_semantics() {
        let clock = SimClock::new();
        let d = Deadline::within(&clock, Duration::from_millis(50));
        assert!(!d.is_expired(clock.now()));
        assert_eq!(d.remaining(clock.now()), Some(Duration::from_millis(50)));
        clock.advance(Duration::from_millis(60));
        assert!(d.is_expired(clock.now()));
        assert_eq!(d.remaining(clock.now()), Some(Duration::ZERO));
        assert!(!Deadline::NONE.is_expired(clock.now()));
        assert_eq!(Deadline::NONE.remaining(clock.now()), None);
    }

    #[test]
    fn closed_breaker_trips_at_error_rate() {
        let b = CircuitBreaker::new(cfg());
        let now = SimTime::from_millis(10);
        // Three failures in four calls: 75% ≥ 50% with min_calls met.
        assert_eq!(b.record(now, true), None);
        assert_eq!(b.record(now, false), None);
        assert_eq!(b.record(now, false), None);
        assert_eq!(
            b.record(now, false),
            Some((BreakerState::Closed, BreakerState::Open))
        );
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn breaker_does_not_trip_below_min_calls() {
        let b = CircuitBreaker::new(cfg());
        let now = SimTime::ZERO;
        assert_eq!(b.record(now, false), None);
        assert_eq!(b.record(now, false), None);
        assert_eq!(b.record(now, false), None);
        assert_eq!(b.state(), BreakerState::Closed, "only 3 of min 4 calls");
    }

    #[test]
    fn window_slides_old_results_out() {
        let b = CircuitBreaker::new(cfg());
        let now = SimTime::ZERO;
        // Fill the window (8) with failures *interleaved* below the trip
        // rate is impossible here, so use successes first, then verify old
        // successes slide out.
        for _ in 0..8 {
            b.record(now, true);
        }
        // 4 failures into a window of 8 → rate exactly 0.5 → trips, but
        // only once the old successes have slid out enough. After 4
        // failures the window is [t,t,t,t,f,f,f,f] → 50% → trip.
        b.record(now, false);
        b.record(now, false);
        b.record(now, false);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(
            b.record(now, false),
            Some((BreakerState::Closed, BreakerState::Open))
        );
    }

    #[test]
    fn open_breaker_rejects_until_cooldown_then_probes() {
        let b = CircuitBreaker::new(cfg());
        let t0 = SimTime::from_millis(100);
        for _ in 0..4 {
            b.record(t0, false);
        }
        assert_eq!(b.state(), BreakerState::Open);

        let (adm, _) = b.admit(t0.after(Duration::from_millis(500)));
        assert_eq!(
            adm,
            Admission::Rejected {
                retry_after: Duration::from_millis(500)
            }
        );

        let after = t0.after(Duration::from_secs(1));
        let (adm, transition) = b.admit(after);
        assert!(adm.is_allowed());
        assert_eq!(
            transition,
            Some((BreakerState::Open, BreakerState::HalfOpen))
        );
    }

    #[test]
    fn half_open_probe_budget_is_bounded() {
        let b = CircuitBreaker::new(cfg());
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            b.record(t0, false);
        }
        let after = t0.after(Duration::from_secs(2));
        assert!(b.admit(after).0.is_allowed()); // probe 1 (Open→HalfOpen)
        assert!(b.admit(after).0.is_allowed()); // probe 2
        let (adm, _) = b.admit(after);
        assert!(!adm.is_allowed(), "probe budget of 2 is saturated");
    }

    #[test]
    fn probes_close_on_success_reopen_on_failure() {
        let make_tripped = || {
            let b = CircuitBreaker::new(cfg());
            for _ in 0..4 {
                b.record(SimTime::ZERO, false);
            }
            let after = SimTime::ZERO.after(Duration::from_secs(2));
            b.admit(after);
            (b, after)
        };

        let (b, after) = make_tripped();
        assert_eq!(b.record(after, true), None, "one of two probes");
        b.admit(after);
        assert_eq!(
            b.record(after, true),
            Some((BreakerState::HalfOpen, BreakerState::Closed))
        );
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.error_rate(), 0.0, "window reset on close");

        let (b, after) = make_tripped();
        assert_eq!(
            b.record(after, false),
            Some((BreakerState::HalfOpen, BreakerState::Open))
        );
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn registry_emits_transitions_and_rejections() {
        let telemetry = Telemetry::new();
        let clock = SimClock::new();
        let reg = BreakerRegistry::new(clock.clone(), telemetry.clone(), cfg());
        let ctx = telemetry.tracer().new_trace();

        for _ in 0..4 {
            reg.record("svc", false, &ctx);
        }
        assert_eq!(reg.state("svc"), BreakerState::Open);
        assert_eq!(
            telemetry.metrics().counter_value(
                "sdk_breaker_transitions_total",
                &[("service", "svc"), ("to", "open")]
            ),
            Some(1)
        );
        assert_eq!(
            telemetry
                .metrics()
                .gauge_value("sdk_breaker_state", &[("service", "svc")]),
            Some(BreakerState::Open.code())
        );

        assert!(!reg.admit("svc", &ctx).is_allowed());
        assert_eq!(
            telemetry
                .metrics()
                .counter_value("sdk_breaker_rejections_total", &[("service", "svc")]),
            Some(1)
        );
        let names: Vec<_> = telemetry
            .tracer()
            .events()
            .iter()
            .map(|e| e.kind.name())
            .collect();
        assert!(names.contains(&"breaker_transition"));
        assert!(names.contains(&"breaker_rejected"));
    }

    #[test]
    fn registry_untouched_service_reads_closed() {
        let reg = BreakerRegistry::new(
            SimClock::new(),
            Telemetry::disabled(),
            BreakerConfig::default(),
        );
        assert_eq!(reg.state("ghost"), BreakerState::Closed);
    }

    #[test]
    #[should_panic(expected = "min_calls")]
    fn bad_config_rejected() {
        let _ = CircuitBreaker::new(BreakerConfig {
            min_calls: 100,
            window: 8,
            ..BreakerConfig::default()
        });
    }
}
