//! Service ranking.
//!
//! §2: "The rich SDK can rank services having similar functionality by
//! sorting the services in increasing order by score. The service with the
//! lowest score is the most desirable one."

use crate::monitor::ServiceMonitor;
use crate::predict::{ColdStart, Predictor};
use crate::registry::ServiceRegistry;
use crate::score::{ClassMaxima, ScoreInputs, ScoringFormula};
use cogsdk_sim::service::SimService;
use std::sync::Arc;

/// One entry of a ranking: the service with its predicted inputs and
/// score.
#[derive(Debug, Clone)]
pub struct RankedService {
    /// The candidate service.
    pub service: Arc<SimService>,
    /// Predicted response time / cost / quality that produced the score.
    pub inputs: ScoreInputs,
    /// The score; lower ranks first.
    pub score: f64,
}

/// Configuration for ranking a service class.
#[derive(Debug, Clone)]
pub struct RankOptions {
    /// Latency predictor.
    pub predictor: Predictor,
    /// Scoring formula.
    pub formula: ScoringFormula,
    /// User default latency for fully cold services (ms).
    pub default_latency_ms: f64,
    /// The latency parameters of the upcoming request (used by
    /// parameterized predictors).
    pub params: Vec<(String, f64)>,
    /// When true, predicted response time is multiplied by the expected
    /// number of attempts, `1 / availability` — so chronically failing
    /// services rank down even when their successful calls are fast
    /// (§2 monitors availability; this folds it into selection).
    pub availability_penalty: bool,
}

impl Default for RankOptions {
    fn default() -> RankOptions {
        RankOptions {
            predictor: Predictor::Mean,
            formula: ScoringFormula::default_weights(),
            default_latency_ms: 100.0,
            params: Vec::new(),
            availability_penalty: false,
        }
    }
}

/// Ranks the services of `class`, most desirable first.
///
/// Predictions come from monitored history; cold services fall back to
/// the class mean, then to `default_latency_ms` (§2's fallback order).
/// Quality predictions use user ratings when available, falling back to
/// the service's advertised quality hint. Cost predictions use observed
/// mean cost, falling back to the cost model's typical charge.
pub fn rank_class(
    registry: &ServiceRegistry,
    monitor: &ServiceMonitor,
    class: &str,
    options: &RankOptions,
) -> Vec<RankedService> {
    let members = registry.class_members(class);
    if members.is_empty() {
        return Vec::new();
    }
    let names: Vec<String> = members.iter().map(|s| s.name().to_string()).collect();
    let class_mean = monitor.class_mean_latency_ms(&names);

    let inputs: Vec<ScoreInputs> = members
        .iter()
        .map(|svc| {
            let history = monitor.history(svc.name()).unwrap_or_default();
            let fallback = match class_mean {
                Some(mean) => ColdStart::ClassMean(mean),
                None => ColdStart::UserDefault(options.default_latency_ms),
            };
            let mut response_ms = options
                .predictor
                .predict_or(&history, &options.params, fallback);
            if options.availability_penalty {
                // Expected attempts until success is 1/availability for
                // independent failures; floor avoids infinite penalties
                // while still burying fully dead services.
                let availability = history.availability().unwrap_or(1.0).max(0.05);
                response_ms /= availability;
            }
            let cost_micros = history.mean_cost_micros().unwrap_or_else(|| {
                svc.cost_model()
                    .typical_charge(payload_estimate(&options.params))
                    .as_micros() as f64
            });
            let quality = history.mean_quality().unwrap_or_else(|| svc.quality());
            ScoreInputs {
                response_ms,
                cost_micros,
                quality,
            }
        })
        .collect();

    let maxima = ClassMaxima::over(&inputs);
    let mut ranked: Vec<RankedService> = members
        .into_iter()
        .zip(inputs)
        .map(|(service, inputs)| {
            let score = options.formula.score(&inputs, &maxima);
            RankedService {
                service,
                inputs,
                score,
            }
        })
        .collect();
    // Increasing order by score; ties break by name for determinism.
    ranked.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then_with(|| a.service.name().cmp(b.service.name()))
    });
    ranked
}

/// Estimates the payload size from the latency parameters (the `size`
/// convention used across the workspace), defaulting to 1 KiB.
fn payload_estimate(params: &[(String, f64)]) -> usize {
    params
        .iter()
        .find(|(n, _)| n == "size")
        .map(|(_, v)| *v as usize)
        .unwrap_or(1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_sim::cost::{CostModel, MicroDollars};
    use cogsdk_sim::latency::LatencyModel;
    use cogsdk_sim::SimEnv;

    fn setup() -> (SimEnv, ServiceRegistry, ServiceMonitor) {
        let env = SimEnv::with_seed(5);
        let reg = ServiceRegistry::new();
        reg.register(
            SimService::builder("fast-cheap", "storage")
                .latency(LatencyModel::constant_ms(10.0))
                .cost(CostModel::PerCall(MicroDollars::from_micros(10)))
                .quality(0.5)
                .build(&env),
        );
        reg.register(
            SimService::builder("slow-good", "storage")
                .latency(LatencyModel::constant_ms(80.0))
                .cost(CostModel::PerCall(MicroDollars::from_micros(500)))
                .quality(0.95)
                .build(&env),
        );
        (env, reg, ServiceMonitor::new())
    }

    #[test]
    fn ranking_without_history_uses_advertised_metadata() {
        let (_env, reg, monitor) = setup();
        let ranked = rank_class(&reg, &monitor, "storage", &RankOptions::default());
        assert_eq!(ranked.len(), 2);
        // With balanced weights the fast cheap service wins.
        assert_eq!(ranked[0].service.name(), "fast-cheap");
        assert!(ranked[0].score <= ranked[1].score);
    }

    #[test]
    fn observed_history_overrides_defaults() {
        let (_env, reg, monitor) = setup();
        // Reality disagrees with the advertised latency: fast-cheap has
        // been slow in practice.
        for _ in 0..10 {
            monitor.record_raw("fast-cheap", 500.0, true, 10, vec![]);
            monitor.record_raw("slow-good", 20.0, true, 500, vec![]);
        }
        let options = RankOptions {
            formula: ScoringFormula::normalized(1.0, 0.1, 0.1),
            ..RankOptions::default()
        };
        let ranked = rank_class(&reg, &monitor, "storage", &options);
        assert_eq!(ranked[0].service.name(), "slow-good");
    }

    #[test]
    fn quality_ratings_feed_ranking() {
        let (_env, reg, monitor) = setup();
        // Users rate fast-cheap terribly.
        for _ in 0..5 {
            monitor.rate_quality("fast-cheap", 0.05).unwrap();
            monitor.rate_quality("slow-good", 0.95).unwrap();
        }
        let options = RankOptions {
            formula: ScoringFormula::normalized(0.1, 0.1, 5.0),
            ..RankOptions::default()
        };
        let ranked = rank_class(&reg, &monitor, "storage", &options);
        assert_eq!(ranked[0].service.name(), "slow-good");
        assert!((ranked[1].inputs.quality - 0.05).abs() < 1e-9);
    }

    #[test]
    fn empty_class_ranks_empty() {
        let (_env, reg, monitor) = setup();
        assert!(rank_class(&reg, &monitor, "nope", &RankOptions::default()).is_empty());
    }

    #[test]
    fn cold_service_falls_back_to_class_mean() {
        let (env, reg, monitor) = setup();
        reg.register(
            SimService::builder("newcomer", "storage")
                .quality(0.7)
                .build(&env),
        );
        monitor.record_raw("fast-cheap", 10.0, true, 10, vec![]);
        monitor.record_raw("slow-good", 90.0, true, 500, vec![]);
        let ranked = rank_class(&reg, &monitor, "storage", &RankOptions::default());
        let newcomer = ranked
            .iter()
            .find(|r| r.service.name() == "newcomer")
            .unwrap();
        // Class mean of 10 and 90 = 50.
        assert_eq!(newcomer.inputs.response_ms, 50.0);
    }

    #[test]
    fn size_conditioned_ranking_crosses_over() {
        // The paper's s1/s2 example: s1 best for small payloads, s2 for
        // large; regression-based ranking must pick each in its regime.
        let env = SimEnv::with_seed(9);
        let reg = ServiceRegistry::new();
        let monitor = ServiceMonitor::new();
        reg.register(SimService::builder("s1", "storage").build(&env));
        reg.register(SimService::builder("s2", "storage").build(&env));
        // s1: 1ms + 0.01*size; s2: 20ms + 0.001*size (training data).
        for size in (1..=20).map(|i| i as f64 * 500.0) {
            monitor.record_raw(
                "s1",
                1.0 + 0.010 * size,
                true,
                0,
                vec![("size".into(), size)],
            );
            monitor.record_raw(
                "s2",
                20.0 + 0.001 * size,
                true,
                0,
                vec![("size".into(), size)],
            );
        }
        let rank_at = |size: f64| {
            let options = RankOptions {
                predictor: Predictor::RegressionOn("size".into()),
                formula: ScoringFormula::weighted(1.0, 0.0, 0.0),
                default_latency_ms: 100.0,
                params: vec![("size".into(), size)],
                availability_penalty: false,
            };
            rank_class(&reg, &monitor, "storage", &options)[0]
                .service
                .name()
                .to_string()
        };
        assert_eq!(rank_at(100.0), "s1");
        assert_eq!(rank_at(10_000.0), "s2");
    }

    #[test]
    fn availability_penalty_demotes_flaky_fast_service() {
        let env = SimEnv::with_seed(77);
        let reg = ServiceRegistry::new();
        let monitor = ServiceMonitor::new();
        reg.register(SimService::builder("fast-flaky", "c").build(&env));
        reg.register(SimService::builder("steady", "c").build(&env));
        // fast-flaky: 5ms when it works, but 90% of calls fail, so its
        // effective latency (5ms / 0.1 = 50ms) exceeds steady's 30ms.
        for i in 0..100 {
            monitor.record_raw("fast-flaky", 5.0, i % 10 == 0, 0, vec![]);
            monitor.record_raw("steady", 30.0, true, 0, vec![]);
        }
        let latency_only = RankOptions {
            formula: ScoringFormula::weighted(1.0, 0.0, 0.0),
            ..RankOptions::default()
        };
        let naive = rank_class(&reg, &monitor, "c", &latency_only);
        assert_eq!(naive[0].service.name(), "fast-flaky", "naively fastest");
        let penalized = rank_class(
            &reg,
            &monitor,
            "c",
            &RankOptions {
                availability_penalty: true,
                ..latency_only
            },
        );
        assert_eq!(penalized[0].service.name(), "steady");
        // Effective latency of the flaky one: 5ms / 0.1 = 50ms — reported
        // through the inputs for transparency.
        let flaky = penalized
            .iter()
            .find(|r| r.service.name() == "fast-flaky")
            .unwrap();
        assert!((flaky.inputs.response_ms - 50.0).abs() < 0.5);
    }

    #[test]
    fn tie_break_is_deterministic_by_name() {
        let env = SimEnv::with_seed(1);
        let reg = ServiceRegistry::new();
        let monitor = ServiceMonitor::new();
        for name in ["b-svc", "a-svc"] {
            reg.register(
                SimService::builder(name, "c")
                    .latency(LatencyModel::constant_ms(10.0))
                    .quality(0.5)
                    .build(&env),
            );
        }
        let ranked = rank_class(&reg, &monitor, "c", &RankOptions::default());
        assert_eq!(ranked[0].service.name(), "a-svc");
    }
}
