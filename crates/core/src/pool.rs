//! A bounded thread pool for parallel service calls.
//!
//! §2.1: "multiple threads can be used to make parallel service calls…
//! to prevent the number of threads from becoming too large in corner
//! cases, we use thread pools of limited size."

use crate::future::ListenableFuture;
use cogsdk_obs::{EventKind, SpanCtx, Telemetry};
use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool whose `submit` returns a
/// [`ListenableFuture`].
///
/// # Examples
///
/// ```
/// use cogsdk_core::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let futures: Vec<_> = (0..8).map(|i| pool.submit(move || i * i)).collect();
/// let total: i32 = futures.iter().map(|f| *f.wait()).sum();
/// assert_eq!(total, 140);
/// ```
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
    telemetry: Telemetry,
    /// Jobs submitted but not yet picked up by a worker.
    queued: Arc<AtomicUsize>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool of `size` workers.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> ThreadPool {
        ThreadPool::with_telemetry(size, Telemetry::disabled())
    }

    /// As [`ThreadPool::new`], emitting enqueue/dequeue events, a
    /// queue-depth gauge, and a queue-wait histogram into `telemetry` —
    /// making queueing delay under pool saturation visible.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn with_telemetry(size: usize, telemetry: Telemetry) -> ThreadPool {
        assert!(size > 0, "thread pool needs at least one worker");
        let (sender, receiver) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let receiver = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("cogsdk-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = receiver.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            size,
            telemetry,
            queued: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Jobs submitted but not yet started by a worker.
    pub fn queue_depth(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Submits a job; the returned future completes with its result.
    ///
    /// Jobs that panic poison only their own future (waiters on it would
    /// deadlock, so panics are caught and re-raised as a poisoned marker
    /// is impossible without `T: UnwindSafe`; instead the panic is
    /// propagated to the worker thread which aborts that future silently
    /// — tests therefore never panic inside jobs; application handlers
    /// return `Result` values).
    pub fn submit<T: Send + Sync + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> ListenableFuture<T> {
        self.submit_in(None, job)
    }

    /// As [`submit`](ThreadPool::submit), optionally attaching the job's
    /// enqueue/dequeue events to a caller's span: the job becomes a child
    /// span of `parent` (same trace, same tenant), and `pool_jobs_total`
    /// gains a per-tenant series for tenanted work.
    pub fn submit_in<T: Send + Sync + 'static>(
        &self,
        parent: Option<&SpanCtx>,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> ListenableFuture<T> {
        let future = ListenableFuture::new();
        let future2 = future.clone();
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        let payload: Job = if self.telemetry.is_enabled() {
            let ctx = match parent {
                Some(p) => self.telemetry.tracer().child(p),
                None => self.telemetry.tracer().new_trace(),
            };
            self.telemetry
                .tracer()
                .emit(&ctx, || EventKind::PoolEnqueue { queue_depth: depth });
            let metrics = self.telemetry.metrics();
            match self.telemetry.tracer().tenant_name(ctx.tenant).as_deref() {
                Some(t) => metrics.inc_counter("pool_jobs_total", &[("tenant", t)]),
                None => metrics.inc_counter("pool_jobs_total", &[]),
            }
            metrics.set_gauge("pool_queue_depth", &[], depth as f64);
            let telemetry = self.telemetry.clone();
            let queued = self.queued.clone();
            let enqueued_at = Instant::now();
            Box::new(move || {
                let depth = queued.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
                let wait_ms = enqueued_at.elapsed().as_secs_f64() * 1e3;
                telemetry.tracer().emit(&ctx, || EventKind::PoolDequeue {
                    queue_wait_ms: wait_ms,
                });
                let metrics = telemetry.metrics();
                metrics.observe("pool_queue_wait_ms", &[], wait_ms);
                metrics.set_gauge("pool_queue_depth", &[], depth as f64);
                future2.complete(job());
            })
        } else {
            let queued = self.queued.clone();
            Box::new(move || {
                queued.fetch_sub(1, Ordering::Relaxed);
                future2.complete(job());
            })
        };
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(payload)
            .expect("workers outlive the sender");
        future
    }

    /// Runs one closure per item in parallel and collects the results in
    /// input order, blocking until all complete.
    pub fn map_all<T, U>(&self, items: Vec<T>, f: impl Fn(T) -> U + Send + Sync + 'static) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + Sync + Clone + 'static,
    {
        let f = Arc::new(f);
        let futures: Vec<ListenableFuture<U>> = items
            .into_iter()
            .map(|item| {
                let f = f.clone();
                self.submit(move || f(item))
            })
            .collect();
        futures.iter().map(|fut| (*fut.wait()).clone()).collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain and exit.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn submit_returns_results() {
        let pool = ThreadPool::new(2);
        let f = pool.submit(|| 2 + 2);
        assert_eq!(*f.wait(), 4);
    }

    #[test]
    fn jobs_run_concurrently_up_to_pool_size() {
        let pool = ThreadPool::new(4);
        let start = Instant::now();
        let futures: Vec<_> = (0..4)
            .map(|_| {
                pool.submit(|| {
                    std::thread::sleep(Duration::from_millis(50));
                })
            })
            .collect();
        for f in &futures {
            f.wait();
        }
        let elapsed = start.elapsed();
        // 4 sleeps of 50ms on 4 workers ≈ 50ms, not 200ms.
        assert!(elapsed < Duration::from_millis(150), "{elapsed:?}");
    }

    #[test]
    fn pool_bounds_concurrency() {
        let pool = ThreadPool::new(1);
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let futures: Vec<_> = (0..6)
            .map(|_| {
                let concurrent = concurrent.clone();
                let peak = peak.clone();
                pool.submit(move || {
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for f in futures {
            f.wait();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "single worker = no overlap");
    }

    #[test]
    fn map_all_preserves_order() {
        let pool = ThreadPool::new(3);
        let out = pool.map_all((0..20).collect(), |i: i32| i * 10);
        assert_eq!(out, (0..20).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..10 {
                let counter = counter.clone();
                pool.submit(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop happens here.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_size_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn telemetry_tracks_queue_wait_and_depth() {
        let t = Telemetry::new();
        let pool = ThreadPool::with_telemetry(1, t.clone());
        let futures: Vec<_> = (0..4)
            .map(|_| pool.submit(|| std::thread::sleep(Duration::from_millis(5))))
            .collect();
        for f in &futures {
            f.wait();
        }
        assert_eq!(t.metrics().counter_value("pool_jobs_total", &[]), Some(4));
        let wait = t.metrics().histogram("pool_queue_wait_ms", &[]).unwrap();
        assert_eq!(wait.count, 4);
        // A single worker serializes 5ms jobs: the last job queues ≥ 10ms.
        assert!(wait.sum >= 10.0, "queue wait sum {} too small", wait.sum);
        let events = t.tracer().events();
        let enqueues = events
            .iter()
            .filter(|e| e.kind.name() == "pool_enqueue")
            .count();
        let dequeues = events
            .iter()
            .filter(|e| e.kind.name() == "pool_dequeue")
            .count();
        assert_eq!((enqueues, dequeues), (4, 4));
        assert_eq!(pool.queue_depth(), 0);
    }
}
