//! Response caching.
//!
//! §2: "the rich SDK allows responses from services to be cached. That
//! way, if a subsequent request is made for the same data, the data can be
//! obtained from the cache which avoids the overhead for making a call to
//! a remote service." The paper also notes the two caveats this module
//! implements: caching must be *opt-in per operation* (storage writes must
//! not be served from cache) and cached values can become obsolete, hence
//! TTL-based expiry.

use cogsdk_json::Json;
use cogsdk_obs::{EventKind, SpanCtx, Telemetry};
use cogsdk_sim::clock::{SimClock, SimTime};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that missed (expired entries count as misses).
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Lookups that found only an expired entry.
    pub expirations: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    value: Json,
    stored_at: SimTime,
    ttl: Duration,
    /// LRU stamp: larger = more recently used.
    used_at: u64,
}

/// A TTL + LRU response cache keyed by request cache keys, driven by the
/// simulation clock.
///
/// # Examples
///
/// ```
/// use cogsdk_core::ResponseCache;
/// use cogsdk_sim::SimEnv;
/// use cogsdk_json::json;
/// use std::time::Duration;
///
/// let env = SimEnv::with_seed(1);
/// let cache = ResponseCache::new(env.clock().clone(), 100, Duration::from_secs(60));
/// cache.put("key", json!({"cached": true}));
/// assert_eq!(cache.get("key"), Some(json!({"cached": true})));
/// env.clock().advance(Duration::from_secs(61));
/// assert_eq!(cache.get("key"), None); // expired
/// ```
#[derive(Debug)]
pub struct ResponseCache {
    clock: SimClock,
    capacity: usize,
    default_ttl: Duration,
    telemetry: Telemetry,
    state: Mutex<CacheState>,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<String, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// The `cache` metric label for [`ResponseCache`] series.
const CACHE_LABEL: (&str, &str) = ("cache", "response");

impl ResponseCache {
    /// Creates a cache with the given capacity and default TTL.
    ///
    /// # Panics
    ///
    /// Panics if `default_ttl` is zero.
    pub fn new(clock: SimClock, capacity: usize, default_ttl: Duration) -> ResponseCache {
        ResponseCache::with_telemetry(clock, capacity, default_ttl, Telemetry::disabled())
    }

    /// As [`ResponseCache::new`], with hit/miss/evict events and
    /// counters flowing into `telemetry`.
    ///
    /// # Panics
    ///
    /// Panics if `default_ttl` is zero.
    pub fn with_telemetry(
        clock: SimClock,
        capacity: usize,
        default_ttl: Duration,
        telemetry: Telemetry,
    ) -> ResponseCache {
        assert!(!default_ttl.is_zero(), "TTL must be positive");
        ResponseCache {
            clock,
            capacity,
            default_ttl,
            telemetry,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// The configured capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Number of live (possibly stale) entries.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a fresh entry; expired entries are removed and miss.
    pub fn get(&self, key: &str) -> Option<Json> {
        let ctx = self.telemetry.tracer().new_trace();
        self.get_traced(key, &ctx)
    }

    /// As [`ResponseCache::get`], emitting the hit/miss event under the
    /// caller's span so cache probes appear inside invocation traces.
    pub fn get_traced(&self, key: &str, ctx: &SpanCtx) -> Option<Json> {
        let now = self.clock.now();
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        let (value, expired) = match state.entries.get_mut(key) {
            Some(entry) => {
                if now.since(entry.stored_at) >= entry.ttl {
                    state.entries.remove(key);
                    state.stats.expirations += 1;
                    state.stats.misses += 1;
                    (None, true)
                } else {
                    entry.used_at = tick;
                    let value = entry.value.clone();
                    state.stats.hits += 1;
                    (Some(value), false)
                }
            }
            None => {
                state.stats.misses += 1;
                (None, false)
            }
        };
        drop(state);
        if self.telemetry.is_enabled() {
            let hit = value.is_some();
            self.telemetry.tracer().emit(ctx, || {
                if hit {
                    EventKind::CacheHit {
                        key: key.to_string(),
                    }
                } else {
                    EventKind::CacheMiss {
                        key: key.to_string(),
                    }
                }
            });
            let metrics = self.telemetry.metrics();
            metrics.inc_counter(
                "cache_requests_total",
                &[CACHE_LABEL, ("result", if hit { "hit" } else { "miss" })],
            );
            if expired {
                metrics.inc_counter("cache_expirations_total", &[CACHE_LABEL]);
            }
        }
        value
    }

    /// Stores a value under the default TTL.
    pub fn put(&self, key: impl Into<String>, value: Json) {
        self.put_with_ttl(key, value, self.default_ttl);
    }

    /// Stores a value with an explicit TTL.
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is zero.
    pub fn put_with_ttl(&self, key: impl Into<String>, value: Json, ttl: Duration) {
        assert!(!ttl.is_zero(), "TTL must be positive");
        if self.capacity == 0 {
            return;
        }
        let now = self.clock.now();
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        state.entries.insert(
            key.into(),
            Entry {
                value,
                stored_at: now,
                ttl,
                used_at: tick,
            },
        );
        while state.entries.len() > self.capacity {
            // Evict the least recently used entry.
            let lru = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used_at)
                .map(|(k, _)| k.clone())
                .expect("nonempty");
            state.entries.remove(&lru);
            state.stats.evictions += 1;
            if self.telemetry.is_enabled() {
                let ctx = self.telemetry.tracer().new_trace();
                self.telemetry
                    .tracer()
                    .emit(&ctx, || EventKind::CacheEvict { key: lru.clone() });
                self.telemetry
                    .metrics()
                    .inc_counter("cache_evictions_total", &[CACHE_LABEL]);
            }
        }
    }

    /// Invalidates one key (consistency hook for writes-through): returns
    /// whether an entry was present.
    pub fn invalidate(&self, key: &str) -> bool {
        self.state.lock().entries.remove(key).is_some()
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.state.lock().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_json::json;
    use cogsdk_sim::SimEnv;

    fn cache(capacity: usize, ttl_secs: u64) -> (SimEnv, ResponseCache) {
        let env = SimEnv::with_seed(1);
        let c = ResponseCache::new(env.clock().clone(), capacity, Duration::from_secs(ttl_secs));
        (env, c)
    }

    #[test]
    fn put_get_round_trip() {
        let (_env, c) = cache(10, 60);
        c.put("a", json!({"v": 1}));
        assert_eq!(c.get("a"), Some(json!({"v": 1})));
        assert_eq!(c.get("missing"), None);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn entries_expire_by_ttl() {
        let (env, c) = cache(10, 10);
        c.put("a", json!(1));
        env.clock().advance(Duration::from_secs(9));
        assert!(c.get("a").is_some());
        env.clock().advance(Duration::from_secs(2));
        assert!(c.get("a").is_none());
        assert_eq!(c.stats().expirations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn per_entry_ttl_overrides_default() {
        let (env, c) = cache(10, 1000);
        c.put_with_ttl("short", json!(1), Duration::from_secs(1));
        c.put("long", json!(2));
        env.clock().advance(Duration::from_secs(2));
        assert!(c.get("short").is_none());
        assert!(c.get("long").is_some());
    }

    #[test]
    fn lru_eviction_under_capacity_pressure() {
        let (_env, c) = cache(2, 60);
        c.put("a", json!(1));
        c.put("b", json!(2));
        c.get("a"); // a becomes most recent
        c.put("c", json!(3)); // evicts b
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_same_key_updates_value() {
        let (_env, c) = cache(10, 60);
        c.put("a", json!(1));
        c.put("a", json!(2));
        assert_eq!(c.get("a"), Some(json!(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let (_env, c) = cache(10, 60);
        c.put("a", json!(1));
        c.put("b", json!(2));
        assert!(c.invalidate("a"));
        assert!(!c.invalidate("a"));
        assert!(c.get("a").is_none());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let (_env, c) = cache(0, 60);
        c.put("a", json!(1));
        assert!(c.get("a").is_none());
    }

    #[test]
    #[should_panic(expected = "TTL")]
    fn zero_ttl_rejected() {
        let (_env, c) = cache(1, 60);
        c.put_with_ttl("a", json!(1), Duration::ZERO);
    }

    #[test]
    fn telemetry_mirrors_stats() {
        let env = SimEnv::with_seed(2);
        let t = Telemetry::new();
        let c = ResponseCache::with_telemetry(
            env.clock().clone(),
            1,
            Duration::from_secs(60),
            t.clone(),
        );
        c.put("a", json!(1));
        assert!(c.get("a").is_some()); // hit
        assert!(c.get("b").is_none()); // miss
        c.put("b", json!(2)); // evicts a
        let hit = t.metrics().counter_value(
            "cache_requests_total",
            &[("cache", "response"), ("result", "hit")],
        );
        let miss = t.metrics().counter_value(
            "cache_requests_total",
            &[("cache", "response"), ("result", "miss")],
        );
        assert_eq!(hit, Some(c.stats().hits));
        assert_eq!(miss, Some(c.stats().misses));
        assert_eq!(
            t.metrics()
                .counter_value("cache_evictions_total", &[("cache", "response")]),
            Some(c.stats().evictions)
        );
        let names: Vec<&str> = t.tracer().events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(names, vec!["cache_hit", "cache_miss", "cache_evict"]);
    }

    #[test]
    fn refreshing_an_entry_resets_its_clock() {
        let (env, c) = cache(10, 10);
        c.put("a", json!(1));
        env.clock().advance(Duration::from_secs(8));
        c.put("a", json!(1)); // refresh
        env.clock().advance(Duration::from_secs(8));
        assert!(c.get("a").is_some(), "refreshed entry must survive");
    }
}
