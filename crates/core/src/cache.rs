//! Response caching.
//!
//! §2: "the rich SDK allows responses from services to be cached. That
//! way, if a subsequent request is made for the same data, the data can be
//! obtained from the cache which avoids the overhead for making a call to
//! a remote service." The paper also notes the two caveats this module
//! implements: caching must be *opt-in per operation* (storage writes must
//! not be served from cache) and cached values can become obsolete, hence
//! TTL-based expiry.
//!
//! Built for heavy multi-user traffic, the cache is **sharded**: keys are
//! hash-striped over N power-of-two shards, each with its own lock, LRU
//! order and TTL bookkeeping, so concurrent hits on different keys never
//! contend on one global mutex. On top of the shards sit two
//! herd-suppression mechanisms:
//!
//! * **Single-flight coalescing** ([`ResponseCache::join_flight`],
//!   [`ResponseCache::get_or_fetch`]): concurrent misses on the same key
//!   elect one *leader* which performs the upstream call; every other
//!   caller blocks on the shared in-flight result, so K duplicate misses
//!   cost exactly one remote invocation (success *and* failure fan out).
//! * **Stale-while-revalidate** ([`CacheConfig::stale_while_revalidate`]):
//!   an expired-but-recent entry can be served immediately while a single
//!   refresh runs, trading bounded staleness for tail latency.
//!
//! [`CacheStats`] aggregates counters across shards, so the external
//! accounting is unchanged from the single-map design.

use crate::future::ListenableFuture;
use crate::SdkError;
use cogsdk_json::Json;
use cogsdk_obs::{EventKind, SpanCtx, Telemetry};
use cogsdk_sim::clock::{SimClock, SimTime};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

/// Cache effectiveness counters, aggregated across every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that missed (expired entries count as misses).
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Lookups that found only an expired entry.
    pub expirations: u64,
    /// Lookups answered with an expired-but-recent value while a refresh
    /// was allowed to run (stale-while-revalidate; counted inside `hits`).
    pub stale_served: u64,
    /// Callers that joined an in-flight fetch instead of going upstream.
    pub coalesced_waits: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.expirations += other.expirations;
        self.stale_served += other.stale_served;
        self.coalesced_waits += other.coalesced_waits;
    }
}

/// Construction-time configuration for [`ResponseCache`].
///
/// # Examples
///
/// ```
/// use cogsdk_core::cache::CacheConfig;
/// use std::time::Duration;
///
/// let config = CacheConfig {
///     capacity: 1024,
///     shards: 8,
///     stale_while_revalidate: Some(Duration::from_secs(30)),
///     ..CacheConfig::default()
/// };
/// assert_eq!(config.capacity, 1024);
/// ```
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total capacity in entries across all shards (0 disables storage).
    pub capacity: usize,
    /// TTL applied by [`ResponseCache::put`].
    pub default_ttl: Duration,
    /// Requested shard count; rounded down to a power of two and clamped
    /// to `[1, min(256, capacity)]` so no shard has zero capacity.
    pub shards: usize,
    /// Extra window past the TTL during which an expired entry may still
    /// be served by [`ResponseCache::lookup`] while one refresh runs.
    /// `None` disables stale serving entirely.
    pub stale_while_revalidate: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            capacity: 4_096,
            default_ttl: Duration::from_secs(300),
            shards: 16,
            stale_while_revalidate: None,
        }
    }
}

impl CacheConfig {
    /// A config for the legacy `(capacity, ttl)` constructors: shard count
    /// scales with capacity (one shard per 64 entries, up to 16) so small
    /// caches keep exact whole-cache LRU order while large ones stripe.
    fn compat(capacity: usize, default_ttl: Duration) -> CacheConfig {
        CacheConfig {
            capacity,
            default_ttl,
            shards: (capacity / 64).clamp(1, 16),
            stale_while_revalidate: None,
        }
    }
}

/// Clamps a requested shard count to a power of two that divides the
/// capacity into non-empty shards.
fn normalize_shards(requested: usize, capacity: usize) -> usize {
    let ceiling = requested.clamp(1, 256).min(capacity.max(1));
    let mut p = 1;
    while p * 2 <= ceiling {
        p *= 2;
    }
    p
}

#[derive(Debug, Clone)]
struct Entry {
    value: Json,
    stored_at: SimTime,
    ttl: Duration,
    /// LRU stamp: larger = more recently used.
    used_at: u64,
}

/// The shared slot concurrent missers rendezvous on.
type FlightResult = Result<Json, SdkError>;

#[derive(Debug, Default)]
struct ShardState {
    entries: HashMap<String, Entry>,
    flights: HashMap<String, ListenableFuture<FlightResult>>,
    tick: u64,
    stats: CacheStats,
}

#[derive(Debug)]
struct Shard {
    /// This shard's slice of the total capacity.
    capacity: usize,
    state: Mutex<ShardState>,
}

/// What a [`ResponseCache::lookup`] probe found.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A live entry within its TTL.
    Fresh(Json),
    /// An expired entry still inside the stale-while-revalidate window;
    /// the entry is kept so one refresh can replace it.
    Stale(Json),
    /// Nothing servable (absent, or expired beyond the stale window and
    /// removed).
    Absent,
}

/// How [`ResponseCache::get_or_fetch`] (or the SDK's cached invoke path)
/// obtained a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchSource {
    /// Served from a live cache entry; no upstream work.
    Hit,
    /// Served an expired-but-recent entry while a refresh runs.
    Stale,
    /// This caller was the flight leader and paid the upstream call.
    Fetched,
    /// This caller joined another caller's in-flight fetch and waited for
    /// its result; no upstream call of its own.
    Coalesced,
}

impl FetchSource {
    /// Whether the caller was served without making its own upstream call.
    pub fn served_locally(&self) -> bool {
        !matches!(self, FetchSource::Fetched)
    }
}

/// Outcome of [`ResponseCache::join_flight`].
#[derive(Debug)]
pub enum FlightJoin {
    /// This caller must perform the upstream fetch and publish the result
    /// through the guard.
    Leader(FlightGuard),
    /// Another caller is already fetching; wait on the shared future.
    Follower(ListenableFuture<FlightResult>),
}

/// The leader's obligation: exactly one of
/// [`complete`](FlightGuard::complete) /
/// [`complete_with_ttl`](FlightGuard::complete_with_ttl) must be called
/// with the fetch outcome. Successful values are stored in the cache
/// *before* waiters are woken, so no waiter can re-miss and start a second
/// flight. Dropping the guard without completing (leader panicked or
/// bailed) fails the flight over to waiters as an error instead of
/// deadlocking them.
#[derive(Debug)]
pub struct FlightGuard {
    inner: Arc<CacheInner>,
    key: String,
    shard: usize,
    future: ListenableFuture<FlightResult>,
    done: bool,
}

impl FlightGuard {
    /// Publishes the fetch outcome: `Ok` values are stored under the
    /// default TTL, then all waiters are woken with the result.
    pub fn complete(self, result: FlightResult) {
        let ttl = self.inner.default_ttl;
        self.finish(result, ttl);
    }

    /// As [`complete`](FlightGuard::complete) with an explicit TTL for the
    /// stored value.
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is zero.
    pub fn complete_with_ttl(self, value: Json, ttl: Duration) {
        assert!(!ttl.is_zero(), "TTL must be positive");
        self.finish(Ok(value), ttl);
    }

    /// Completes the flight with a value that is *already* stored (the
    /// leader's double-check found it), skipping the re-put so the
    /// entry's TTL clock is not extended by a fetch that never happened.
    pub(crate) fn complete_cached(mut self, value: Json) {
        self.done = true;
        self.inner.shards[self.shard]
            .state
            .lock()
            .flights
            .remove(&self.key);
        self.future.complete(Ok(value));
    }

    fn finish(mut self, result: FlightResult, ttl: Duration) {
        self.done = true;
        if let Ok(value) = &result {
            self.inner.put_with_ttl(&self.key, value.clone(), ttl);
        }
        self.inner.shards[self.shard]
            .state
            .lock()
            .flights
            .remove(&self.key);
        self.future.complete(result);
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        self.inner.shards[self.shard]
            .state
            .lock()
            .flights
            .remove(&self.key);
        self.future.complete(Err(SdkError::AllFailed(format!(
            "in-flight fetch for {:?} was abandoned by its leader",
            self.key
        ))));
    }
}

/// A sharded TTL + LRU response cache keyed by request cache keys, driven
/// by the simulation clock. Cloning shares the same underlying shards.
///
/// # Examples
///
/// ```
/// use cogsdk_core::ResponseCache;
/// use cogsdk_sim::SimEnv;
/// use cogsdk_json::json;
/// use std::time::Duration;
///
/// let env = SimEnv::with_seed(1);
/// let cache = ResponseCache::new(env.clock().clone(), 100, Duration::from_secs(60));
/// cache.put("key", json!({"cached": true}));
/// assert_eq!(cache.get("key"), Some(json!({"cached": true})));
/// env.clock().advance(Duration::from_secs(61));
/// assert_eq!(cache.get("key"), None); // expired
/// ```
///
/// Duplicate concurrent misses collapse to one upstream call:
///
/// ```
/// use cogsdk_core::ResponseCache;
/// use cogsdk_sim::SimEnv;
/// use cogsdk_json::json;
/// use std::time::Duration;
///
/// let env = SimEnv::with_seed(1);
/// let cache = ResponseCache::new(env.clock().clone(), 100, Duration::from_secs(60));
/// let (value, source) = cache.get_or_fetch("key", || Ok(json!(42))).unwrap();
/// assert_eq!(value, json!(42));
/// assert_eq!(cache.get("key"), Some(json!(42))); // stored by the flight
/// ```
#[derive(Debug, Clone)]
pub struct ResponseCache {
    inner: Arc<CacheInner>,
}

#[derive(Debug)]
struct CacheInner {
    clock: SimClock,
    capacity: usize,
    default_ttl: Duration,
    stale_while_revalidate: Option<Duration>,
    telemetry: Telemetry,
    shards: Vec<Shard>,
    mask: u64,
}

/// The `cache` metric label for [`ResponseCache`] series.
const CACHE_LABEL: (&str, &str) = ("cache", "response");

impl CacheInner {
    fn shard_for(&self, key: &str) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() & self.mask) as usize
    }

    /// Stores a value, refreshing TTL and LRU recency atomically when the
    /// key already exists, and evicting this shard's LRU tail on overflow.
    fn put_with_ttl(&self, key: &str, value: Json, ttl: Duration) {
        assert!(!ttl.is_zero(), "TTL must be positive");
        if self.capacity == 0 {
            return;
        }
        let idx = self.shard_for(key);
        let shard = &self.shards[idx];
        let now = self.clock.now();
        let mut evicted = Vec::new();
        {
            let mut state = shard.state.lock();
            state.tick += 1;
            let tick = state.tick;
            // One insert under one lock: an existing entry's value, TTL
            // clock and LRU stamp are all replaced atomically — a reader
            // can never observe a refreshed value with a stale TTL.
            state.entries.insert(
                key.to_string(),
                Entry {
                    value,
                    stored_at: now,
                    ttl,
                    used_at: tick,
                },
            );
            while state.entries.len() > shard.capacity {
                let lru = state
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.used_at)
                    .map(|(k, _)| k.clone())
                    .expect("nonempty");
                state.entries.remove(&lru);
                state.stats.evictions += 1;
                evicted.push(lru);
            }
        }
        if self.telemetry.is_enabled() {
            for lru in evicted {
                let ctx = self.telemetry.tracer().new_trace();
                self.telemetry
                    .tracer()
                    .emit(&ctx, || EventKind::CacheEvict { key: lru.clone() });
                self.telemetry
                    .metrics()
                    .inc_counter("cache_evictions_total", &[CACHE_LABEL]);
            }
            self.publish_shard_gauge(idx);
        }
    }

    fn publish_shard_gauge(&self, idx: usize) {
        let len = self.shards[idx].state.lock().entries.len();
        let shard = idx.to_string();
        self.telemetry.metrics().set_gauge(
            "sdk_cache_shard_entries",
            &[CACHE_LABEL, ("shard", &shard)],
            len as f64,
        );
    }

    fn record_probe(&self, idx: usize, ctx: &SpanCtx, key: &str, hit: bool, expired: bool) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.tracer().emit(ctx, || {
            if hit {
                EventKind::CacheHit {
                    key: key.to_string(),
                }
            } else {
                EventKind::CacheMiss {
                    key: key.to_string(),
                }
            }
        });
        let metrics = self.telemetry.metrics();
        let result = if hit { "hit" } else { "miss" };
        metrics.inc_counter("cache_requests_total", &[CACHE_LABEL, ("result", result)]);
        // Tenanted probes additionally land in a per-tenant series; the
        // untenanted total above stays the all-traffic aggregate.
        if let Some(tenant) = self.telemetry.tracer().tenant_name(ctx.tenant) {
            metrics.inc_counter(
                "cache_requests_total",
                &[CACHE_LABEL, ("result", result), ("tenant", &tenant)],
            );
        }
        let shard = idx.to_string();
        metrics.inc_counter(
            "sdk_cache_shard_requests_total",
            &[CACHE_LABEL, ("shard", &shard), ("result", result)],
        );
        if expired {
            metrics.inc_counter("cache_expirations_total", &[CACHE_LABEL]);
        }
    }
}

impl ResponseCache {
    /// Creates a cache with the given capacity and default TTL. The shard
    /// count scales with capacity (one per 64 entries, up to 16).
    ///
    /// # Panics
    ///
    /// Panics if `default_ttl` is zero.
    pub fn new(clock: SimClock, capacity: usize, default_ttl: Duration) -> ResponseCache {
        ResponseCache::with_config(
            clock,
            CacheConfig::compat(capacity, default_ttl),
            Telemetry::disabled(),
        )
    }

    /// As [`ResponseCache::new`], with hit/miss/evict events and counters
    /// flowing into `telemetry`.
    ///
    /// # Panics
    ///
    /// Panics if `default_ttl` is zero.
    pub fn with_telemetry(
        clock: SimClock,
        capacity: usize,
        default_ttl: Duration,
        telemetry: Telemetry,
    ) -> ResponseCache {
        ResponseCache::with_config(clock, CacheConfig::compat(capacity, default_ttl), telemetry)
    }

    /// Full-control constructor: explicit shard count and
    /// stale-while-revalidate window.
    ///
    /// # Panics
    ///
    /// Panics if `config.default_ttl` is zero.
    pub fn with_config(
        clock: SimClock,
        config: CacheConfig,
        telemetry: Telemetry,
    ) -> ResponseCache {
        assert!(!config.default_ttl.is_zero(), "TTL must be positive");
        let shards = normalize_shards(config.shards, config.capacity);
        let base = config.capacity / shards;
        let rem = config.capacity % shards;
        let shards: Vec<Shard> = (0..shards)
            .map(|i| Shard {
                capacity: base + usize::from(i < rem),
                state: Mutex::new(ShardState::default()),
            })
            .collect();
        ResponseCache {
            inner: Arc::new(CacheInner {
                clock,
                capacity: config.capacity,
                default_ttl: config.default_ttl,
                stale_while_revalidate: config.stale_while_revalidate,
                telemetry,
                mask: shards.len() as u64 - 1,
                shards,
            }),
        }
    }

    /// The configured total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of lock-striped shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Live (possibly stale) entries per shard, for tests and telemetry.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.inner
            .shards
            .iter()
            .map(|s| s.state.lock().entries.len())
            .collect()
    }

    /// Current counters, summed over shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.inner.shards {
            total.add(&shard.state.lock().stats);
        }
        total
    }

    /// Number of live (possibly stale) entries.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.state.lock().entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a fresh entry; expired entries are removed and miss,
    /// regardless of any stale-while-revalidate window (use
    /// [`lookup`](ResponseCache::lookup) for stale serving).
    pub fn get(&self, key: &str) -> Option<Json> {
        let ctx = self.inner.telemetry.tracer().new_trace();
        self.get_traced(key, &ctx)
    }

    /// As [`ResponseCache::get`], emitting the hit/miss event under the
    /// caller's span so cache probes appear inside invocation traces.
    pub fn get_traced(&self, key: &str, ctx: &SpanCtx) -> Option<Json> {
        match self.probe(key, ctx, false) {
            Lookup::Fresh(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up an entry with stale-while-revalidate semantics: fresh
    /// entries hit; expired entries inside the configured stale window are
    /// returned as [`Lookup::Stale`] *without* being removed (so a single
    /// refresh can replace them in place); anything older is removed and
    /// misses.
    pub fn lookup(&self, key: &str) -> Lookup {
        let ctx = self.inner.telemetry.tracer().new_trace();
        self.lookup_traced(key, &ctx)
    }

    /// As [`ResponseCache::lookup`], under the caller's span.
    pub fn lookup_traced(&self, key: &str, ctx: &SpanCtx) -> Lookup {
        self.probe(key, ctx, true)
    }

    /// Shared probe: `allow_stale` selects the lookup/get semantics.
    fn probe(&self, key: &str, ctx: &SpanCtx, allow_stale: bool) -> Lookup {
        let inner = &self.inner;
        let idx = inner.shard_for(key);
        let now = inner.clock.now();
        let swr = if allow_stale {
            inner.stale_while_revalidate
        } else {
            None
        };
        let mut stale_served = false;
        let (found, expired) = {
            let mut state = inner.shards[idx].state.lock();
            state.tick += 1;
            let tick = state.tick;
            match state.entries.get_mut(key) {
                Some(entry) => {
                    let age = now.since(entry.stored_at);
                    if age < entry.ttl {
                        entry.used_at = tick;
                        let value = entry.value.clone();
                        state.stats.hits += 1;
                        (Lookup::Fresh(value), false)
                    } else if swr.is_some_and(|window| age < entry.ttl + window) {
                        // Keep the entry: it is the value stale readers are
                        // served while exactly one refresh flight runs.
                        entry.used_at = tick;
                        let value = entry.value.clone();
                        state.stats.hits += 1;
                        state.stats.stale_served += 1;
                        stale_served = true;
                        (Lookup::Stale(value), false)
                    } else {
                        state.entries.remove(key);
                        state.stats.expirations += 1;
                        state.stats.misses += 1;
                        (Lookup::Absent, true)
                    }
                }
                None => {
                    state.stats.misses += 1;
                    (Lookup::Absent, false)
                }
            }
        };
        let hit = !matches!(found, Lookup::Absent);
        inner.record_probe(idx, ctx, key, hit, expired);
        if stale_served && inner.telemetry.is_enabled() {
            inner
                .telemetry
                .metrics()
                .inc_counter("cache_stale_served_total", &[CACHE_LABEL]);
            inner
                .telemetry
                .tracer()
                .emit(ctx, || EventKind::CacheStaleServed {
                    key: key.to_string(),
                });
        }
        found
    }

    /// Read-only freshness check: returns a live entry's value without
    /// touching stats, LRU recency, or expired entries. Used by flight
    /// leaders to double-check whether a previous flight published the
    /// value between this caller's miss and its flight acquisition — the
    /// re-check is what makes "exactly one upstream call per key per
    /// refresh window" hold even when a caller is descheduled between
    /// lookup and join.
    pub fn peek_fresh(&self, key: &str) -> Option<Json> {
        let inner = &self.inner;
        let idx = inner.shard_for(key);
        let now = inner.clock.now();
        let state = inner.shards[idx].state.lock();
        state
            .entries
            .get(key)
            .and_then(|entry| (now.since(entry.stored_at) < entry.ttl).then(|| entry.value.clone()))
    }

    /// Stores a value under the default TTL. Storing over an existing key
    /// refreshes its TTL clock and LRU recency atomically.
    pub fn put(&self, key: impl Into<String>, value: Json) {
        self.inner
            .put_with_ttl(&key.into(), value, self.inner.default_ttl);
    }

    /// Stores a value with an explicit TTL.
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is zero.
    pub fn put_with_ttl(&self, key: impl Into<String>, value: Json, ttl: Duration) {
        self.inner.put_with_ttl(&key.into(), value, ttl);
    }

    /// Invalidates one key (consistency hook for writes-through): returns
    /// whether an entry was present.
    pub fn invalidate(&self, key: &str) -> bool {
        let idx = self.inner.shard_for(key);
        let removed = self.inner.shards[idx]
            .state
            .lock()
            .entries
            .remove(key)
            .is_some();
        if removed && self.inner.telemetry.is_enabled() {
            self.inner.publish_shard_gauge(idx);
        }
        removed
    }

    /// Drops every entry from every shard (in-flight fetches are
    /// unaffected and will repopulate on completion).
    pub fn clear(&self) {
        for (idx, shard) in self.inner.shards.iter().enumerate() {
            shard.state.lock().entries.clear();
            if self.inner.telemetry.is_enabled() {
                self.inner.publish_shard_gauge(idx);
            }
        }
    }

    /// Joins the single-flight for `key`: the first caller becomes the
    /// [`FlightJoin::Leader`] and must complete the returned guard with
    /// the upstream result; every concurrent caller becomes a
    /// [`FlightJoin::Follower`] holding a future that resolves when the
    /// leader publishes.
    pub fn join_flight(&self, key: &str) -> FlightJoin {
        let inner = &self.inner;
        let idx = inner.shard_for(key);
        let join = {
            let mut state = inner.shards[idx].state.lock();
            match state.flights.get(key).cloned() {
                Some(future) => {
                    state.stats.coalesced_waits += 1;
                    FlightJoin::Follower(future)
                }
                None => {
                    let future = ListenableFuture::new();
                    state.flights.insert(key.to_string(), future.clone());
                    FlightJoin::Leader(FlightGuard {
                        inner: inner.clone(),
                        key: key.to_string(),
                        shard: idx,
                        future,
                        done: false,
                    })
                }
            }
        };
        if let FlightJoin::Follower(_) = &join {
            if inner.telemetry.is_enabled() {
                inner
                    .telemetry
                    .metrics()
                    .inc_counter("sdk_coalesced_waiters_total", &[CACHE_LABEL]);
                let ctx = inner.telemetry.tracer().new_trace();
                inner
                    .telemetry
                    .tracer()
                    .emit(&ctx, || EventKind::CacheCoalesced {
                        key: key.to_string(),
                    });
            }
        }
        join
    }

    /// Read-through with single-flight coalescing: a fresh entry is
    /// returned immediately; a miss elects one leader to run `fetch`
    /// (storing the result and fanning it out — success or error — to
    /// every concurrent caller of the same key); with
    /// stale-while-revalidate configured, an expired-but-recent entry is
    /// served to followers while the leader refreshes inline, and a
    /// refresh *failure* falls back to the stale value.
    ///
    /// # Errors
    ///
    /// The leader's `fetch` error, shared verbatim with every coalesced
    /// waiter of that flight. Errors are never cached.
    pub fn get_or_fetch(
        &self,
        key: &str,
        fetch: impl FnOnce() -> FlightResult,
    ) -> Result<(Json, FetchSource), SdkError> {
        let ctx = self.inner.telemetry.tracer().new_trace();
        self.get_or_fetch_traced(key, &ctx, fetch)
    }

    /// As [`ResponseCache::get_or_fetch`], under the caller's span.
    pub fn get_or_fetch_traced(
        &self,
        key: &str,
        ctx: &SpanCtx,
        fetch: impl FnOnce() -> FlightResult,
    ) -> Result<(Json, FetchSource), SdkError> {
        match self.lookup_traced(key, ctx) {
            Lookup::Fresh(value) => Ok((value, FetchSource::Hit)),
            Lookup::Stale(stale) => match self.join_flight(key) {
                FlightJoin::Leader(guard) => match fetch() {
                    Ok(value) => {
                        guard.complete(Ok(value.clone()));
                        Ok((value, FetchSource::Fetched))
                    }
                    Err(e) => {
                        // The refresh failed; the stale value is still the
                        // best answer. Waiters see the error (they can
                        // re-lookup and be served stale themselves).
                        guard.complete(Err(e));
                        Ok((stale, FetchSource::Stale))
                    }
                },
                // A refresh is already in flight: serve stale immediately.
                FlightJoin::Follower(_) => Ok((stale, FetchSource::Stale)),
            },
            Lookup::Absent => match self.join_flight(key) {
                FlightJoin::Leader(guard) => {
                    // Double-check: a prior flight may have published the
                    // value between this caller's miss and its flight
                    // acquisition; fetching again would break the
                    // one-upstream-call-per-window guarantee.
                    if let Some(value) = self.peek_fresh(key) {
                        guard.complete_cached(value.clone());
                        return Ok((value, FetchSource::Hit));
                    }
                    match fetch() {
                        Ok(value) => {
                            guard.complete(Ok(value.clone()));
                            Ok((value, FetchSource::Fetched))
                        }
                        Err(e) => {
                            guard.complete(Err(e.clone()));
                            Err(e)
                        }
                    }
                }
                FlightJoin::Follower(future) => match (*future.wait()).clone() {
                    Ok(value) => Ok((value, FetchSource::Coalesced)),
                    Err(e) => Err(e),
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_json::json;
    use cogsdk_sim::SimEnv;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn cache(capacity: usize, ttl_secs: u64) -> (SimEnv, ResponseCache) {
        let env = SimEnv::with_seed(1);
        let c = ResponseCache::new(env.clock().clone(), capacity, Duration::from_secs(ttl_secs));
        (env, c)
    }

    fn sharded(capacity: usize, shards: usize, ttl_secs: u64) -> (SimEnv, ResponseCache) {
        let env = SimEnv::with_seed(1);
        let c = ResponseCache::with_config(
            env.clock().clone(),
            CacheConfig {
                capacity,
                default_ttl: Duration::from_secs(ttl_secs),
                shards,
                stale_while_revalidate: None,
            },
            Telemetry::disabled(),
        );
        (env, c)
    }

    #[test]
    fn put_get_round_trip() {
        let (_env, c) = cache(10, 60);
        c.put("a", json!({"v": 1}));
        assert_eq!(c.get("a"), Some(json!({"v": 1})));
        assert_eq!(c.get("missing"), None);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn entries_expire_by_ttl() {
        let (env, c) = cache(10, 10);
        c.put("a", json!(1));
        env.clock().advance(Duration::from_secs(9));
        assert!(c.get("a").is_some());
        env.clock().advance(Duration::from_secs(2));
        assert!(c.get("a").is_none());
        assert_eq!(c.stats().expirations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn per_entry_ttl_overrides_default() {
        let (env, c) = cache(10, 1000);
        c.put_with_ttl("short", json!(1), Duration::from_secs(1));
        c.put("long", json!(2));
        env.clock().advance(Duration::from_secs(2));
        assert!(c.get("short").is_none());
        assert!(c.get("long").is_some());
    }

    #[test]
    fn lru_eviction_under_capacity_pressure() {
        let (_env, c) = cache(2, 60);
        c.put("a", json!(1));
        c.put("b", json!(2));
        c.get("a"); // a becomes most recent
        c.put("c", json!(3)); // evicts b
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_same_key_updates_value() {
        let (_env, c) = cache(10, 60);
        c.put("a", json!(1));
        c.put("a", json!(2));
        assert_eq!(c.get("a"), Some(json!(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let (_env, c) = cache(10, 60);
        c.put("a", json!(1));
        c.put("b", json!(2));
        assert!(c.invalidate("a"));
        assert!(!c.invalidate("a"));
        assert!(c.get("a").is_none());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let (_env, c) = cache(0, 60);
        c.put("a", json!(1));
        assert!(c.get("a").is_none());
    }

    #[test]
    #[should_panic(expected = "TTL")]
    fn zero_ttl_rejected() {
        let (_env, c) = cache(1, 60);
        c.put_with_ttl("a", json!(1), Duration::ZERO);
    }

    #[test]
    fn telemetry_mirrors_stats() {
        let env = SimEnv::with_seed(2);
        let t = Telemetry::new();
        let c = ResponseCache::with_telemetry(
            env.clock().clone(),
            1,
            Duration::from_secs(60),
            t.clone(),
        );
        c.put("a", json!(1));
        assert!(c.get("a").is_some()); // hit
        assert!(c.get("b").is_none()); // miss
        c.put("b", json!(2)); // evicts a
        let hit = t.metrics().counter_value(
            "cache_requests_total",
            &[("cache", "response"), ("result", "hit")],
        );
        let miss = t.metrics().counter_value(
            "cache_requests_total",
            &[("cache", "response"), ("result", "miss")],
        );
        assert_eq!(hit, Some(c.stats().hits));
        assert_eq!(miss, Some(c.stats().misses));
        assert_eq!(
            t.metrics()
                .counter_value("cache_evictions_total", &[("cache", "response")]),
            Some(c.stats().evictions)
        );
        let names: Vec<&str> = t.tracer().events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(names, vec!["cache_hit", "cache_miss", "cache_evict"]);
        // Shard telemetry: one shard, one live entry.
        assert_eq!(
            t.metrics().gauge_value(
                "sdk_cache_shard_entries",
                &[("cache", "response"), ("shard", "0")]
            ),
            Some(1.0)
        );
    }

    #[test]
    fn refreshing_an_entry_resets_its_clock() {
        let (env, c) = cache(10, 10);
        c.put("a", json!(1));
        env.clock().advance(Duration::from_secs(8));
        c.put("a", json!(1)); // refresh
        env.clock().advance(Duration::from_secs(8));
        assert!(c.get("a").is_some(), "refreshed entry must survive");
    }

    #[test]
    fn put_over_live_entry_refreshes_ttl_and_recency() {
        // Regression: a put over a live key must atomically reset both the
        // TTL clock (survives past the original expiry) and the LRU stamp
        // (is no longer the eviction victim).
        let (env, c) = sharded(2, 1, 10);
        c.put("a", json!(1));
        c.put("b", json!(2));
        env.clock().advance(Duration::from_secs(8));
        c.put("a", json!(10)); // refresh value + TTL + recency together
        env.clock().advance(Duration::from_secs(8));
        // TTL refreshed: "a" is 8s old, not 16s.
        assert_eq!(c.get("a"), Some(json!(10)));
        // Recency refreshed: inserting "c" must evict "b" (the LRU), not "a".
        c.put("c", json!(3));
        assert!(c.get("a").is_some(), "refreshed entry must not be the LRU");
        assert!(c.get("b").is_none(), "b was least recently used");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn put_over_expired_entry_stores_a_fresh_value() {
        let (env, c) = cache(10, 10);
        c.put("a", json!("old"));
        env.clock().advance(Duration::from_secs(11)); // "a" is now expired
        c.put("a", json!("new")); // put over the dead body
        assert_eq!(c.get("a"), Some(json!("new")));
        env.clock().advance(Duration::from_secs(9));
        assert_eq!(
            c.get("a"),
            Some(json!("new")),
            "TTL restarts at the second put, not the first"
        );
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.stats().expirations,
            0,
            "overwritten expired entries never count as expirations"
        );
    }

    #[test]
    fn shards_split_capacity_exactly() {
        let (_env, c) = sharded(10, 4, 60);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.capacity(), 10);
        // 10 over 4 shards: 3 + 3 + 2 + 2.
        for i in 0..64 {
            c.put(format!("k{i}"), json!(i));
        }
        assert!(c.len() <= 10);
        let lens = c.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), c.len());
        assert_eq!(lens.len(), 4);
    }

    #[test]
    fn shard_count_is_clamped_to_capacity() {
        let (_env, tiny) = sharded(3, 16, 60);
        assert_eq!(tiny.shard_count(), 2, "pow2 ≤ capacity");
        let (_env, one) = sharded(1, 16, 60);
        assert_eq!(one.shard_count(), 1);
        let env = SimEnv::with_seed(1);
        let zero = ResponseCache::new(env.clock().clone(), 0, Duration::from_secs(1));
        assert_eq!(zero.shard_count(), 1);
    }

    #[test]
    fn single_flight_leader_fetches_once() {
        let (_env, c) = cache(10, 60);
        let calls = AtomicUsize::new(0);
        let (v, src) = c
            .get_or_fetch("k", || {
                calls.fetch_add(1, Ordering::SeqCst);
                Ok(json!(7))
            })
            .unwrap();
        assert_eq!(v, json!(7));
        assert_eq!(src, FetchSource::Fetched);
        let (v, src) = c.get_or_fetch("k", || unreachable!("must hit")).unwrap();
        assert_eq!(v, json!(7));
        assert_eq!(src, FetchSource::Hit);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn single_flight_error_fans_out_and_is_not_cached() {
        let (_env, c) = cache(10, 60);
        let err = c
            .get_or_fetch("k", || Err(SdkError::AllFailed("boom".into())))
            .unwrap_err();
        assert!(matches!(err, SdkError::AllFailed(_)));
        // The error was not cached: the next fetch runs.
        let (v, src) = c.get_or_fetch("k", || Ok(json!(1))).unwrap();
        assert_eq!((v, src), (json!(1), FetchSource::Fetched));
    }

    #[test]
    fn concurrent_misses_coalesce_to_one_fetch() {
        let (_env, c) = cache(64, 60);
        let calls = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                let calls = calls.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    let (v, _) = c
                        .get_or_fetch("hot", || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            // Widen the flight window so followers pile up.
                            std::thread::sleep(Duration::from_millis(30));
                            Ok(json!("value"))
                        })
                        .unwrap();
                    assert_eq!(v, json!("value"));
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one upstream call");
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 8, "every caller probed once");
    }

    #[test]
    fn abandoned_flight_fails_followers_instead_of_deadlocking() {
        let (_env, c) = cache(10, 60);
        let follower = {
            let FlightJoin::Leader(guard) = c.join_flight("k") else {
                panic!("first join must lead");
            };
            let FlightJoin::Follower(f) = c.join_flight("k") else {
                panic!("second join must follow");
            };
            drop(guard); // leader bails without completing
            f
        };
        let result = (*follower.wait()).clone();
        assert!(matches!(result, Err(SdkError::AllFailed(_))), "{result:?}");
        // The flight slot was cleaned up: a new join leads again.
        assert!(matches!(c.join_flight("k"), FlightJoin::Leader(_)));
    }

    #[test]
    fn stale_while_revalidate_serves_stale_and_refreshes_once() {
        let env = SimEnv::with_seed(3);
        let c = ResponseCache::with_config(
            env.clock().clone(),
            CacheConfig {
                capacity: 10,
                default_ttl: Duration::from_secs(10),
                shards: 1,
                stale_while_revalidate: Some(Duration::from_secs(30)),
            },
            Telemetry::disabled(),
        );
        c.put("k", json!("v1"));
        env.clock().advance(Duration::from_secs(15)); // expired, within SWR
        assert_eq!(c.lookup("k"), Lookup::Stale(json!("v1")));
        // A refresh in flight: followers are served stale without waiting.
        let FlightJoin::Leader(guard) = c.join_flight("k") else {
            panic!("must lead");
        };
        let (v, src) = c
            .get_or_fetch("k", || unreachable!("refresh already in flight"))
            .unwrap();
        assert_eq!((v, src), (json!("v1"), FetchSource::Stale));
        guard.complete(Ok(json!("v2")));
        assert_eq!(c.get("k"), Some(json!("v2")), "refresh replaced the entry");
        assert!(c.stats().stale_served >= 2);
        // Past the stale window the entry is gone entirely.
        env.clock().advance(Duration::from_secs(41));
        assert_eq!(c.lookup("k"), Lookup::Absent);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn stale_refresh_failure_falls_back_to_stale_value() {
        let env = SimEnv::with_seed(4);
        let c = ResponseCache::with_config(
            env.clock().clone(),
            CacheConfig {
                capacity: 10,
                default_ttl: Duration::from_secs(10),
                shards: 1,
                stale_while_revalidate: Some(Duration::from_secs(60)),
            },
            Telemetry::disabled(),
        );
        c.put("k", json!("v1"));
        env.clock().advance(Duration::from_secs(20));
        let (v, src) = c
            .get_or_fetch("k", || Err(SdkError::AllFailed("upstream down".into())))
            .unwrap();
        assert_eq!((v, src), (json!("v1"), FetchSource::Stale));
        // The stale entry survives for the next reader too.
        assert_eq!(c.lookup("k"), Lookup::Stale(json!("v1")));
    }

    #[test]
    fn coalescing_telemetry_counts_waiters_and_stale_serves() {
        let env = SimEnv::with_seed(5);
        let t = Telemetry::new();
        let c = ResponseCache::with_config(
            env.clock().clone(),
            CacheConfig {
                capacity: 10,
                default_ttl: Duration::from_secs(10),
                shards: 2,
                stale_while_revalidate: Some(Duration::from_secs(60)),
            },
            t.clone(),
        );
        let FlightJoin::Leader(guard) = c.join_flight("k") else {
            panic!("must lead");
        };
        let FlightJoin::Follower(_) = c.join_flight("k") else {
            panic!("must follow");
        };
        guard.complete(Ok(json!(1)));
        env.clock().advance(Duration::from_secs(15));
        assert!(matches!(c.lookup("k"), Lookup::Stale(_)));
        assert_eq!(
            t.metrics()
                .counter_value("sdk_coalesced_waiters_total", &[("cache", "response")]),
            Some(1)
        );
        assert_eq!(
            t.metrics()
                .counter_value("cache_stale_served_total", &[("cache", "response")]),
            Some(1)
        );
        assert_eq!(c.stats().coalesced_waits, 1);
        assert_eq!(c.stats().stale_served, 1);
        let names: Vec<&str> = t.tracer().events().iter().map(|e| e.kind.name()).collect();
        assert!(names.contains(&"cache_coalesced"), "{names:?}");
        assert!(names.contains(&"cache_stale_served"), "{names:?}");
    }
}
