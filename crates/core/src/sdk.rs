//! The `RichSdk` facade: every Figure-2 feature behind one handle.

use crate::cache::{CacheConfig, FetchSource, FlightGuard, FlightJoin, Lookup, ResponseCache};
use crate::future::ListenableFuture;
use crate::invoke::{
    invoke_failover_governed, invoke_with_backoff_governed, invoke_with_backoff_traced,
    outcome_kind, FailoverSuccess, InvocationPolicy, RedundantLeg, RedundantMode,
};
use crate::monitor::{duration_ms, ServiceMonitor};
use crate::nlu::NluSupport;
use crate::pool::ThreadPool;
use crate::rank::{rank_class, RankOptions, RankedService};
use crate::registry::ServiceRegistry;
use crate::resilience::{Admission, BreakerConfig, BreakerRegistry, Deadline, Governance};
use crate::SdkError;
use cogsdk_obs::{EventKind, SpanCtx, Telemetry};
use cogsdk_sim::clock::SimClock;
use cogsdk_sim::service::{Request, Response, ServiceError, SimService};
use cogsdk_sim::SimEnv;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// Opt-in resilience configuration for [`RichSdk::with_resilience`].
///
/// `breakers` enables a per-service [`BreakerRegistry`] so tripped
/// services are skipped without being called; `default_deadline` puts an
/// end-to-end budget on every invocation that does not supply its own.
#[derive(Debug, Clone)]
pub struct ResilienceOptions {
    /// Circuit-breaker configuration; `None` disables breakers.
    pub breakers: Option<BreakerConfig>,
    /// Budget applied to every invocation; `None` leaves calls unbounded.
    pub default_deadline: Option<Duration>,
}

impl Default for ResilienceOptions {
    fn default() -> ResilienceOptions {
        ResilienceOptions {
            breakers: Some(BreakerConfig::default()),
            default_deadline: None,
        }
    }
}

/// The rich SDK.
///
/// Construct once per application, register the services in play, then
/// invoke — synchronously, asynchronously, cached, by explicit name, or
/// by class with ranked selection and failover.
///
/// # Examples
///
/// ```
/// use cogsdk_core::RichSdk;
/// use cogsdk_core::rank::RankOptions;
/// use cogsdk_sim::{SimEnv, SimService, Request};
/// use cogsdk_sim::latency::LatencyModel;
/// use cogsdk_json::json;
///
/// let env = SimEnv::with_seed(1);
/// let sdk = RichSdk::new(&env);
/// sdk.register(SimService::builder("kv-a", "storage")
///     .latency(LatencyModel::constant_ms(5.0)).build(&env));
/// sdk.register(SimService::builder("kv-b", "storage")
///     .latency(LatencyModel::constant_ms(50.0)).build(&env));
///
/// // Select the best storage service automatically.
/// let ok = sdk.invoke_class("storage", &Request::new("op", json!({"k": 1})),
///                           &RankOptions::default()).unwrap();
/// assert_eq!(ok.service, "kv-a");
/// ```
pub struct RichSdk {
    registry: Arc<ServiceRegistry>,
    monitor: Arc<ServiceMonitor>,
    cache: Arc<ResponseCache>,
    pool: Arc<ThreadPool>,
    policy: RwLock<InvocationPolicy>,
    nlu: NluSupport,
    telemetry: Telemetry,
    clock: SimClock,
    breakers: Option<Arc<BreakerRegistry>>,
    default_deadline: Option<Duration>,
}

impl std::fmt::Debug for RichSdk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RichSdk")
            .field("services", &self.registry.names())
            .finish_non_exhaustive()
    }
}

/// Default response-cache capacity (entries).
const DEFAULT_CACHE_CAPACITY: usize = 4_096;
/// Default response-cache TTL.
const DEFAULT_CACHE_TTL: Duration = Duration::from_secs(300);
/// Default worker-pool size (§2.1: "thread pools of limited size").
const DEFAULT_POOL_SIZE: usize = 8;

impl RichSdk {
    /// Creates an SDK bound to a simulation environment with default
    /// cache, pool and policy. Telemetry is disabled (the no-op tracer
    /// costs one branch per probe).
    pub fn new(env: &SimEnv) -> RichSdk {
        RichSdk::with_config(
            env,
            DEFAULT_CACHE_CAPACITY,
            DEFAULT_CACHE_TTL,
            DEFAULT_POOL_SIZE,
        )
    }

    /// As [`RichSdk::new`], with every layer (invocations, cache, pool,
    /// monitor ratings) emitting trace events and metrics into
    /// `telemetry`.
    pub fn with_telemetry(env: &SimEnv, telemetry: Telemetry) -> RichSdk {
        RichSdk::with_telemetry_config(
            env,
            DEFAULT_CACHE_CAPACITY,
            DEFAULT_CACHE_TTL,
            DEFAULT_POOL_SIZE,
            telemetry,
        )
    }

    /// Creates an SDK with explicit cache capacity/TTL and pool size.
    ///
    /// # Panics
    ///
    /// Panics if `cache_ttl` is zero or `pool_size` is zero.
    pub fn with_config(
        env: &SimEnv,
        cache_capacity: usize,
        cache_ttl: Duration,
        pool_size: usize,
    ) -> RichSdk {
        RichSdk::with_telemetry_config(
            env,
            cache_capacity,
            cache_ttl,
            pool_size,
            Telemetry::disabled(),
        )
    }

    /// Full-control constructor: explicit cache/pool configuration plus a
    /// telemetry sink threaded through the cache, pool and every
    /// invocation path.
    ///
    /// # Panics
    ///
    /// Panics if `cache_ttl` is zero or `pool_size` is zero.
    pub fn with_telemetry_config(
        env: &SimEnv,
        cache_capacity: usize,
        cache_ttl: Duration,
        pool_size: usize,
        telemetry: Telemetry,
    ) -> RichSdk {
        let cache = Arc::new(ResponseCache::with_telemetry(
            env.clock().clone(),
            cache_capacity,
            cache_ttl,
            telemetry.clone(),
        ));
        RichSdk::assemble(env, cache, pool_size, telemetry)
    }

    /// As [`RichSdk::with_telemetry_config`], with full cache control:
    /// explicit shard count and an optional stale-while-revalidate window
    /// (expired-but-recent entries are served while one background
    /// refresh runs on the worker pool).
    ///
    /// # Panics
    ///
    /// Panics if `cache.default_ttl` is zero or `pool_size` is zero.
    pub fn with_cache_config(
        env: &SimEnv,
        cache: CacheConfig,
        pool_size: usize,
        telemetry: Telemetry,
    ) -> RichSdk {
        let cache = Arc::new(ResponseCache::with_config(
            env.clock().clone(),
            cache,
            telemetry.clone(),
        ));
        RichSdk::assemble(env, cache, pool_size, telemetry)
    }

    fn assemble(
        env: &SimEnv,
        cache: Arc<ResponseCache>,
        pool_size: usize,
        telemetry: Telemetry,
    ) -> RichSdk {
        let monitor = Arc::new(ServiceMonitor::new());
        let pool = Arc::new(ThreadPool::with_telemetry(pool_size, telemetry.clone()));
        // Stamp trace events with virtual time: SLO windows and the
        // profiler then reproduce bit-identically under a seeded clock.
        let clock = env.clock().clone();
        telemetry
            .tracer()
            .set_time_source(Arc::new(move || clock.now().as_micros() as f64 / 1e3));
        RichSdk {
            registry: Arc::new(ServiceRegistry::new()),
            nlu: NluSupport::with_cache(monitor.clone(), pool.clone(), cache.clone())
                .with_telemetry(telemetry.clone()),
            cache,
            monitor,
            pool,
            policy: RwLock::new(InvocationPolicy::default()),
            telemetry,
            clock: env.clock().clone(),
            breakers: None,
            default_deadline: None,
        }
    }

    /// As [`RichSdk::with_telemetry`], with the resilience layer enabled:
    /// per-service circuit breakers and/or a default end-to-end deadline
    /// budget wrap every invocation path.
    ///
    /// # Panics
    ///
    /// Panics if `options.breakers` carries an invalid
    /// [`BreakerConfig`].
    pub fn with_resilience(
        env: &SimEnv,
        telemetry: Telemetry,
        options: ResilienceOptions,
    ) -> RichSdk {
        let mut sdk = RichSdk::with_telemetry_config(
            env,
            DEFAULT_CACHE_CAPACITY,
            DEFAULT_CACHE_TTL,
            DEFAULT_POOL_SIZE,
            telemetry.clone(),
        );
        sdk.breakers = options
            .breakers
            .map(|cfg| Arc::new(BreakerRegistry::new(env.clock().clone(), telemetry, cfg)));
        sdk.default_deadline = options.default_deadline;
        sdk
    }

    /// The circuit-breaker registry, when resilience is enabled.
    pub fn breakers(&self) -> Option<&Arc<BreakerRegistry>> {
        self.breakers.as_ref()
    }

    /// Governance for one invocation: the SDK's breakers plus a deadline
    /// derived *now* from the default budget (each invocation gets a
    /// fresh budget, not a shared absolute instant).
    fn governance(&self) -> Governance {
        let deadline = match self.default_deadline {
            Some(budget) => Deadline::within(&self.clock, budget),
            None => Deadline::NONE,
        };
        Governance::new(self.breakers.clone(), deadline)
    }

    /// Registers a service.
    pub fn register(&self, service: Arc<SimService>) {
        self.registry.register(service);
    }

    /// Replaces the retry/failover policy.
    pub fn set_policy(&self, policy: InvocationPolicy) {
        *self.policy.write() = policy;
    }

    /// The service registry.
    pub fn registry(&self) -> &Arc<ServiceRegistry> {
        &self.registry
    }

    /// The monitor collecting per-service data.
    pub fn monitor(&self) -> &Arc<ServiceMonitor> {
        &self.monitor
    }

    /// The response cache.
    pub fn cache(&self) -> &Arc<ResponseCache> {
        &self.cache
    }

    /// The worker pool.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// The NLU support layer (§2.2).
    pub fn nlu(&self) -> &NluSupport {
        &self.nlu
    }

    /// The telemetry sink this SDK emits into (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Records a user quality rating for a service.
    ///
    /// # Errors
    ///
    /// [`SdkError::InvalidRating`] if `rating` is outside `[0, 1]`; the
    /// rating is not recorded.
    pub fn rate_quality(&self, service: &str, rating: f64) -> Result<(), SdkError> {
        self.monitor.rate_quality(service, rating)
    }

    fn service(&self, name: &str) -> Result<Arc<SimService>, SdkError> {
        self.registry
            .get(name)
            .ok_or_else(|| SdkError::UnknownService(name.to_string()))
    }

    /// Invokes a named service synchronously with the configured retry
    /// policy.
    ///
    /// # Errors
    ///
    /// [`SdkError::UnknownService`], [`SdkError::Rejected`], or
    /// [`SdkError::AllFailed`] when retries are exhausted.
    pub fn invoke(&self, name: &str, request: &Request) -> Result<Response, SdkError> {
        let ctx = self.telemetry.tracer().new_trace();
        self.invoke_in(name, request, &ctx)
    }

    /// As [`invoke`](RichSdk::invoke), inside a caller-provided span
    /// (the gateway owns the trace so its tenant and its tail-sampling
    /// verdict cover the whole request).
    ///
    /// # Errors
    ///
    /// As for [`invoke`](RichSdk::invoke).
    pub fn invoke_in(
        &self,
        name: &str,
        request: &Request,
        ctx: &SpanCtx,
    ) -> Result<Response, SdkError> {
        let service = self.service(name)?;
        self.invoke_traced(&service, request, ctx)
    }

    /// Shared single-service invocation: wraps the retry loop in an
    /// `invoke_start`/`invoke_end` span pair under `ctx`.
    fn invoke_traced(
        &self,
        service: &Arc<SimService>,
        request: &Request,
        ctx: &SpanCtx,
    ) -> Result<Response, SdkError> {
        let name = service.name();
        self.telemetry
            .tracer()
            .emit(ctx, || EventKind::InvokeStart {
                class: service.class().to_string(),
                operation: request.operation.clone(),
            });
        let gov = self.governance();
        if let Some(breakers) = &gov.breakers {
            if let Admission::Rejected { retry_after } = breakers.admit(name, ctx) {
                self.telemetry.tracer().emit(ctx, || EventKind::InvokeEnd {
                    service: name.to_string(),
                    outcome: "circuit_open",
                    latency_ms: 0.0,
                });
                return Err(SdkError::CircuitOpen(format!(
                    "{name}: retry in {:.0}ms",
                    retry_after.as_secs_f64() * 1000.0
                )));
            }
        }
        let (retries, backoff) = {
            let policy = self.policy.read();
            (policy.retries_for(name), policy.backoff)
        };
        let (outcome, _) = invoke_with_backoff_governed(
            service,
            request,
            retries,
            backoff,
            &self.monitor,
            &self.telemetry,
            ctx,
            &gov,
        );
        self.telemetry.tracer().emit(ctx, || EventKind::InvokeEnd {
            service: name.to_string(),
            outcome: outcome_kind(&outcome.result),
            latency_ms: duration_ms(outcome.latency),
        });
        match outcome.result {
            Ok(r) => Ok(r),
            Err(ServiceError::BadRequest(m)) => Err(SdkError::Rejected(m)),
            Err(e) => Err(SdkError::AllFailed(format!("{name}: {e}"))),
        }
    }

    /// Invokes with read-through caching: a fresh cached response for the
    /// same request is returned without a service call (§2). Returns the
    /// response and whether it was served from cache (any source other
    /// than a direct upstream fetch counts as cached).
    ///
    /// Only use for idempotent read operations — the paper is explicit
    /// that storage-style operations must bypass the cache.
    ///
    /// # Errors
    ///
    /// As for [`invoke`](RichSdk::invoke).
    pub fn invoke_cached(
        &self,
        name: &str,
        request: &Request,
    ) -> Result<(Response, bool), SdkError> {
        self.invoke_cached_outcome(name, request)
            .map(|(response, source)| (response, source.served_locally()))
    }

    /// As [`invoke_cached`](RichSdk::invoke_cached), reporting *how* the
    /// response was obtained:
    ///
    /// * [`FetchSource::Hit`] — a live cache entry, no service call;
    /// * [`FetchSource::Coalesced`] — this caller joined another caller's
    ///   in-flight invocation for the same key and waited for its result
    ///   (single-flight: K concurrent misses cost one upstream call);
    /// * [`FetchSource::Stale`] — an expired-but-recent entry was served
    ///   while one background refresh runs on the worker pool under the
    ///   SDK's breaker/deadline governance (requires a
    ///   [`CacheConfig::stale_while_revalidate`] window, see
    ///   [`RichSdk::with_cache_config`]);
    /// * [`FetchSource::Fetched`] — this caller made the upstream call.
    ///
    /// # Errors
    ///
    /// As for [`invoke`](RichSdk::invoke); a coalesced caller receives
    /// the leader's error verbatim.
    pub fn invoke_cached_outcome(
        &self,
        name: &str,
        request: &Request,
    ) -> Result<(Response, FetchSource), SdkError> {
        let ctx = self.telemetry.tracer().new_trace();
        self.invoke_cached_outcome_in(name, request, &ctx)
    }

    /// As [`invoke_cached_outcome`](RichSdk::invoke_cached_outcome),
    /// inside a caller-provided span.
    ///
    /// # Errors
    ///
    /// As for [`invoke`](RichSdk::invoke); a coalesced caller receives
    /// the leader's error verbatim.
    pub fn invoke_cached_outcome_in(
        &self,
        name: &str,
        request: &Request,
        ctx: &SpanCtx,
    ) -> Result<(Response, FetchSource), SdkError> {
        let key = format!("{name}::{}", request.cache_key());
        match self.cache.lookup_traced(&key, ctx) {
            Lookup::Fresh(hit) => Ok((Response::new(hit), FetchSource::Hit)),
            Lookup::Stale(stale) => {
                // Serve the stale value immediately; at most one refresh
                // per key runs in the background (followers skip it).
                if let FlightJoin::Leader(guard) = self.cache.join_flight(&key) {
                    self.spawn_refresh(name, request.clone(), guard, ctx);
                }
                Ok((Response::new(stale), FetchSource::Stale))
            }
            Lookup::Absent => match self.cache.join_flight(&key) {
                FlightJoin::Leader(guard) => {
                    // Double-check after winning leadership: a previous
                    // flight may have published between our miss and now.
                    if let Some(value) = self.cache.peek_fresh(&key) {
                        guard.complete_cached(value.clone());
                        return Ok((Response::new(value), FetchSource::Hit));
                    }
                    let service = match self.service(name) {
                        Ok(s) => s,
                        Err(e) => {
                            guard.complete(Err(e.clone()));
                            return Err(e);
                        }
                    };
                    match self.invoke_traced(&service, request, ctx) {
                        Ok(response) => {
                            guard.complete(Ok(response.payload.clone()));
                            Ok((response, FetchSource::Fetched))
                        }
                        Err(e) => {
                            guard.complete(Err(e.clone()));
                            Err(e)
                        }
                    }
                }
                FlightJoin::Follower(future) => match (*future.wait()).clone() {
                    Ok(value) => Ok((Response::new(value), FetchSource::Coalesced)),
                    Err(e) => Err(e),
                },
            },
        }
    }

    /// Runs one stale-entry refresh on the worker pool, publishing the
    /// outcome through `guard`. The refresh is governed exactly like a
    /// foreground invocation: breaker admission first, then the retry
    /// loop under a fresh deadline budget.
    fn spawn_refresh(&self, name: &str, request: Request, guard: FlightGuard, parent: &SpanCtx) {
        let registry = self.registry.clone();
        let monitor = self.monitor.clone();
        let telemetry = self.telemetry.clone();
        let breakers = self.breakers.clone();
        let clock = self.clock.clone();
        let default_deadline = self.default_deadline;
        let (retries, backoff) = {
            let policy = self.policy.read();
            (policy.retries_for(name), policy.backoff)
        };
        let name = name.to_string();
        let parent = *parent;
        self.pool.submit_in(Some(&parent), move || {
            let Some(service) = registry.get(&name) else {
                guard.complete(Err(SdkError::UnknownService(name)));
                return;
            };
            // The refresh stays in the requester's trace (and tenant).
            let ctx = telemetry.tracer().child(&parent);
            let deadline = match default_deadline {
                Some(budget) => Deadline::within(&clock, budget),
                None => Deadline::NONE,
            };
            let gov = Governance::new(breakers, deadline);
            if let Some(b) = &gov.breakers {
                if let Admission::Rejected { retry_after } = b.admit(&name, &ctx) {
                    guard.complete(Err(SdkError::CircuitOpen(format!(
                        "{name}: retry in {:.0}ms",
                        retry_after.as_secs_f64() * 1000.0
                    ))));
                    return;
                }
            }
            let (outcome, _) = invoke_with_backoff_governed(
                &service, &request, retries, backoff, &monitor, &telemetry, &ctx, &gov,
            );
            guard.complete(match outcome.result {
                Ok(r) => Ok(r.payload),
                Err(ServiceError::BadRequest(m)) => Err(SdkError::Rejected(m)),
                Err(e) => Err(SdkError::AllFailed(format!("{name}: {e}"))),
            });
        });
    }

    /// Invokes a *mutating* operation: bypasses the cache entirely (§2:
    /// "if a remote service is performing a storage operation in a remote
    /// server, then the remote service call needs to take place") and
    /// invalidates any cached responses for the given read requests, so
    /// subsequent cached reads cannot observe the pre-write value (§2's
    /// "consistency issues may arise in which a cached value is
    /// obsolete").
    ///
    /// # Errors
    ///
    /// As for [`invoke`](RichSdk::invoke).
    pub fn invoke_write(
        &self,
        name: &str,
        request: &Request,
        invalidates: &[&Request],
    ) -> Result<Response, SdkError> {
        let response = self.invoke(name, request)?;
        for read in invalidates {
            self.cache
                .invalidate(&format!("{name}::{}", read.cache_key()));
        }
        Ok(response)
    }

    /// Invokes asynchronously on the worker pool, returning a
    /// [`ListenableFuture`] (§2's asynchronous invocation).
    pub fn invoke_async(
        &self,
        name: &str,
        request: Request,
    ) -> ListenableFuture<Result<Response, SdkError>> {
        let registry = self.registry.clone();
        let monitor = self.monitor.clone();
        let telemetry = self.telemetry.clone();
        let (retries, backoff) = {
            let policy = self.policy.read();
            (policy.retries_for(name), policy.backoff)
        };
        let name = name.to_string();
        self.pool.submit(move || {
            let Some(service) = registry.get(&name) else {
                return Err(SdkError::UnknownService(name));
            };
            let ctx = telemetry.tracer().new_trace();
            telemetry.tracer().emit(&ctx, || EventKind::InvokeStart {
                class: service.class().to_string(),
                operation: request.operation.clone(),
            });
            let (outcome, _) = invoke_with_backoff_traced(
                &service, &request, retries, backoff, &monitor, &telemetry, &ctx,
            );
            telemetry.tracer().emit(&ctx, || EventKind::InvokeEnd {
                service: name.clone(),
                outcome: outcome_kind(&outcome.result),
                latency_ms: duration_ms(outcome.latency),
            });
            match outcome.result {
                Ok(r) => Ok(r),
                Err(ServiceError::BadRequest(m)) => Err(SdkError::Rejected(m)),
                Err(e) => Err(SdkError::AllFailed(format!("{name}: {e}"))),
            }
        })
    }

    /// Ranks the services of a class (§2's Eq. 1 / Eq. 2 machinery).
    pub fn rank(&self, class: &str, options: &RankOptions) -> Vec<RankedService> {
        rank_class(&self.registry, &self.monitor, class, options)
    }

    /// Selects from a class by rank and invokes with failover down the
    /// ranking (§2.1).
    ///
    /// # Errors
    ///
    /// [`SdkError::EmptyClass`] if no services are registered for
    /// `class`; otherwise as for failover.
    pub fn invoke_class(
        &self,
        class: &str,
        request: &Request,
        options: &RankOptions,
    ) -> Result<FailoverSuccess, SdkError> {
        let ctx = self.telemetry.tracer().new_trace();
        self.invoke_class_governed(class, request, options, self.governance(), &ctx)
    }

    /// As [`invoke_class`](RichSdk::invoke_class), inside a
    /// caller-provided span.
    ///
    /// # Errors
    ///
    /// As for [`invoke_class`](RichSdk::invoke_class).
    pub fn invoke_class_in(
        &self,
        class: &str,
        request: &Request,
        options: &RankOptions,
        ctx: &SpanCtx,
    ) -> Result<FailoverSuccess, SdkError> {
        self.invoke_class_governed(class, request, options, self.governance(), ctx)
    }

    /// As [`RichSdk::invoke_class`], bounded by an end-to-end budget:
    /// no failover leg starts (and no backoff sleep is taken) once
    /// `budget` has elapsed, regardless of how many candidates remain.
    ///
    /// # Errors
    ///
    /// As for [`invoke_class`](RichSdk::invoke_class), plus
    /// [`SdkError::DeadlineExceeded`] when the budget runs out.
    pub fn invoke_class_within(
        &self,
        class: &str,
        request: &Request,
        options: &RankOptions,
        budget: Duration,
    ) -> Result<FailoverSuccess, SdkError> {
        let gov = self
            .governance()
            .deadline(Deadline::within(&self.clock, budget));
        let ctx = self.telemetry.tracer().new_trace();
        self.invoke_class_governed(class, request, options, gov, &ctx)
    }

    fn invoke_class_governed(
        &self,
        class: &str,
        request: &Request,
        options: &RankOptions,
        gov: Governance,
        ctx: &SpanCtx,
    ) -> Result<FailoverSuccess, SdkError> {
        let ranked = self.rank(class, options);
        if ranked.is_empty() {
            return Err(SdkError::EmptyClass(class.to_string()));
        }
        self.telemetry
            .tracer()
            .emit(ctx, || EventKind::InvokeStart {
                class: class.to_string(),
                operation: request.operation.clone(),
            });
        // Latency predictions the ranking was based on, so the winner's
        // observed latency can be compared against what was promised.
        let predictions: Vec<(String, f64)> = ranked
            .iter()
            .map(|r| (r.service.name().to_string(), r.inputs.response_ms))
            .collect();
        let candidates: Vec<Arc<SimService>> = ranked.into_iter().map(|r| r.service).collect();
        let policy = self.policy.read().clone();
        let result = invoke_failover_governed(
            &candidates,
            request,
            &policy,
            &self.monitor,
            &self.telemetry,
            ctx,
            &gov,
        );
        if self.telemetry.is_enabled() {
            match &result {
                Ok(ok) => {
                    if let Some((_, predicted)) =
                        predictions.iter().find(|(name, _)| *name == ok.service)
                    {
                        let predicted = *predicted;
                        self.telemetry
                            .tracer()
                            .emit(ctx, || EventKind::PredictionIssued {
                                service: ok.service.clone(),
                                predicted_ms: predicted,
                                observed_ms: ok.latency_ms,
                            });
                        self.telemetry.metrics().observe(
                            "sdk_prediction_error_ms",
                            &[("service", &ok.service)],
                            (ok.latency_ms - predicted).abs(),
                        );
                    }
                    self.telemetry.tracer().emit(ctx, || EventKind::InvokeEnd {
                        service: ok.service.clone(),
                        outcome: "ok",
                        latency_ms: ok.latency_ms,
                    });
                }
                Err(e) => {
                    let kind = e.kind();
                    self.telemetry.tracer().emit(ctx, || EventKind::InvokeEnd {
                        service: class.to_string(),
                        outcome: kind,
                        latency_ms: 0.0,
                    });
                }
            }
        }
        result
    }

    /// Invokes the top `k` ranked services of a class *in parallel* on
    /// the worker pool and applies the redundancy mode (§2.1's
    /// multi-service invocation).
    ///
    /// # Errors
    ///
    /// [`SdkError::EmptyClass`] when the class is empty, or
    /// [`SdkError::AllFailed`] when the mode's success requirement is not
    /// met.
    pub fn invoke_redundant_parallel(
        &self,
        class: &str,
        request: &Request,
        options: &RankOptions,
        k: usize,
        mode: RedundantMode,
    ) -> Result<Vec<RedundantLeg>, SdkError> {
        let ranked = self.rank(class, options);
        if ranked.is_empty() {
            return Err(SdkError::EmptyClass(class.to_string()));
        }
        let candidates: Vec<Arc<SimService>> = ranked
            .into_iter()
            .take(k.max(1))
            .map(|r| r.service)
            .collect();
        let monitor = self.monitor.clone();
        let policy = self.policy.read().clone();
        let request = request.clone();
        let telemetry = self.telemetry.clone();
        let ctx = telemetry.tracer().new_trace();
        telemetry.tracer().emit(&ctx, || EventKind::InvokeStart {
            class: class.to_string(),
            operation: request.operation.clone(),
        });
        let gov = self.governance();
        let legs: Vec<RedundantLeg> = self.pool.map_all(candidates, move |service| {
            let leg_ctx = telemetry.tracer().child(&ctx);
            // A tripped breaker fails the leg without calling the service,
            // so redundant fan-out never wastes pool slots on known-bad
            // replicas.
            if let Some(breakers) = &gov.breakers {
                if !breakers.admit(service.name(), &leg_ctx).is_allowed() {
                    return RedundantLeg {
                        service: service.name().to_string(),
                        result: Err(ServiceError::Unavailable),
                    };
                }
            }
            let retries = policy.retries_for(service.name());
            let (outcome, _) = invoke_with_backoff_governed(
                &service,
                &request,
                retries,
                policy.backoff,
                &monitor,
                &telemetry,
                &leg_ctx,
                &gov,
            );
            RedundantLeg {
                service: service.name().to_string(),
                result: outcome.result,
            }
        });
        if self.telemetry.is_enabled() {
            let winner = legs.iter().position(|l| l.result.is_ok());
            for (i, leg) in legs.iter().enumerate() {
                let won = winner == Some(i);
                self.telemetry.tracer().emit(&ctx, || {
                    if won {
                        EventKind::RedundantLegWon {
                            service: leg.service.clone(),
                        }
                    } else {
                        EventKind::RedundantLegLost {
                            service: leg.service.clone(),
                            outcome: outcome_kind(&leg.result),
                        }
                    }
                });
                self.telemetry.metrics().inc_counter(
                    "sdk_redundant_legs_total",
                    &[
                        ("service", &leg.service),
                        ("result", if won { "won" } else { "lost" }),
                    ],
                );
            }
        }
        let successes = legs.iter().filter(|l| l.result.is_ok()).count();
        match mode {
            RedundantMode::All => Ok(legs),
            RedundantMode::FirstSuccess if successes > 0 => Ok(legs),
            RedundantMode::Quorum(need) if successes >= need => Ok(legs),
            RedundantMode::FirstSuccess => Err(SdkError::AllFailed("no service responded".into())),
            RedundantMode::Quorum(need) => Err(SdkError::AllFailed(format!(
                "quorum not met: {successes}/{need}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_json::json;
    use cogsdk_sim::failure::FailurePlan;
    use cogsdk_sim::latency::LatencyModel;

    fn setup() -> (SimEnv, RichSdk) {
        let env = SimEnv::with_seed(21);
        let sdk = RichSdk::new(&env);
        sdk.register(
            SimService::builder("fast", "storage")
                .latency(LatencyModel::constant_ms(5.0))
                .build(&env),
        );
        sdk.register(
            SimService::builder("slow", "storage")
                .latency(LatencyModel::constant_ms(50.0))
                .build(&env),
        );
        (env, sdk)
    }

    fn req() -> Request {
        Request::new("get", json!({"key": "k1"}))
    }

    #[test]
    fn invoke_by_name() {
        let (_env, sdk) = setup();
        let resp = sdk.invoke("fast", &req()).unwrap();
        assert_eq!(resp.payload, json!({"key": "k1"}));
        assert!(matches!(
            sdk.invoke("nope", &req()),
            Err(SdkError::UnknownService(_))
        ));
    }

    #[test]
    fn invoke_cached_avoids_second_call() {
        let (env, sdk) = setup();
        let t0 = env.clock().now();
        let (_, hit1) = sdk.invoke_cached("slow", &req()).unwrap();
        let t1 = env.clock().now();
        let (resp2, hit2) = sdk.invoke_cached("slow", &req()).unwrap();
        let t2 = env.clock().now();
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(resp2.payload, json!({"key": "k1"}));
        assert_eq!(t1.since(t0), Duration::from_millis(50));
        assert_eq!(t2.since(t1), Duration::ZERO, "cache hit costs no latency");
        let (fast_calls, _) = sdk.registry().get("slow").unwrap().stats();
        assert_eq!(fast_calls, 1);
    }

    #[test]
    fn cache_key_includes_service_name() {
        let (_env, sdk) = setup();
        sdk.invoke_cached("fast", &req()).unwrap();
        let (_, hit) = sdk.invoke_cached("slow", &req()).unwrap();
        assert!(!hit, "different service, different cache slot");
    }

    #[test]
    fn invoke_async_completes_with_listener() {
        let (_env, sdk) = setup();
        let future = sdk.invoke_async("fast", req());
        let result = future.wait();
        assert!(result.is_ok());
        // Listener on an already-complete future fires immediately.
        let fired = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let fired2 = fired.clone();
        future.add_listener(move |r| {
            assert!(r.is_ok());
            fired2.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        assert!(fired.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn invoke_class_selects_fastest_after_warmup() {
        let (_env, sdk) = setup();
        // Warm the monitor so prediction has data.
        for _ in 0..3 {
            sdk.invoke("fast", &req()).unwrap();
            sdk.invoke("slow", &req()).unwrap();
        }
        let ok = sdk
            .invoke_class("storage", &req(), &RankOptions::default())
            .unwrap();
        assert_eq!(ok.service, "fast");
        assert!(matches!(
            sdk.invoke_class("nope", &req(), &RankOptions::default()),
            Err(SdkError::EmptyClass(_))
        ));
    }

    #[test]
    fn invoke_class_fails_over_when_best_is_down() {
        let env = SimEnv::with_seed(33);
        let sdk = RichSdk::new(&env);
        // Advertised quality makes the dead service rank first (no
        // history exists yet, so ranking trusts metadata).
        sdk.register(
            SimService::builder("best-but-down", "s")
                .latency(LatencyModel::constant_ms(1.0))
                .failures(FailurePlan::flaky(1.0))
                .quality(0.99)
                .build(&env),
        );
        sdk.register(
            SimService::builder("backup", "s")
                .latency(LatencyModel::constant_ms(30.0))
                .quality(0.1)
                .build(&env),
        );
        let ok = sdk
            .invoke_class("s", &req(), &RankOptions::default())
            .unwrap();
        assert_eq!(ok.service, "backup");
        assert_eq!(ok.services_tried, 2);
    }

    #[test]
    fn redundant_parallel_all_returns_k_legs() {
        let (_env, sdk) = setup();
        let legs = sdk
            .invoke_redundant_parallel(
                "storage",
                &req(),
                &RankOptions::default(),
                2,
                RedundantMode::All,
            )
            .unwrap();
        assert_eq!(legs.len(), 2);
        assert!(legs.iter().all(|l| l.result.is_ok()));
    }

    #[test]
    fn redundant_parallel_quorum_failure() {
        let env = SimEnv::with_seed(34);
        let sdk = RichSdk::new(&env);
        for name in ["d1", "d2"] {
            sdk.register(
                SimService::builder(name, "s")
                    .failures(FailurePlan::flaky(1.0))
                    .build(&env),
            );
        }
        let err = sdk
            .invoke_redundant_parallel(
                "s",
                &req(),
                &RankOptions::default(),
                2,
                RedundantMode::Quorum(1),
            )
            .unwrap_err();
        assert!(matches!(err, SdkError::AllFailed(_)));
    }

    #[test]
    fn invoke_write_invalidates_stale_cache_entries() {
        let (_env, sdk) = setup();
        let read = Request::new("get", json!({"key": "k1"}));
        // Prime the cache.
        sdk.invoke_cached("fast", &read).unwrap();
        let (_, hit) = sdk.invoke_cached("fast", &read).unwrap();
        assert!(hit);
        // A write through the SDK invalidates the read's cache slot.
        let write = Request::new("put", json!({"key": "k1", "value": 2}));
        sdk.invoke_write("fast", &write, &[&read]).unwrap();
        let (_, hit) = sdk.invoke_cached("fast", &read).unwrap();
        assert!(!hit, "stale entry must be gone after the write");
    }

    #[test]
    fn consensus_quality_rating_orders_vendor_fleet() {
        use cogsdk_text::analysis::Analyzer;
        use cogsdk_text::services::standard_fleet;
        let env = SimEnv::with_seed(88);
        let sdk = RichSdk::new(&env);
        let fleet = standard_fleet(&env, Arc::new(Analyzer::with_default_lexicons()));
        let texts: Vec<String> = cogsdk_text::corpus::CorpusGenerator::new(5)
            .generate(15)
            .into_iter()
            .map(|d| d.body)
            .collect();
        let ratings = sdk.nlu().rate_quality_by_consensus(&fleet, &texts);
        assert_eq!(ratings.len(), 3, "{ratings:?}");
        let get = |name: &str| ratings.iter().find(|(n, _)| n == name).unwrap().1;
        // Auto-ratings must reproduce the fleet's intrinsic quality order
        // without any human-supplied rater.
        assert!(
            get("nlu-alpha") > get("nlu-gamma"),
            "alpha {} vs gamma {}",
            get("nlu-alpha"),
            get("nlu-gamma")
        );
        // And they land in the monitor for ranking to use.
        assert!(sdk
            .monitor()
            .history("nlu-alpha")
            .unwrap()
            .mean_quality()
            .is_some());
    }

    #[test]
    fn telemetry_reconstructs_failover_trace() {
        use cogsdk_obs::Telemetry;
        let env = SimEnv::with_seed(35);
        let t = Telemetry::new();
        let sdk = RichSdk::with_telemetry(&env, t.clone());
        sdk.register(
            SimService::builder("primary-down", "s")
                .latency(LatencyModel::constant_ms(1.0))
                .failures(FailurePlan::flaky(1.0))
                .quality(0.99)
                .build(&env),
        );
        sdk.register(
            SimService::builder("backup", "s")
                .latency(LatencyModel::constant_ms(30.0))
                .quality(0.1)
                .build(&env),
        );
        let ok = sdk
            .invoke_class("s", &req(), &RankOptions::default())
            .unwrap();
        assert_eq!(ok.service, "backup");
        let trace = t.tracer().events().last().unwrap().trace;
        let events = t.tracer().events_for(trace);
        let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(names.first(), Some(&"invoke_start"));
        assert_eq!(names.last(), Some(&"invoke_end"));
        assert_eq!(names.iter().filter(|n| **n == "failover_leg").count(), 2);
        // Default policy: 2 retries on the dead primary + 1 backup hit.
        assert_eq!(names.iter().filter(|n| **n == "attempt").count(), 4);
        assert!(names.contains(&"prediction_issued"));
        // Attempts nest under failover-leg child spans of the root.
        let root = events.first().unwrap().span;
        assert!(events
            .iter()
            .filter(|e| e.kind.name() == "failover_leg")
            .all(|e| e.parent == Some(root)));
        // Metrics agree with the trace.
        assert_eq!(t.metrics().counter_sum("sdk_attempts_total"), 4);
        assert_eq!(
            t.metrics()
                .counter_value(
                    "sdk_errors_total",
                    &[("kind", "unavailable"), ("service", "primary-down")]
                )
                .unwrap_or(0)
                + t.metrics()
                    .counter_value(
                        "sdk_errors_total",
                        &[("kind", "timeout"), ("service", "primary-down")]
                    )
                    .unwrap_or(0),
            3
        );
    }

    #[test]
    fn resilient_sdk_trips_breaker_then_fails_fast() {
        use cogsdk_obs::Telemetry;
        let env = SimEnv::with_seed(41);
        let t = Telemetry::new();
        let sdk = RichSdk::with_resilience(
            &env,
            t.clone(),
            ResilienceOptions {
                breakers: Some(BreakerConfig {
                    window: 8,
                    min_calls: 3,
                    trip_error_rate: 0.5,
                    open_for: Duration::from_secs(60),
                    half_open_probes: 1,
                }),
                default_deadline: None,
            },
        );
        sdk.register(
            SimService::builder("dead", "s")
                .latency(LatencyModel::constant_ms(1.0))
                .failures(FailurePlan::flaky(1.0))
                .build(&env),
        );
        // One invoke = 3 attempts (default 2 retries), all failing: trips.
        assert!(matches!(
            sdk.invoke("dead", &req()),
            Err(SdkError::AllFailed(_))
        ));
        let (calls_before, _) = sdk.registry().get("dead").unwrap().stats();
        // Tripped: the next invoke is rejected without touching the service.
        let err = sdk.invoke("dead", &req()).unwrap_err();
        assert!(matches!(err, SdkError::CircuitOpen(_)), "{err}");
        let (calls_after, _) = sdk.registry().get("dead").unwrap().stats();
        assert_eq!(calls_before, calls_after);
        // The trip is visible to operators through metrics.
        assert_eq!(
            t.metrics()
                .gauge_value("sdk_breaker_state", &[("service", "dead")]),
            Some(1.0)
        );
        assert_eq!(
            t.metrics()
                .counter_value("sdk_breaker_rejections_total", &[("service", "dead")]),
            Some(1)
        );
    }

    #[test]
    fn invoke_class_within_bounds_total_latency() {
        let env = SimEnv::with_seed(42);
        let sdk = RichSdk::with_resilience(
            &env,
            cogsdk_obs::Telemetry::disabled(),
            ResilienceOptions {
                breakers: None,
                default_deadline: None,
            },
        );
        for name in ["dead-a", "dead-b"] {
            sdk.register(
                SimService::builder(name, "s")
                    .latency(LatencyModel::constant_ms(1.0))
                    .failures(FailurePlan::flaky(1.0))
                    .timeout(Duration::from_millis(40))
                    .build(&env),
            );
        }
        let t0 = env.clock().now();
        let err = sdk
            .invoke_class_within(
                "s",
                &req(),
                &RankOptions::default(),
                Duration::from_millis(5),
            )
            .unwrap_err();
        assert!(matches!(err, SdkError::DeadlineExceeded(_)), "{err}");
        // The first attempt always runs (burning its 40ms timeout), but no
        // retry, backoff sleep, or second leg starts past the budget.
        let elapsed = env.clock().now().since(t0);
        assert!(elapsed < Duration::from_millis(100), "{elapsed:?}");
        let calls: u64 = ["dead-a", "dead-b"]
            .iter()
            .map(|n| sdk.registry().get(n).unwrap().stats().0)
            .sum();
        assert_eq!(calls, 1, "only the first leg's first attempt may run");
    }

    #[test]
    fn monitoring_collects_across_invocations() {
        let (_env, sdk) = setup();
        for _ in 0..5 {
            sdk.invoke("fast", &req()).unwrap();
        }
        let h = sdk.monitor().history("fast").unwrap();
        assert_eq!(h.observations().len(), 5);
        assert_eq!(h.availability(), Some(1.0));
        sdk.rate_quality("fast", 0.9).unwrap();
        assert!(matches!(
            sdk.rate_quality("fast", 1.5),
            Err(SdkError::InvalidRating(_))
        ));
        assert_eq!(
            sdk.monitor().history("fast").unwrap().mean_quality(),
            Some(0.9)
        );
    }
}
