//! Deterministic multi-thread stress harness for the sharded,
//! single-flight response cache.
//!
//! The tentpole claim this suite pins down: **under concurrent load,
//! exactly one upstream call is made per key per refresh window** — K
//! duplicate misses coalesce onto one flight, errors fan out to every
//! waiter, and a stale-while-revalidate window serves expired entries
//! while precisely one background refresh runs. Time is virtual
//! ([`SimEnv`]'s clock), upstream latency/failures come from seeded chaos
//! plans, and every assertion is exact — no sleeps-and-hope thresholds on
//! the counted quantities.
//!
//! Thread count is `CACHE_STRESS_THREADS` (default 16; CI runs 32).

use cogsdk_core::cache::{CacheConfig, FetchSource, ResponseCache};
use cogsdk_core::{RichSdk, SdkError};
use cogsdk_json::{json, Json};
use cogsdk_obs::Telemetry;
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Worker threads per stress test, overridable for CI escalation.
fn stress_threads() -> usize {
    std::env::var("CACHE_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(16)
}

const TTL: Duration = Duration::from_secs(60);

fn fresh_cache(env: &SimEnv, shards: usize) -> ResponseCache {
    ResponseCache::with_config(
        env.clock().clone(),
        CacheConfig {
            capacity: 1_024,
            default_ttl: TTL,
            shards,
            stale_while_revalidate: None,
        },
        Telemetry::disabled(),
    )
}

/// An upstream stub that counts calls and holds each one open on the real
/// clock so concurrent callers genuinely overlap the flight window.
fn slow_fetch(calls: &AtomicUsize, value: Json) -> Result<Json, SdkError> {
    calls.fetch_add(1, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(25));
    Ok(value)
}

#[test]
fn concurrent_misses_on_one_key_cost_one_upstream_call() {
    let env = SimEnv::with_seed(0xCAC4E);
    let cache = fresh_cache(&env, 16);
    let threads = stress_threads();
    let calls = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                barrier.wait();
                let (value, _) = cache
                    .get_or_fetch("hot", || slow_fetch(&calls, json!({"answer": 42})))
                    .unwrap();
                assert_eq!(value, json!({"answer": 42}));
            });
        }
    });
    assert_eq!(
        calls.load(Ordering::SeqCst),
        1,
        "{threads} concurrent misses must collapse to exactly one upstream call"
    );
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        threads as u64,
        "every caller probed exactly once: {stats:?}"
    );
}

#[test]
fn exactly_one_upstream_call_per_key_per_refresh_window() {
    let env = SimEnv::with_seed(0x71D0);
    let cache = fresh_cache(&env, 16);
    let threads = stress_threads();
    let windows = 5;
    let calls = AtomicUsize::new(0);
    for window in 0..windows {
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    barrier.wait();
                    let (value, _) = cache
                        .get_or_fetch("hot", || slow_fetch(&calls, json!({"window": window})))
                        .unwrap();
                    assert_eq!(value, json!({"window": window}));
                });
            }
        });
        assert_eq!(
            calls.load(Ordering::SeqCst),
            window + 1,
            "one upstream call per refresh window, not per caller"
        );
        // Roll into the next refresh window: the entry expires.
        env.clock().advance(TTL + Duration::from_secs(1));
    }
    assert_eq!(calls.load(Ordering::SeqCst), windows);
}

#[test]
fn leader_error_fans_out_to_every_waiter_uncached() {
    let env = SimEnv::with_seed(0xE44);
    let cache = fresh_cache(&env, 8);
    let threads = stress_threads();
    let calls = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                barrier.wait();
                let result = cache.get_or_fetch("doomed", || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(25));
                    Err(SdkError::AllFailed("upstream dead".into()))
                });
                match result {
                    Err(SdkError::AllFailed(m)) => {
                        assert_eq!(m, "upstream dead", "leader's error verbatim");
                        errors.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("expected the shared flight error, got {other:?}"),
                }
            });
        }
    });
    // Threads that arrived after the flight finished became new leaders
    // (errors are never cached), so calls >= 1; but every caller in the
    // window shares its leader's single call and failure.
    let upstream = calls.load(Ordering::SeqCst);
    assert!(upstream >= 1, "at least the first leader called");
    assert!(
        upstream <= threads,
        "never more upstream calls than callers"
    );
    assert_eq!(errors.load(Ordering::SeqCst), threads, "all callers failed");
    assert!(cache.is_empty(), "errors must not be cached");
}

#[test]
fn sdk_invoke_cached_coalesces_a_thundering_herd() {
    // Scaled time: the 200ms modeled latency costs ~20ms real, holding
    // the flight open while the herd piles on.
    let env = SimEnv::with_seed_scaled(0x5D1, 0.1);
    let sdk = Arc::new(RichSdk::new(&env));
    sdk.register(
        SimService::builder("ocr", "vision")
            .latency(LatencyModel::constant_ms(200.0))
            .build(&env),
    );
    let threads = stress_threads();
    let request = Request::new("extract", json!({"doc": "invoice-7"}));
    let barrier = Barrier::new(threads);
    let fetched = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let sdk = sdk.clone();
            let request = request.clone();
            let (barrier, fetched) = (&barrier, &fetched);
            scope.spawn(move || {
                barrier.wait();
                let (response, source) = sdk.invoke_cached_outcome("ocr", &request).unwrap();
                assert_eq!(response.payload, json!({"doc": "invoice-7"}));
                if source == FetchSource::Fetched {
                    fetched.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    let (upstream_calls, _) = sdk.registry().get("ocr").unwrap().stats();
    assert_eq!(
        upstream_calls, 1,
        "the service saw one call from {threads} concurrent invocations"
    );
    assert_eq!(fetched.load(Ordering::SeqCst), 1, "exactly one leader");
    assert_eq!(
        sdk.telemetry().metrics().counter_sum("sdk_attempts_total"),
        0,
        "telemetry disabled by default on RichSdk::new"
    );
}

#[test]
fn stale_window_serves_stale_while_one_background_refresh_runs() {
    let env = SimEnv::with_seed_scaled(0x57A1E, 0.1);
    let sdk = Arc::new(RichSdk::with_cache_config(
        &env,
        CacheConfig {
            capacity: 256,
            default_ttl: Duration::from_secs(30),
            shards: 8,
            stale_while_revalidate: Some(Duration::from_secs(120)),
        },
        4,
        Telemetry::new(),
    ));
    sdk.register(
        SimService::builder("kb", "storage")
            .latency(LatencyModel::constant_ms(50.0))
            .build(&env),
    );
    let request = Request::new("lookup", json!({"entity": "ibm"}));
    // Prime the cache.
    let (_, source) = sdk.invoke_cached_outcome("kb", &request).unwrap();
    assert_eq!(source, FetchSource::Fetched);
    // Expire the entry into the stale window.
    env.clock().advance(Duration::from_secs(45));
    let threads = stress_threads();
    let barrier = Barrier::new(threads);
    let stale_serves = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let sdk = sdk.clone();
            let request = request.clone();
            let (barrier, stale_serves) = (&barrier, &stale_serves);
            scope.spawn(move || {
                barrier.wait();
                let (response, source) = sdk.invoke_cached_outcome("kb", &request).unwrap();
                assert_eq!(response.payload, json!({"entity": "ibm"}));
                // Nobody waits for the refresh: stale data now beats
                // fresh data later. (A caller arriving after the refresh
                // lands may legitimately score a fresh hit.)
                assert!(
                    matches!(source, FetchSource::Stale | FetchSource::Hit),
                    "{source:?}"
                );
                if source == FetchSource::Stale {
                    stale_serves.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    assert!(
        stale_serves.load(Ordering::SeqCst) >= 1,
        "the herd hit the stale window"
    );
    // Wait for the background refresh to land: until it does, probes are
    // served stale (joining the same flight, spawning nothing); once it
    // lands they hit fresh. Either way the service never sees more than
    // the prime call plus one refresh.
    let wait_start = std::time::Instant::now();
    loop {
        let (_, source) = sdk.invoke_cached_outcome("kb", &request).unwrap();
        let (calls, _) = sdk.registry().get("kb").unwrap().stats();
        assert!(calls <= 2, "more than one background refresh ran: {calls}");
        if source == FetchSource::Hit {
            break;
        }
        assert_eq!(source, FetchSource::Stale, "{source:?}");
        assert!(
            wait_start.elapsed() < Duration::from_secs(10),
            "background refresh never completed (upstream calls: {calls})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let (calls, _) = sdk.registry().get("kb").unwrap().stats();
    assert_eq!(calls, 2, "prime + exactly one background refresh");
    assert!(
        sdk.telemetry()
            .metrics()
            .counter_value("cache_stale_served_total", &[("cache", "response")])
            .unwrap_or(0)
            >= 1
    );
}

#[test]
fn chaos_seeded_multi_key_stress_holds_invariants() {
    let env = SimEnv::with_seed(0xC4A05);
    let cache = fresh_cache(&env, 16);
    let threads = stress_threads();
    let keys: Vec<String> = (0..64).map(|i| format!("entity-{i}")).collect();
    // A seeded flaky upstream: ~30% of leader fetches fail, so the herd
    // exercises both the success and the error fan-out paths.
    let flaky = SimService::builder("flaky", "nlu")
        .latency(LatencyModel::constant_ms(1.0))
        .failures(FailurePlan::flaky(0.3))
        .build(&env);
    let gets = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let keys = &keys;
            let flaky = &flaky;
            let (cache, gets, barrier) = (&cache, &gets, &barrier);
            scope.spawn(move || {
                barrier.wait();
                for round in 0..200 {
                    let key = &keys[(t * 31 + round * 7) % keys.len()];
                    gets.fetch_add(1, Ordering::SeqCst);
                    let result = cache.get_or_fetch(key, || {
                        let outcome =
                            flaky.invoke(&Request::new("analyze", json!({"k": (key.as_str())})));
                        match outcome.result {
                            Ok(r) => Ok(r.payload),
                            Err(e) => Err(SdkError::AllFailed(e.to_string())),
                        }
                    });
                    if let Ok((value, _)) = result {
                        assert_eq!(value, json!({"k": (key.as_str())}));
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        gets.load(Ordering::SeqCst) as u64,
        "every get is accounted exactly once: {stats:?}"
    );
    assert!(cache.len() <= cache.capacity(), "len bounded by capacity");
    assert_eq!(
        cache.shard_lens().iter().sum::<usize>(),
        cache.len(),
        "shard accounting is consistent"
    );
    // Successful fetches were coalesced: far fewer upstream calls than
    // gets (64 keys, heavy rereads). Flaky errors retry, so the exact
    // count varies by seed, but it must stay well under total traffic.
    let (upstream, _) = flaky.stats();
    assert!(
        (upstream as usize) < threads * 200 / 2,
        "coalescing + caching must suppress most of {} gets (saw {upstream})",
        threads * 200
    );
}
