//! Deterministic SLO/chaos regression for the observability tentpole.
//!
//! A seeded [`ChaosScenario`] hard-outages the only service on the
//! gateway's `invoke` route, then brown-outs it past the latency
//! objective. Everything runs on the virtual clock, so the run asserts
//! exact, reproducible behavior:
//!
//! * the multi-window burn-rate evaluator fires a `SloBurnAlert` on the
//!   rising edge (and only once per episode),
//! * the tail sampler retains **every** error and objective-violating
//!   trace — zero anomalous drops — while holding its buffered-event
//!   count under the configured bound and downsampling healthy traffic,
//! * `/slo`, `/profile`, and `/trace?trace_id=` serve the evidence.

use cogsdk_core::gateway::{GatewayLimits, HttpGateway};
use cogsdk_core::RichSdk;
use cogsdk_json::Json;
use cogsdk_obs::{
    SamplerConfig, SamplerStats, SloConfig, SloEngine, SloSpec, Telemetry, TraceVerdict,
};
use cogsdk_sim::chaos::{ChaosScenario, Fault};
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{SimEnv, SimService};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x51_0CAFE;
/// Healthy latency, well inside the objective.
const HEALTHY_MS: f64 = 10.0;
/// Latency objective: slower-but-successful requests are SLO violations.
const OBJECTIVE_MS: f64 = 100.0;
/// The service answers nothing in this window (hard outage).
const OUTAGE_START: Duration = Duration::from_secs(60);
const OUTAGE_END: Duration = Duration::from_secs(120);
/// After recovery the service answers 50x slower (brown-out): requests
/// succeed but bust the latency objective.
const BROWNOUT_START: Duration = Duration::from_secs(125);
const BROWNOUT_END: Duration = Duration::from_secs(150);

const MAX_BUFFERED_EVENTS: usize = 4_096;

struct RunOutcome {
    ok_200: usize,
    err_502: usize,
    violations_200: usize,
    stats: SamplerStats,
    retained_errors: usize,
    retained_violations: usize,
    slo_body: String,
    alert_events: usize,
}

fn post(path: &str, tenant: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: x\r\nX-Tenant: {tenant}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn status_of(raw: &str) -> u16 {
    raw.split_whitespace().nth(1).unwrap().parse().unwrap()
}

fn run_scenario() -> RunOutcome {
    let env = SimEnv::with_seed(SEED);
    let telemetry = Telemetry::new();
    let sampler = telemetry.enable_tail_sampling(SamplerConfig {
        max_buffered_events: MAX_BUFFERED_EVENTS,
        max_retained_traces: 512,
        healthy_sample_rate: 0.25,
        seed: SEED,
    });
    let sdk = Arc::new(RichSdk::with_telemetry(&env, telemetry.clone()));

    let scenario = ChaosScenario::new(SEED)
        .with_fault(
            "ocr",
            Fault::Outage {
                start: OUTAGE_START,
                end: OUTAGE_END,
            },
        )
        .with_fault(
            "ocr",
            Fault::Degradation {
                start: BROWNOUT_START,
                end: BROWNOUT_END,
                factor: 50.0,
            },
        );
    sdk.register(
        SimService::builder("ocr", "ocr")
            .latency(LatencyModel::constant_ms(HEALTHY_MS))
            .failures(scenario.plan_for("ocr"))
            .build(&env),
    );

    let engine = Arc::new(SloEngine::new(telemetry.clone(), SloConfig::default()));
    engine.add_objective(SloSpec::new("invoke", OBJECTIVE_MS, 0.99));
    engine.add_objective(SloSpec::new("invoke", OBJECTIVE_MS, 0.99).for_tenant("acme"));
    let gw = HttpGateway::with_observability(sdk, GatewayLimits::default(), engine.clone());

    let clock = env.clock();
    let mut ok_200 = 0;
    let mut err_502 = 0;
    let mut violations_200 = 0;
    // One request every 500ms of virtual time, from t=0 through the
    // outage and the brown-out: 120 healthy, 120 failing, 50 slow.
    for i in 0..290u64 {
        clock.advance_to(cogsdk_sim::clock::SimTime::from_millis(500 * i));
        let before = clock.now();
        let raw = gw.handle_text(&post("/invoke/ocr", "acme", r#"{"payload": 1}"#));
        let elapsed_ms = clock.now().since(before).as_secs_f64() * 1e3;
        match status_of(&raw) {
            200 if elapsed_ms > OBJECTIVE_MS => violations_200 += 1,
            200 => ok_200 += 1,
            502 => err_502 += 1,
            other => panic!("unexpected status {other} at request {i}: {raw}"),
        }
    }

    let slo_raw = gw.handle_text("GET /slo HTTP/1.1\r\n\r\n");
    let slo_body = slo_raw.split("\r\n\r\n").nth(1).unwrap().to_string();
    let alert_events = telemetry
        .tracer()
        .events()
        .iter()
        .filter(|e| e.kind.name() == "slo_burn_alert")
        .count();
    RunOutcome {
        ok_200,
        err_502,
        violations_200,
        stats: sampler.stats(),
        retained_errors: sampler.retained_with_verdict(TraceVerdict::Error),
        retained_violations: sampler.retained_with_verdict(TraceVerdict::SloViolation),
        slo_body,
        alert_events,
    }
}

#[test]
fn seeded_outage_trips_burn_alert_and_retains_offending_traces() {
    let run = run_scenario();

    // The schedule splits exactly into healthy / failing / violating.
    assert_eq!(run.err_502, 120, "outage window fails every request");
    assert!(
        run.violations_200 >= 40,
        "brown-out produces slow successes: {}",
        run.violations_200
    );
    assert!(run.ok_200 >= 100, "healthy phases succeed: {}", run.ok_200);

    // Tail sampling: every anomalous trace is retained, none dropped.
    assert_eq!(run.retained_errors, run.err_502, "no error trace lost");
    assert_eq!(
        run.retained_violations, run.violations_200,
        "no SLO-violating trace lost"
    );
    assert_eq!(run.stats.dropped_anomalous_traces, 0);
    // Healthy traffic is downsampled, and the buffer bound holds.
    assert!(
        run.stats.retained_traces < run.ok_200 + run.err_502 + run.violations_200,
        "healthy traces must be downsampled: {:?}",
        run.stats
    );
    assert!(
        run.stats.buffered_events <= MAX_BUFFERED_EVENTS,
        "buffered events {} exceed bound {MAX_BUFFERED_EVENTS}",
        run.stats.buffered_events
    );

    // The burn-rate evaluator fired: both the route-wide and the
    // per-tenant objective alerted, each once per episode (rising edge).
    let slo = Json::parse(&run.slo_body).unwrap();
    let objectives = match slo.get("objectives") {
        Some(Json::Array(list)) => list.clone(),
        other => panic!("bad /slo body: {other:?}"),
    };
    assert_eq!(objectives.len(), 2);
    for obj in &objectives {
        let fired = obj.get("alerts_fired").and_then(Json::as_i64).unwrap();
        assert!(
            fired >= 1,
            "objective never alerted: {}",
            obj.clone().to_json()
        );
        assert!(
            fired <= 2,
            "alert must fire on rising edges, not every request: {}",
            obj.clone().to_json()
        );
    }
    assert!(run.alert_events >= 1, "SloBurnAlert event emitted");
}

#[test]
fn chaos_run_is_deterministic() {
    let a = run_scenario();
    let b = run_scenario();
    assert_eq!(a.err_502, b.err_502);
    assert_eq!(a.violations_200, b.violations_200);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.retained_errors, b.retained_errors);
    assert_eq!(a.retained_violations, b.retained_violations);
    assert_eq!(a.alert_events, b.alert_events);
    assert_eq!(a.slo_body, b.slo_body, "/slo output is bit-identical");
}

#[test]
fn profile_and_trace_routes_serve_outage_evidence() {
    let env = SimEnv::with_seed(SEED);
    let telemetry = Telemetry::new();
    let sampler = telemetry.enable_tail_sampling(SamplerConfig {
        healthy_sample_rate: 0.0, // only anomalies retained
        seed: SEED,
        ..SamplerConfig::default()
    });
    let sdk = Arc::new(RichSdk::with_telemetry(&env, telemetry.clone()));
    let scenario = ChaosScenario::new(SEED).with_fault(
        "ocr",
        Fault::Outage {
            start: Duration::ZERO,
            end: Duration::from_secs(600),
        },
    );
    sdk.register(
        SimService::builder("ocr", "ocr")
            .latency(LatencyModel::constant_ms(HEALTHY_MS))
            .failures(scenario.plan_for("ocr"))
            .build(&env),
    );
    let engine = Arc::new(SloEngine::new(telemetry.clone(), SloConfig::default()));
    engine.add_objective(SloSpec::new("invoke", OBJECTIVE_MS, 0.99));
    let gw = HttpGateway::with_observability(sdk, GatewayLimits::default(), engine);

    for i in 0..20u64 {
        env.clock()
            .advance_to(cogsdk_sim::clock::SimTime::from_millis(500 * i));
        let raw = gw.handle_text(&post("/invoke/ocr", "acme", r#"{"payload": 1}"#));
        assert_eq!(status_of(&raw), 502);
    }
    assert_eq!(sampler.retained_with_verdict(TraceVerdict::Error), 20);

    // The profiler sees only retained (anomalous) traces and attributes
    // their wall time to operations on the critical path.
    let raw = gw.handle_text("GET /profile HTTP/1.1\r\n\r\n");
    let profile = Json::parse(raw.split("\r\n\r\n").nth(1).unwrap()).unwrap();
    assert_eq!(profile.pointer("/traces").and_then(Json::as_i64), Some(20));
    assert!(profile.pointer("/ops/0/critical_ms").and_then(Json::as_f64) > Some(0.0));

    // A retained trace is addressable by id even after ring churn, and
    // the dump closes with the drop-accounting summary line.
    let id = sampler.retained()[0].trace;
    let raw = gw.handle_text(&format!("GET /trace?trace_id={} HTTP/1.1\r\n\r\n", id.0));
    let body = raw.split("\r\n\r\n").nth(1).unwrap();
    assert!(body.contains("\"event\":\"attempt\""), "{body}");
    assert!(body.contains("\"summary\":true"), "{body}");
}
