//! Deterministic chaos regression for the resilience layer.
//!
//! A seeded [`ChaosScenario`] blackholes the primary replica for a fixed
//! window while a backup stays healthy. The ablation at the heart of this
//! suite records the tentpole claim: **with circuit breakers and deadline
//! budgets, tail latency during the outage stays at the healthy baseline;
//! without them, every request burns `timeout x attempts` before failing
//! over.** Everything runs on the virtual clock with fixed seeds, so the
//! numbers are bit-for-bit reproducible.

use cogsdk_core::invoke::{invoke_failover_governed, InvocationPolicy};
use cogsdk_core::resilience::{BreakerConfig, BreakerRegistry, Deadline, Governance};
use cogsdk_core::{BreakerState, ServiceMonitor};
use cogsdk_obs::{prometheus_text, Telemetry};
use cogsdk_sim::chaos::{ChaosScenario, Fault};
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use std::sync::Arc;
use std::time::Duration;

/// The primary is unreachable (timeout-style failures) in this window.
const OUTAGE_START: Duration = Duration::from_secs(10);
const OUTAGE_END: Duration = Duration::from_secs(70);
/// The primary's request timeout: what each doomed attempt costs.
const TIMEOUT: Duration = Duration::from_millis(250);
/// Healthy service latency on both replicas.
const HEALTHY_MS: f64 = 10.0;

fn fleet(env: &SimEnv) -> Vec<Arc<SimService>> {
    let scenario = ChaosScenario::new(env_seed()).with_fault(
        "primary",
        Fault::Blackhole {
            start: OUTAGE_START,
            end: OUTAGE_END,
        },
    );
    vec![
        SimService::builder("primary", "ocr")
            .latency(LatencyModel::constant_ms(HEALTHY_MS))
            .timeout(TIMEOUT)
            .failures(scenario.plan_for("primary"))
            .build(env),
        SimService::builder("backup", "ocr")
            .latency(LatencyModel::constant_ms(HEALTHY_MS))
            .timeout(TIMEOUT)
            .failures(scenario.plan_for("backup"))
            .build(env),
    ]
}

fn env_seed() -> u64 {
    0xC0FFEE
}

fn policy() -> InvocationPolicy {
    InvocationPolicy {
        default_retries: 1,
        ..InvocationPolicy::default()
    }
}

fn breaker_cfg() -> BreakerConfig {
    BreakerConfig {
        // Small window so one request's failed attempts reach the trip
        // rate even after a healthy warm-up filled the window with Oks.
        window: 4,
        min_calls: 2,
        trip_error_rate: 0.5,
        // Longer than the outage: recovery is exercised explicitly below.
        open_for: Duration::from_secs(300),
        half_open_probes: 1,
    }
}

/// Issues one failover request at virtual time `at`, returning the
/// end-to-end latency and the failover result. The clock is advanced to
/// `at` *before* the governance (and any deadline) is materialized, so a
/// per-request budget starts ticking at the request's start.
#[allow(clippy::too_many_arguments)]
fn request_at(
    env: &SimEnv,
    candidates: &[Arc<SimService>],
    monitor: &ServiceMonitor,
    telemetry: &Telemetry,
    breakers: &Option<Arc<BreakerRegistry>>,
    budget: Option<Duration>,
    at: Duration,
) -> (
    Duration,
    Result<cogsdk_core::invoke::FailoverSuccess, cogsdk_core::SdkError>,
) {
    let clock = env.clock();
    clock.advance_to(cogsdk_sim::clock::SimTime::ZERO.after(at));
    let deadline = match budget {
        Some(budget) => Deadline::within(clock, budget),
        None => Deadline::NONE,
    };
    let gov = Governance::new(breakers.clone(), deadline);
    let started = clock.now();
    let ctx = telemetry.tracer().new_trace();
    let request = Request::new("recognize", cogsdk_json::json!({"img": 1}));
    let result = invoke_failover_governed(
        candidates,
        &request,
        &policy(),
        monitor,
        telemetry,
        &ctx,
        &gov,
    );
    (clock.now().since(started), result)
}

fn percentile(samples: &[Duration], p: f64) -> Duration {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort();
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Runs the fixed request schedule (20 healthy, then 100 inside the
/// outage window at 500ms cadence), with or without the resilience layer
/// (breakers + an 800ms per-request deadline), returning (healthy
/// latencies, outage latencies).
fn run_schedule(with_resilience: bool) -> (Vec<Duration>, Vec<Duration>) {
    let env = SimEnv::with_seed(env_seed());
    let candidates = fleet(&env);
    let monitor = ServiceMonitor::new();
    let telemetry = Telemetry::new();
    let breakers = with_resilience.then(|| {
        Arc::new(BreakerRegistry::new(
            env.clock().clone(),
            telemetry.clone(),
            breaker_cfg(),
        ))
    });
    let budget = with_resilience.then_some(Duration::from_millis(800));

    let mut healthy = Vec::new();
    for i in 0..20u64 {
        let at = Duration::from_millis(200 * i);
        let (latency, result) = request_at(
            &env,
            &candidates,
            &monitor,
            &telemetry,
            &breakers,
            budget,
            at,
        );
        result.expect("healthy phase always succeeds");
        healthy.push(latency);
    }

    let mut outage = Vec::new();
    for i in 0..100u64 {
        let at = OUTAGE_START + Duration::from_millis(500 * i);
        let (latency, result) = request_at(
            &env,
            &candidates,
            &monitor,
            &telemetry,
            &breakers,
            budget,
            at,
        );
        let ok = result.expect("the backup keeps every request alive");
        assert_eq!(ok.service, "backup", "outage traffic lands on the backup");
        outage.push(latency);
    }
    (healthy, outage)
}

#[test]
fn ablation_breakers_hold_outage_p99_at_healthy_baseline() {
    let (healthy, outage) = run_schedule(true);
    let (healthy_ctl, outage_ctl) = run_schedule(false);

    let healthy_p99 = percentile(&healthy, 0.99);
    let outage_p99 = percentile(&outage, 0.99);
    let outage_p99_ctl = percentile(&outage_ctl, 0.99);

    // Healthy baselines agree between the arms.
    assert_eq!(healthy_p99, percentile(&healthy_ctl, 0.99));
    // With breakers, only the requests that *discover* the outage pay for
    // it; once tripped, failover skips the primary and p99 over the
    // outage equals the healthy p99.
    assert!(
        outage_p99 <= healthy_p99 * 2,
        "with breakers: outage p99 {outage_p99:?} vs healthy p99 {healthy_p99:?}"
    );
    // Without breakers, every request burns timeout x attempts on the
    // dead primary before failing over.
    let attempts = policy().default_retries as u32 + 1;
    assert!(
        outage_p99_ctl >= TIMEOUT * attempts,
        "control: outage p99 {outage_p99_ctl:?} should be ~timeout x attempts"
    );
    assert!(outage_p99_ctl > healthy_p99 * 2);
}

#[test]
fn failover_skips_tripped_primary_within_one_leg() {
    let env = SimEnv::with_seed(env_seed());
    let candidates = fleet(&env);
    let monitor = ServiceMonitor::new();
    let telemetry = Telemetry::new();
    let breakers = Arc::new(BreakerRegistry::new(
        env.clock().clone(),
        telemetry.clone(),
        breaker_cfg(),
    ));
    let breakers = Some(breakers);

    // First request inside the outage discovers the failure and trips the
    // breaker (2 failed attempts >= min_calls at 100% error rate).
    let (latency, result) = request_at(
        &env,
        &candidates,
        &monitor,
        &telemetry,
        &breakers,
        None,
        OUTAGE_START + Duration::from_secs(1),
    );
    let ok = result.unwrap();
    assert_eq!(ok.service, "backup");
    assert_eq!(ok.services_tried, 2, "discovery pays for both legs");
    assert!(latency >= TIMEOUT * 2, "discovery burns the timeouts");
    assert_eq!(
        breakers.as_ref().unwrap().state("primary"),
        BreakerState::Open
    );

    // Every subsequent request picks the healthy replica within one leg:
    // the open breaker skips the primary without calling it.
    let (primary_calls, _) = candidates[0].stats();
    for i in 0..5u64 {
        let (latency, result) = request_at(
            &env,
            &candidates,
            &monitor,
            &telemetry,
            &breakers,
            None,
            OUTAGE_START + Duration::from_secs(2 + i),
        );
        let ok = result.unwrap();
        assert_eq!(ok.service, "backup");
        assert_eq!(
            ok.services_tried, 1,
            "tripped primary is skipped, not tried"
        );
        assert_eq!(latency, Duration::from_millis(HEALTHY_MS as u64));
    }
    assert_eq!(
        candidates[0].stats().0,
        primary_calls,
        "the tripped primary was never called again"
    );
}

#[test]
fn breaker_recovers_through_half_open_probe_after_outage() {
    let env = SimEnv::with_seed(env_seed());
    let candidates = fleet(&env);
    let monitor = ServiceMonitor::new();
    let telemetry = Telemetry::new();
    let breakers = Arc::new(BreakerRegistry::new(
        env.clock().clone(),
        telemetry.clone(),
        breaker_cfg(),
    ));
    let breakers = Some(breakers);

    // Trip during the outage.
    request_at(
        &env,
        &candidates,
        &monitor,
        &telemetry,
        &breakers,
        None,
        OUTAGE_START + Duration::from_secs(1),
    )
    .1
    .unwrap();
    assert_eq!(
        breakers.as_ref().unwrap().state("primary"),
        BreakerState::Open
    );

    // Past the outage *and* the cooldown, the next admit releases a
    // half-open probe; the recovered primary answers and the breaker
    // closes, restoring primary traffic.
    let (latency, result) = request_at(
        &env,
        &candidates,
        &monitor,
        &telemetry,
        &breakers,
        None,
        OUTAGE_END + Duration::from_secs(300),
    );
    let ok = result.unwrap();
    assert_eq!(
        ok.service, "primary",
        "probe traffic returns to the primary"
    );
    assert_eq!(ok.services_tried, 1);
    assert_eq!(latency, Duration::from_millis(HEALTHY_MS as u64));
    assert_eq!(
        breakers.as_ref().unwrap().state("primary"),
        BreakerState::Closed
    );
}

#[test]
fn breaker_lifecycle_is_visible_in_metrics_and_traces() {
    let env = SimEnv::with_seed(env_seed());
    let candidates = fleet(&env);
    let monitor = ServiceMonitor::new();
    let telemetry = Telemetry::new();
    let breakers = Arc::new(BreakerRegistry::new(
        env.clock().clone(),
        telemetry.clone(),
        breaker_cfg(),
    ));
    let breakers = Some(breakers);
    for i in 0..3u64 {
        request_at(
            &env,
            &candidates,
            &monitor,
            &telemetry,
            &breakers,
            None,
            OUTAGE_START + Duration::from_secs(1 + i),
        )
        .1
        .unwrap();
    }
    let text = prometheus_text(telemetry.metrics());
    assert!(
        text.contains(r#"sdk_breaker_transitions_total{service="primary",to="open"} 1"#),
        "{text}"
    );
    assert!(
        text.contains(r#"sdk_breaker_state{service="primary"} 1"#),
        "{text}"
    );
    assert!(
        text.contains(r#"sdk_breaker_rejections_total{service="primary"} 2"#),
        "{text}"
    );
    let names: Vec<&str> = telemetry
        .tracer()
        .events()
        .iter()
        .map(|e| e.kind.name())
        .collect::<Vec<_>>();
    assert!(names.contains(&"breaker_transition"), "{names:?}");
    assert!(names.contains(&"breaker_rejected"), "{names:?}");
}
