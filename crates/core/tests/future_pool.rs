//! Integration coverage for the async primitives: `ListenableFuture`
//! completion ordering across threads and `ThreadPool` reuse and
//! exhaustion behavior. The inline unit tests cover single-call
//! semantics; these tests stress the cross-thread contracts the
//! single-flight cache and the SDK's async paths depend on.

use cogsdk_core::{ListenableFuture, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// ListenableFuture: completion ordering
// ---------------------------------------------------------------------

/// Every waiter blocked on the same future observes the same completed
/// value, no matter which thread completes it or how many wait.
#[test]
fn many_waiters_all_observe_the_single_completion() {
    let future: ListenableFuture<u64> = ListenableFuture::new();
    let waiters = 8;
    let barrier = Arc::new(Barrier::new(waiters + 1));
    let results: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..waiters)
            .map(|_| {
                let future = future.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    *future.wait()
                })
            })
            .collect();
        barrier.wait();
        // All waiters are at (or past) the barrier; give them a moment
        // to actually block in wait() before completing.
        std::thread::sleep(Duration::from_millis(10));
        future.complete(99);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(results, vec![99; waiters]);
}

/// Listeners registered before completion fire in registration order on
/// the completing thread; listeners registered after completion fire
/// immediately. The two phases never interleave out of order.
#[test]
fn listener_ordering_holds_across_threads() {
    let future: ListenableFuture<i32> = ListenableFuture::new();
    let order = Arc::new(Mutex::new(Vec::new()));
    for i in 0..4 {
        let order = order.clone();
        future.add_listener(move |_| order.lock().unwrap().push(i));
    }
    let completer = {
        let future = future.clone();
        std::thread::spawn(move || future.complete(1))
    };
    completer.join().unwrap();
    // Late listener after cross-thread completion runs synchronously.
    let order2 = order.clone();
    future.add_listener(move |_| order2.lock().unwrap().push(4));
    assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
}

/// A map chain built before completion resolves end-to-end once the
/// root completes from another thread.
#[test]
fn map_chain_resolves_after_cross_thread_completion() {
    let root: ListenableFuture<u32> = ListenableFuture::new();
    let doubled = root.map(|v| v * 2);
    let labeled = doubled.map(|v| format!("v={v}"));
    let completer = {
        let root = root.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            root.complete(21);
        })
    };
    assert_eq!(*labeled.wait(), "v=42");
    assert!(doubled.is_done() && root.is_done());
    completer.join().unwrap();
}

/// `wait_timeout` returns `None` before completion and the value after,
/// and a completion racing the timeout is never lost.
#[test]
fn wait_timeout_races_with_completion() {
    let future: ListenableFuture<i32> = ListenableFuture::new();
    assert!(future.wait_timeout(Duration::from_millis(5)).is_none());
    let completer = {
        let future = future.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            future.complete(5);
        })
    };
    // Generous timeout: must see the value, not time out.
    let got = future.wait_timeout(Duration::from_secs(5));
    assert_eq!(got.map(|v| *v), Some(5));
    completer.join().unwrap();
}

// ---------------------------------------------------------------------
// ThreadPool: reuse and exhaustion
// ---------------------------------------------------------------------

/// The same pool serves many sequential batches — workers are reused,
/// not respawned, and every batch completes fully.
#[test]
fn pool_reuse_across_sequential_batches() {
    let pool = ThreadPool::new(2);
    let done = Arc::new(AtomicUsize::new(0));
    for batch in 0..5 {
        let futures: Vec<_> = (0..6)
            .map(|i| {
                let done = done.clone();
                pool.submit(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                    batch * 10 + i
                })
            })
            .collect();
        let results: Vec<usize> = futures.iter().map(|f| *f.wait()).collect();
        assert_eq!(results, (0..6).map(|i| batch * 10 + i).collect::<Vec<_>>());
    }
    assert_eq!(done.load(Ordering::SeqCst), 30);
    assert_eq!(pool.queue_depth(), 0, "no stragglers after batches drain");
}

/// Submitting far more jobs than workers exhausts the pool: excess jobs
/// queue (visible via `queue_depth`), none are dropped, and concurrency
/// never exceeds the worker count.
#[test]
fn exhaustion_queues_excess_jobs_without_loss() {
    let workers = 2;
    let jobs = 16;
    let pool = ThreadPool::new(workers);
    let in_flight = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(Barrier::new(workers + 1));
    // First, park every worker so the remaining jobs must queue.
    let parked: Vec<_> = (0..workers)
        .map(|_| {
            let gate = gate.clone();
            pool.submit(move || {
                gate.wait();
            })
        })
        .collect();
    let queued: Vec<_> = (0..jobs)
        .map(|i| {
            let in_flight = in_flight.clone();
            let peak = peak.clone();
            pool.submit(move || {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                i
            })
        })
        .collect();
    // All workers are parked at the gate, so every queued job is waiting.
    assert!(
        pool.queue_depth() >= jobs,
        "expected >= {jobs} queued, saw {}",
        pool.queue_depth()
    );
    gate.wait(); // release the workers
    for f in &parked {
        f.wait();
    }
    let results: Vec<usize> = queued.iter().map(|f| *f.wait()).collect();
    assert_eq!(
        results,
        (0..jobs).collect::<Vec<_>>(),
        "no job lost or reordered"
    );
    assert!(
        peak.load(Ordering::SeqCst) <= workers,
        "concurrency exceeded pool size"
    );
    assert_eq!(pool.queue_depth(), 0);
}

/// Futures returned by `submit` compose with `map` and `add_listener`
/// exactly like hand-made ones — the combination the SDK's async
/// invocation path relies on.
#[test]
fn pool_futures_compose_with_map_and_listeners() {
    let pool = ThreadPool::new(3);
    let fired = Arc::new(AtomicUsize::new(0));
    let futures: Vec<_> = (0..9u64)
        .map(|i| {
            let fired = fired.clone();
            let f = pool.submit(move || i * i).map(|sq| sq + 1);
            f.add_listener(move |_| {
                fired.fetch_add(1, Ordering::SeqCst);
            });
            f
        })
        .collect();
    let total: u64 = futures.iter().map(|f| *f.wait()).sum();
    assert_eq!(total, (0..9u64).map(|i| i * i + 1).sum::<u64>());
    assert_eq!(fired.load(Ordering::SeqCst), 9, "every listener fired once");
}

/// Concurrent submitters from many threads share one pool safely.
#[test]
fn concurrent_submission_from_many_threads() {
    let pool = Arc::new(ThreadPool::new(4));
    let submitters = 8;
    let per_thread = 50;
    let sum = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for t in 0..submitters {
            let pool = pool.clone();
            let sum = sum.clone();
            scope.spawn(move || {
                let futures: Vec<_> = (0..per_thread)
                    .map(|i| pool.submit(move || t * per_thread + i))
                    .collect();
                for f in futures {
                    sum.fetch_add(*f.wait(), Ordering::SeqCst);
                }
            });
        }
    });
    let n = submitters * per_thread;
    assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2);
}

/// `map_all` under saturation: more items than workers still returns
/// complete, ordered output.
#[test]
fn map_all_under_saturation_stays_ordered() {
    let pool = ThreadPool::new(2);
    let start = Instant::now();
    let out = pool.map_all((0..32).collect(), |i: i32| {
        std::thread::sleep(Duration::from_millis(1));
        i * 3
    });
    assert_eq!(out, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    // Sanity: it actually ran (not optimized away) but bounded.
    assert!(start.elapsed() >= Duration::from_millis(16));
}
