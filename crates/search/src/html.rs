//! HTML rendering and text extraction.
//!
//! §2.2: "Our rich SDK can also fetch HTML documents corresponding to URLs
//! returned from a Web search. These HTML documents can then be passed to
//! natural language understanding services." Documents in the simulated
//! web are served as HTML pages; this module renders them and extracts the
//! text back out.

use cogsdk_text::corpus::GeneratedDoc;

/// Renders a generated document as a small HTML page.
///
/// # Examples
///
/// ```
/// # use cogsdk_text::corpus::CorpusGenerator;
/// let doc = &CorpusGenerator::new(1).generate(1)[0];
/// let html = cogsdk_search::html::render(doc);
/// assert!(html.starts_with("<!DOCTYPE html>"));
/// let text = cogsdk_search::html::extract_text(&html);
/// assert!(text.contains(&doc.title));
/// ```
pub fn render(doc: &GeneratedDoc) -> String {
    let kind = if doc.is_news { "news" } else { "reference" };
    format!(
        "<!DOCTYPE html>\n<html>\n<head>\n  <title>{title}</title>\n  <meta name=\"topic\" content=\"{topic}\">\n  <meta name=\"kind\" content=\"{kind}\">\n</head>\n<body>\n  <h1>{title}</h1>\n  <article>\n    <p>{body}</p>\n  </article>\n  <footer>day {day}</footer>\n</body>\n</html>\n",
        title = escape(&doc.title),
        topic = escape(&doc.topic),
        body = escape(&doc.body),
        day = doc.day,
    )
}

/// Extracts visible text from HTML: strips tags, script/style contents,
/// and decodes the entities [`render`] produces.
pub fn extract_text(html: &str) -> String {
    // Tag names are ASCII: compare case-insensitively on raw bytes so
    // offsets stay valid regardless of non-ASCII content around them.
    fn starts_ignore_case(haystack: &str, at: usize, needle: &str) -> bool {
        haystack
            .as_bytes()
            .get(at..at + needle.len())
            .is_some_and(|w| w.eq_ignore_ascii_case(needle.as_bytes()))
    }
    let mut out = String::new();
    let mut chars = html.char_indices().peekable();
    let mut skip_until: Option<&str> = None;
    while let Some((i, c)) = chars.next() {
        if let Some(end_tag) = skip_until {
            if starts_ignore_case(html, i, end_tag) {
                skip_until = None;
                // Consume through the closing '>'.
                for (_, c2) in chars.by_ref() {
                    if c2 == '>' {
                        break;
                    }
                }
            }
            continue;
        }
        if c == '<' {
            if starts_ignore_case(html, i, "<script") {
                skip_until = Some("</script");
                continue;
            }
            if starts_ignore_case(html, i, "<style") {
                skip_until = Some("</style");
                continue;
            }
            // Generic tag: consume to '>'.
            for (_, c2) in chars.by_ref() {
                if c2 == '>' {
                    break;
                }
            }
            // Tags separate words.
            if !out.ends_with(' ') && !out.is_empty() {
                out.push(' ');
            }
        } else {
            out.push(c);
        }
    }
    let decoded = out
        .replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#39;", "'");
    // Collapse whitespace runs.
    decoded.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&#39;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_text::corpus::CorpusGenerator;

    #[test]
    fn render_round_trips_body_text() {
        let docs = CorpusGenerator::new(5).generate(5);
        for d in &docs {
            let html = render(d);
            let text = extract_text(&html);
            assert!(text.contains(&d.body), "body lost for doc {}", d.id);
        }
    }

    #[test]
    fn extract_strips_tags_and_scripts() {
        let html = "<html><script>var x = '<b>';</script><body><p>Hello <b>world</b></p><style>p{}</style> done</body></html>";
        assert_eq!(extract_text(html), "Hello world done");
    }

    #[test]
    fn entities_escaped_and_decoded() {
        let mut doc = CorpusGenerator::new(1).generate(1).remove(0);
        doc.title = "AT&T <rocks> \"quotes\"".into();
        doc.body = "it's fine".into();
        let html = render(&doc);
        assert!(!html.contains("<rocks>"));
        let text = extract_text(&html);
        assert!(text.contains("AT&T <rocks> \"quotes\""), "{text}");
        assert!(text.contains("it's fine"));
    }

    #[test]
    fn empty_html_extracts_empty() {
        assert_eq!(extract_text(""), "");
        assert_eq!(extract_text("<br><hr>"), "");
    }

    #[test]
    fn metadata_embedded() {
        let doc = CorpusGenerator::new(2).generate(1).remove(0);
        let html = render(&doc);
        assert!(html.contains(&format!("content=\"{}\"", doc.topic)));
        assert!(html.contains(&format!("day {}", doc.day)));
    }
}
