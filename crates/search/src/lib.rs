//! Simulated web search engines.
//!
//! §2.2 of the paper: "We provide the ability to perform Web searches,
//! analyze all of the documents returned by a Web search, and aggregate the
//! results… Users can use a variety of search engines such as Google, Bing,
//! and Yahoo! Searches can also be restricted to news stories." This crate
//! is the search substrate: a deterministic corpus (from
//! [`cogsdk_text::corpus`]) behind an inverted index, with **two ranking
//! engines** (BM25 and TF-IDF cosine) so the SDK has genuinely different
//! "search engines" to choose between, plus an HTML layer so documents can
//! be fetched, stored and re-analyzed like real web pages.
//!
//! # Examples
//!
//! ```
//! use cogsdk_search::{SearchIndex, engine::{SearchEngine, RankerKind}};
//!
//! let index = SearchIndex::with_generated_corpus(7, 100);
//! let engine = SearchEngine::new("demo", RankerKind::Bm25, index.into());
//! let hits = engine.search("market growth", 5);
//! assert!(!hits.is_empty());
//! assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
//! ```

pub mod engine;
pub mod html;
pub mod index;
pub mod services;

pub use engine::{RankerKind, SearchEngine, SearchHit};
pub use index::SearchIndex;
