//! Ranked retrieval: two genuinely different search engines.
//!
//! The paper lets applications pick among "a variety of search engines"
//! (§2.2). Two rankers over the same corpus produce different orderings —
//! exactly the situation in which the SDK's quality evaluation and service
//! ranking become meaningful.

use crate::index::SearchIndex;
use std::sync::Arc;

/// Which ranking function an engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankerKind {
    /// Okapi BM25 (k1 = 1.2, b = 0.75).
    Bm25,
    /// TF-IDF with cosine-style length normalization.
    TfIdf,
}

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Document id in the backing index.
    pub doc_id: usize,
    /// The document URL.
    pub url: String,
    /// The document title.
    pub title: String,
    /// A snippet (title, truncated).
    pub snippet: String,
    /// Ranking score (engine-specific scale).
    pub score: f64,
}

/// A search engine: a ranker over a shared index.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    name: String,
    ranker: RankerKind,
    index: Arc<SearchIndex>,
}

impl SearchEngine {
    /// Creates an engine with a name (used as its service identity).
    pub fn new(
        name: impl Into<String>,
        ranker: RankerKind,
        index: Arc<SearchIndex>,
    ) -> SearchEngine {
        SearchEngine {
            name: name.into(),
            ranker,
            index,
        }
    }

    /// The engine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ranker in use.
    pub fn ranker(&self) -> RankerKind {
        self.ranker
    }

    /// The backing index.
    pub fn index(&self) -> &Arc<SearchIndex> {
        &self.index
    }

    /// Searches the whole corpus.
    pub fn search(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        self.search_filtered(query, limit, |_| true)
    }

    /// Searches news stories only, boosting recent documents — the
    /// paper's "searches can also be restricted to news stories".
    pub fn search_news(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        let mut hits = self.scored(query, |d| d);
        // Recency boost: newer stories (higher day) score higher.
        for h in &mut hits {
            let doc = &self.index.doc(h.doc_id).doc;
            if !doc.is_news {
                h.score = f64::NEG_INFINITY;
            } else {
                h.score *= 1.0 + doc.day as f64 / 365.0;
            }
        }
        hits.retain(|h| h.score.is_finite());
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc_id.cmp(&b.doc_id)));
        hits.truncate(limit);
        hits
    }

    fn search_filtered(
        &self,
        query: &str,
        limit: usize,
        keep: impl Fn(usize) -> bool,
    ) -> Vec<SearchHit> {
        let mut hits = self.scored(query, |d| d);
        hits.retain(|h| keep(h.doc_id));
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc_id.cmp(&b.doc_id)));
        hits.truncate(limit);
        hits
    }

    fn scored(&self, query: &str, _f: impl Fn(usize) -> usize) -> Vec<SearchHit> {
        let terms = SearchIndex::query_terms(query);
        if terms.is_empty() || self.index.is_empty() {
            return Vec::new();
        }
        let n = self.index.len() as f64;
        let avgdl = self.index.avg_doc_length();
        let mut scores: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        for term in &terms {
            let postings = self.index.postings(term);
            if postings.is_empty() {
                continue;
            }
            let df = postings.len() as f64;
            match self.ranker {
                RankerKind::Bm25 => {
                    let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                    const K1: f64 = 1.2;
                    const B: f64 = 0.75;
                    for p in postings {
                        let dl = self.index.doc(p.doc).length as f64;
                        let tf = p.tf as f64;
                        let s = idf * tf * (K1 + 1.0) / (tf + K1 * (1.0 - B + B * dl / avgdl));
                        *scores.entry(p.doc).or_insert(0.0) += s;
                    }
                }
                RankerKind::TfIdf => {
                    let idf = (n / df).ln() + 1.0;
                    for p in postings {
                        let dl = self.index.doc(p.doc).length as f64;
                        let tf = 1.0 + (p.tf as f64).ln();
                        *scores.entry(p.doc).or_insert(0.0) += tf * idf / dl.sqrt();
                    }
                }
            }
        }
        scores
            .into_iter()
            .map(|(doc_id, score)| {
                let d = &self.index.doc(doc_id).doc;
                let snippet: String = d.title.chars().take(80).collect();
                SearchHit {
                    doc_id,
                    url: d.url.clone(),
                    title: d.title.clone(),
                    snippet,
                    score,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_text::corpus::GeneratedDoc;

    fn mkdoc(id: usize, title: &str, body: &str, is_news: bool, day: u32) -> GeneratedDoc {
        GeneratedDoc {
            id,
            title: title.to_string(),
            url: format!("https://t.example/{id}"),
            body: body.to_string(),
            topic: "technology".into(),
            is_news,
            day,
            slant: 0.0,
            planted_entities: vec![],
        }
    }

    fn small_index() -> Arc<SearchIndex> {
        let mut idx = SearchIndex::new();
        idx.add(mkdoc(
            0,
            "solar energy boom",
            "solar solar panels energy growth",
            false,
            10,
        ));
        idx.add(mkdoc(
            1,
            "wind power",
            "wind turbines energy energy",
            true,
            100,
        ));
        idx.add(mkdoc(2, "solar news", "solar market update", true, 300));
        idx.add(mkdoc(3, "cooking recipes", "pasta tomato basil", false, 50));
        Arc::new(idx)
    }

    #[test]
    fn relevant_documents_rank_above_irrelevant() {
        let e = SearchEngine::new("t", RankerKind::Bm25, small_index());
        let hits = e.search("solar energy", 10);
        assert_eq!(hits[0].doc_id, 0);
        assert!(hits.iter().all(|h| h.doc_id != 3));
    }

    #[test]
    fn results_sorted_descending_with_stable_ties() {
        for ranker in [RankerKind::Bm25, RankerKind::TfIdf] {
            let e = SearchEngine::new("t", ranker, small_index());
            let hits = e.search("energy", 10);
            assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        }
    }

    #[test]
    fn limit_truncates() {
        let e = SearchEngine::new("t", RankerKind::Bm25, small_index());
        assert_eq!(e.search("solar energy wind", 2).len(), 2);
    }

    #[test]
    fn empty_query_and_unknown_terms() {
        let e = SearchEngine::new("t", RankerKind::Bm25, small_index());
        assert!(e.search("", 5).is_empty());
        assert!(e.search("zebra quark", 5).is_empty());
    }

    #[test]
    fn news_search_filters_and_boosts_recent() {
        let e = SearchEngine::new("t", RankerKind::Bm25, small_index());
        let hits = e.search_news("solar energy", 10);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| [1, 2].contains(&h.doc_id)), "{hits:?}");
    }

    #[test]
    fn rankers_produce_different_orderings_on_real_corpus() {
        let idx = Arc::new(SearchIndex::with_generated_corpus(17, 200));
        let bm25 = SearchEngine::new("a", RankerKind::Bm25, idx.clone());
        let tfidf = SearchEngine::new("b", RankerKind::TfIdf, idx);
        let mut differ = false;
        for q in [
            "market growth",
            "vaccine results",
            "energy sector",
            "software plans",
        ] {
            let a: Vec<usize> = bm25.search(q, 10).iter().map(|h| h.doc_id).collect();
            let b: Vec<usize> = tfidf.search(q, 10).iter().map(|h| h.doc_id).collect();
            if a != b {
                differ = true;
            }
            // Top results still overlap substantially (same corpus).
            let overlap = a.iter().filter(|d| b.contains(d)).count();
            assert!(overlap >= a.len().min(b.len()) / 2, "{q}: {a:?} vs {b:?}");
        }
        assert!(differ, "two rankers should disagree somewhere");
    }

    #[test]
    fn engine_metadata() {
        let e = SearchEngine::new("bongo", RankerKind::TfIdf, small_index());
        assert_eq!(e.name(), "bongo");
        assert_eq!(e.ranker(), RankerKind::TfIdf);
        assert_eq!(e.index().len(), 4);
    }
}
