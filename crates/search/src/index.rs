//! Inverted index over a document corpus.

use cogsdk_text::corpus::{CorpusGenerator, GeneratedDoc};
use cogsdk_text::tokenize::{stem, tokenize};
use std::collections::HashMap;

/// One indexed document.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedDoc {
    /// Position in the index (doc id).
    pub id: usize,
    /// The generated source document.
    pub doc: GeneratedDoc,
    /// Number of indexable terms in the document.
    pub length: usize,
}

/// A posting: document id and term frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document id.
    pub doc: usize,
    /// Occurrences of the term in the document.
    pub tf: u32,
}

/// An inverted index with document store.
///
/// Terms are stemmed and lowercased; stopwords are *kept* (they carry
/// almost no score weight under either ranker and keeping them simplifies
/// phrase-ish queries).
#[derive(Debug, Default)]
pub struct SearchIndex {
    docs: Vec<IndexedDoc>,
    postings: HashMap<String, Vec<Posting>>,
    total_terms: usize,
}

impl SearchIndex {
    /// Creates an empty index.
    pub fn new() -> SearchIndex {
        SearchIndex::default()
    }

    /// Generates a fresh deterministic corpus of `n` documents (seeded)
    /// and indexes it.
    pub fn with_generated_corpus(seed: u64, n: usize) -> SearchIndex {
        let mut index = SearchIndex::new();
        for doc in CorpusGenerator::new(seed).generate(n) {
            index.add(doc);
        }
        index
    }

    /// Indexes one document; returns its doc id.
    pub fn add(&mut self, doc: GeneratedDoc) -> usize {
        let id = self.docs.len();
        let text = format!("{} {}", doc.title, doc.body);
        let mut counts: HashMap<String, u32> = HashMap::new();
        let mut length = 0usize;
        for tok in tokenize(&text) {
            let term = stem(&tok.lower());
            if term.is_empty() {
                continue;
            }
            *counts.entry(term).or_insert(0) += 1;
            length += 1;
        }
        for (term, tf) in counts {
            self.postings
                .entry(term)
                .or_default()
                .push(Posting { doc: id, tf });
        }
        self.total_terms += length;
        self.docs.push(IndexedDoc { id, doc, length });
        id
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Average document length in terms (for BM25).
    pub fn avg_doc_length(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_terms as f64 / self.docs.len() as f64
        }
    }

    /// Document frequency of a (raw, unstemmed) term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings
            .get(&stem(&term.to_lowercase()))
            .map_or(0, Vec::len)
    }

    /// Postings list for a (raw) term.
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.postings
            .get(&stem(&term.to_lowercase()))
            .map_or(&[], Vec::as_slice)
    }

    /// The document with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn doc(&self, id: usize) -> &IndexedDoc {
        &self.docs[id]
    }

    /// Looks up a document by its URL.
    pub fn by_url(&self, url: &str) -> Option<&IndexedDoc> {
        self.docs.iter().find(|d| d.doc.url == url)
    }

    /// All indexed documents.
    pub fn docs(&self) -> &[IndexedDoc] {
        &self.docs
    }

    /// Tokenizes a query into index terms.
    pub fn query_terms(query: &str) -> Vec<String> {
        tokenize(query)
            .into_iter()
            .map(|t| stem(&t.lower()))
            .filter(|t| !t.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: usize, title: &str, body: &str) -> GeneratedDoc {
        GeneratedDoc {
            id,
            title: title.to_string(),
            url: format!("https://t.example/{id}"),
            body: body.to_string(),
            topic: "technology".into(),
            is_news: false,
            day: 0,
            slant: 0.0,
            planted_entities: vec![],
        }
    }

    #[test]
    fn add_and_retrieve() {
        let mut idx = SearchIndex::new();
        let id = idx.add(doc(0, "Solar power", "Solar panels convert light."));
        assert_eq!(id, 0);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.doc(0).doc.title, "Solar power");
        assert!(idx.by_url("https://t.example/0").is_some());
        assert!(idx.by_url("https://missing").is_none());
    }

    #[test]
    fn postings_count_term_frequency() {
        let mut idx = SearchIndex::new();
        idx.add(doc(0, "solar solar", "solar wind"));
        idx.add(doc(1, "wind", "wind wind"));
        assert_eq!(idx.doc_freq("solar"), 1);
        assert_eq!(idx.doc_freq("wind"), 2);
        let p = idx.postings("solar");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].tf, 3);
        assert_eq!(idx.doc_freq("fusion"), 0);
        assert!(idx.postings("fusion").is_empty());
    }

    #[test]
    fn terms_are_stemmed_and_case_folded() {
        let mut idx = SearchIndex::new();
        idx.add(doc(0, "Batteries", "The battery improves."));
        assert!(idx.doc_freq("battery") > 0);
        assert_eq!(idx.doc_freq("BATTERY"), idx.doc_freq("battery"));
        // "batteries" stems to "battery" so both map to the same postings.
        assert_eq!(idx.postings("batteries")[0].tf, 2);
    }

    #[test]
    fn avg_doc_length_updates() {
        let mut idx = SearchIndex::new();
        assert_eq!(idx.avg_doc_length(), 0.0);
        idx.add(doc(0, "a b", "c d"));
        idx.add(doc(1, "a b c d", "e f g h"));
        assert!((idx.avg_doc_length() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn generated_corpus_indexes() {
        let idx = SearchIndex::with_generated_corpus(3, 40);
        assert_eq!(idx.len(), 40);
        assert!(idx.avg_doc_length() > 10.0);
    }

    #[test]
    fn query_terms_normalize() {
        assert_eq!(
            SearchIndex::query_terms("Solar Panels!"),
            vec!["solar", "panel"]
        );
        assert!(SearchIndex::query_terms("...").is_empty());
    }
}
