//! Search engines and the simulated web as remote services.
//!
//! * Search services (class `"search"`): request
//!   `{"query": "...", "limit": n, "news": bool}` →
//!   `{"hits": [{"url", "title", "snippet", "score"}, …]}`.
//! * The web-fetch service (class `"web"`): request `{"url": "..."}` →
//!   `{"html": "..."}`; 404s surface as bad requests.

use crate::engine::{RankerKind, SearchEngine};
use crate::html;
use crate::index::SearchIndex;
use cogsdk_json::{json, Json};
use cogsdk_sim::cost::{CostModel, MicroDollars};
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::service::SimService;
use cogsdk_sim::SimEnv;
use std::sync::Arc;

/// Default number of hits when a query does not specify a limit.
pub const DEFAULT_LIMIT: usize = 10;

/// Builds a search service around an engine.
pub fn search_service(
    env: &SimEnv,
    engine: SearchEngine,
    latency: LatencyModel,
    failures: FailurePlan,
) -> Arc<SimService> {
    let name = engine.name().to_string();
    SimService::builder(name, "search")
        .latency(latency)
        .cost(CostModel::PerCall(MicroDollars::from_micros(20)))
        .failures(failures)
        .quality(match engine.ranker() {
            RankerKind::Bm25 => 0.9,
            RankerKind::TfIdf => 0.75,
        })
        .handler(move |req| {
            let query = req
                .payload
                .get("query")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing required field 'query'".to_string())?;
            let limit = req
                .payload
                .get("limit")
                .and_then(Json::as_usize)
                .unwrap_or(DEFAULT_LIMIT);
            let news = req
                .payload
                .get("news")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            let hits = if news {
                engine.search_news(query, limit)
            } else {
                engine.search(query, limit)
            };
            Ok(json!({
                "query": (query),
                "hits": (Json::Array(
                    hits.iter()
                        .map(|h| json!({
                            "url": (h.url.as_str()),
                            "title": (h.title.as_str()),
                            "snippet": (h.snippet.as_str()),
                            "score": (h.score),
                        }))
                        .collect(),
                )),
            }))
        })
        .build(env)
}

/// Builds the simulated web: a fetch service that serves every indexed
/// document as an HTML page.
pub fn web_fetch_service(env: &SimEnv, index: Arc<SearchIndex>) -> Arc<SimService> {
    SimService::builder("web-fetch", "web")
        .latency(LatencyModel::lognormal_ms(80.0, 0.5))
        .failures(FailurePlan::flaky(0.03))
        .handler(move |req| {
            let url = req
                .payload
                .get("url")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing required field 'url'".to_string())?;
            let doc = index
                .by_url(url)
                .ok_or_else(|| format!("404 not found: {url}"))?;
            Ok(json!({
                "url": (url),
                "html": (html::render(&doc.doc)),
            }))
        })
        .build(env)
}

/// Builds the standard two-engine fleet over one shared corpus:
/// `search-alpha` (BM25, slower, better) and `search-beta` (TF-IDF,
/// faster, worse), plus the `web-fetch` service.
pub fn standard_web(
    env: &SimEnv,
    seed: u64,
    corpus_size: usize,
) -> (Vec<Arc<SimService>>, Arc<SimService>, Arc<SearchIndex>) {
    let index = Arc::new(SearchIndex::with_generated_corpus(seed, corpus_size));
    let engines = vec![
        search_service(
            env,
            SearchEngine::new("search-alpha", RankerKind::Bm25, index.clone()),
            LatencyModel::lognormal_ms(90.0, 0.4),
            FailurePlan::flaky(0.02),
        ),
        search_service(
            env,
            SearchEngine::new("search-beta", RankerKind::TfIdf, index.clone()),
            LatencyModel::lognormal_ms(45.0, 0.4),
            FailurePlan::flaky(0.04),
        ),
    ];
    let web = web_fetch_service(env, index.clone());
    (engines, web, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_sim::service::Request;

    fn ok_invoke(svc: &SimService, req: &Request) -> Json {
        loop {
            let o = svc.invoke(req);
            if let Ok(resp) = o.result {
                return resp.payload;
            }
        }
    }

    #[test]
    fn search_service_returns_hits() {
        let env = SimEnv::with_seed(1);
        let (engines, _web, _idx) = standard_web(&env, 7, 150);
        let body = ok_invoke(
            &engines[0],
            &Request::new("search", json!({"query": "market growth", "limit": 5})),
        );
        let hits = body.get("hits").unwrap().as_array().unwrap();
        assert!(!hits.is_empty() && hits.len() <= 5);
        assert!(hits[0]
            .get("url")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("https://"));
    }

    #[test]
    fn news_flag_restricts_results() {
        let env = SimEnv::with_seed(2);
        let (engines, _web, idx) = standard_web(&env, 7, 150);
        let body = ok_invoke(
            &engines[1],
            &Request::new(
                "search",
                json!({"query": "market", "news": true, "limit": 20}),
            ),
        );
        for hit in body.get("hits").unwrap().as_array().unwrap() {
            let url = hit.get("url").unwrap().as_str().unwrap();
            assert!(idx.by_url(url).unwrap().doc.is_news, "{url}");
        }
    }

    #[test]
    fn missing_query_is_bad_request() {
        let env = SimEnv::with_seed(3);
        let (engines, _web, _idx) = standard_web(&env, 7, 50);
        // Retry through random flakiness until we get a definitive answer.
        loop {
            let o = engines[0].invoke(&Request::new("search", json!({})));
            match o.result {
                Err(cogsdk_sim::ServiceError::BadRequest(msg)) => {
                    assert!(msg.contains("query"));
                    break;
                }
                Err(_) => continue,
                Ok(_) => panic!("should not succeed"),
            }
        }
    }

    #[test]
    fn web_fetch_serves_searchable_urls() {
        let env = SimEnv::with_seed(4);
        let (engines, web, _idx) = standard_web(&env, 7, 100);
        let search = ok_invoke(
            &engines[0],
            &Request::new("search", json!({"query": "energy", "limit": 3})),
        );
        let url = search.pointer("/hits/0/url").unwrap().as_str().unwrap();
        let page = ok_invoke(&web, &Request::new("fetch", json!({"url": (url)})));
        let html = page.get("html").unwrap().as_str().unwrap();
        assert!(html.contains("<!DOCTYPE html>"));
        assert!(!crate::html::extract_text(html).is_empty());
    }

    #[test]
    fn web_fetch_unknown_url_404s() {
        let env = SimEnv::with_seed(5);
        let (_e, web, _i) = standard_web(&env, 7, 10);
        loop {
            let o = web.invoke(&Request::new(
                "fetch",
                json!({"url": "https://nope.example/x"}),
            ));
            match o.result {
                Err(cogsdk_sim::ServiceError::BadRequest(msg)) => {
                    assert!(msg.contains("404"));
                    break;
                }
                Err(_) => continue,
                Ok(_) => panic!("should not succeed"),
            }
        }
    }

    #[test]
    fn two_engines_share_one_corpus_but_rank_differently() {
        let env = SimEnv::with_seed(6);
        let (engines, _web, _idx) = standard_web(&env, 11, 200);
        assert_eq!(engines.len(), 2);
        assert!(engines[0].quality() > engines[1].quality());
    }
}
