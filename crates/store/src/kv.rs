//! Key-value stores.
//!
//! One trait, three implementations: an in-memory map, a file-backed store
//! (the paper's "local storage … in a file system"), and a simulated
//! remote cloud store reachable only through a [`SimService`].

use crate::StoreError;
use bytes::Bytes;
use cogsdk_json::{json, Json};
use cogsdk_sim::cost::CostModel;
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::fs::{FsError, RealFs, Vfs};
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::service::{Request, SimService};
use cogsdk_sim::SimEnv;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// A byte-oriented key-value store.
///
/// All methods take `&self`; implementations are internally synchronized
/// so stores can be shared across the SDK's worker threads.
pub trait KeyValueStore: Send + Sync {
    /// Stores `value` under `key`, replacing any previous value.
    ///
    /// # Errors
    ///
    /// Implementation-specific; remote stores surface unavailability.
    fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError>;

    /// Retrieves the value under `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if absent.
    fn get(&self, key: &str) -> Result<Bytes, StoreError>;

    /// Deletes `key`, returning whether it existed.
    ///
    /// # Errors
    ///
    /// Implementation-specific; deleting an absent key is *not* an error.
    fn delete(&self, key: &str) -> Result<bool, StoreError>;

    /// All keys in unspecified order.
    ///
    /// # Errors
    ///
    /// Implementation-specific.
    fn keys(&self) -> Result<Vec<String>, StoreError>;

    /// Number of stored entries.
    ///
    /// # Errors
    ///
    /// Implementation-specific.
    fn len(&self) -> Result<usize, StoreError> {
        Ok(self.keys()?.len())
    }

    /// Whether the store is empty.
    ///
    /// # Errors
    ///
    /// Implementation-specific.
    fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }
}

/// An in-memory key-value store.
///
/// # Examples
///
/// ```
/// use cogsdk_store::{KeyValueStore, MemoryKv};
/// use bytes::Bytes;
///
/// let kv = MemoryKv::new();
/// kv.put("k", Bytes::from("v")).unwrap();
/// assert_eq!(kv.get("k").unwrap(), Bytes::from("v"));
/// assert!(kv.delete("k").unwrap());
/// assert!(kv.get("k").is_err());
/// ```
#[derive(Debug, Default)]
pub struct MemoryKv {
    map: RwLock<BTreeMap<String, Bytes>>,
}

impl MemoryKv {
    /// Creates an empty store.
    pub fn new() -> MemoryKv {
        MemoryKv::default()
    }
}

impl KeyValueStore for MemoryKv {
    fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError> {
        self.map.write().insert(key.to_string(), value);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes, StoreError> {
        self.map
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(key.to_string()))
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        Ok(self.map.write().remove(key).is_some())
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        Ok(self.map.read().keys().cloned().collect())
    }
}

/// A file-backed key-value store: one file per key inside a directory.
///
/// Keys are percent-encoded into file names, so arbitrary key strings are
/// safe. Writes are *crash-safe*: each put lands in a temp file which is
/// fsynced and then atomically renamed over the live name, so a reader
/// after a crash sees either the old value or the new one — never a torn
/// mixture. All I/O goes through a [`Vfs`], so the same code runs on the
/// real filesystem ([`FileKv::open`]) or a fault-injecting simulated one
/// ([`FileKv::on_vfs`]).
pub struct FileKv {
    fs: Arc<dyn Vfs>,
}

impl std::fmt::Debug for FileKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileKv").finish_non_exhaustive()
    }
}

/// In-flight temp suffix; never ends in `.kv`, so [`FileKv::keys`] skips
/// these automatically.
const PUT_TMP_SUFFIX: &str = ".tmp";

fn io_store(op: &str, e: FsError) -> StoreError {
    StoreError::Io(format!("{op}: {e}"))
}

impl FileKv {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileKv, StoreError> {
        let dir = dir.into();
        let fs = RealFs::open(&dir).map_err(|e| io_store("open", e))?;
        Ok(FileKv::on_vfs(Arc::new(fs)))
    }

    /// A store over an explicit virtual filesystem (e.g. a seeded,
    /// fault-injecting `SimFs` for crash testing).
    pub fn on_vfs(fs: Arc<dyn Vfs>) -> FileKv {
        FileKv { fs }
    }

    fn name_for(&self, key: &str) -> String {
        let mut name = String::with_capacity(key.len());
        for b in key.bytes() {
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => {
                    name.push(b as char)
                }
                other => name.push_str(&format!("%{other:02x}")),
            }
        }
        name + ".kv"
    }
}

impl KeyValueStore for FileKv {
    fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError> {
        // Temp → fsync → rename: a crash at any point leaves the live
        // name holding the complete old value or the complete new one.
        let name = self.name_for(key);
        let tmp = format!("{name}{PUT_TMP_SUFFIX}");
        self.fs
            .write(&tmp, &value)
            .map_err(|e| io_store("write", e))?;
        self.fs.fsync(&tmp).map_err(|e| io_store("fsync", e))?;
        self.fs
            .rename(&tmp, &name)
            .map_err(|e| io_store("rename", e))
    }

    fn get(&self, key: &str) -> Result<Bytes, StoreError> {
        match self.fs.read(&self.name_for(key)) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(FsError::NotFound(_)) => Err(StoreError::NotFound(key.to_string())),
            Err(e) => Err(io_store("read", e)),
        }
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        let name = self.name_for(key);
        let existed = self.fs.exists(&name);
        self.fs.delete(&name).map_err(|e| io_store("delete", e))?;
        Ok(existed)
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        let entries = self.fs.list().map_err(|e| io_store("list", e))?;
        let mut keys = Vec::new();
        for name in entries {
            // In-flight `.tmp` temps (and any other foreign suffix) are
            // not live entries.
            let Some(stem) = name.strip_suffix(".kv") else {
                continue;
            };
            // Percent-decode.
            let mut key = String::new();
            let bytes = stem.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                // Both hex digits must exist: a foreign file with a
                // truncated escape must not slice out of bounds.
                if bytes[i] == b'%' && i + 2 < bytes.len() {
                    let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                    if let Ok(v) = u8::from_str_radix(hex, 16) {
                        key.push(v as char);
                        i += 3;
                        continue;
                    }
                }
                key.push(bytes[i] as char);
                i += 1;
            }
            keys.push(key);
        }
        keys.sort();
        Ok(keys)
    }
}

/// Builds a simulated *remote cloud* key-value store service.
///
/// Protocol (class `"storage"`):
/// * `{"op": "put", "key": k, "value": hex}` → `{"ok": true}`
/// * `{"op": "get", "key": k}` → `{"value": hex}` (404 → bad request)
/// * `{"op": "delete", "key": k}` → `{"existed": bool}`
///
/// Latency is size-dependent ([`LatencyModel::SizeLinear`]), the exact
/// setting the paper's latency-parameter prediction targets.
pub fn remote_kv_service(
    env: &SimEnv,
    name: impl Into<String>,
    latency: LatencyModel,
    failures: FailurePlan,
    cost: CostModel,
) -> Arc<SimService> {
    let backing = MemoryKv::new();
    SimService::builder(name, "storage")
        .latency(latency)
        .failures(failures)
        .cost(cost)
        .handler(move |req| {
            let op = req
                .payload
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing 'op'".to_string())?;
            let key = req
                .payload
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing 'key'".to_string())?;
            match op {
                "put" => {
                    let hex = req
                        .payload
                        .get("value")
                        .and_then(Json::as_str)
                        .ok_or_else(|| "missing 'value'".to_string())?;
                    let bytes = hex_decode(hex).map_err(|e| e.to_string())?;
                    backing.put(key, bytes).map_err(|e| e.to_string())?;
                    Ok(json!({"ok": true}))
                }
                "get" => match backing.get(key) {
                    Ok(v) => Ok(json!({"value": (hex_encode(&v))})),
                    Err(StoreError::NotFound(_)) => Err(format!("404 no such key: {key}")),
                    Err(e) => Err(e.to_string()),
                },
                "delete" => {
                    let existed = backing.delete(key).map_err(|e| e.to_string())?;
                    Ok(json!({"existed": (existed)}))
                }
                other => Err(format!("unknown op: {other}")),
            }
        })
        .build(env)
}

/// A [`KeyValueStore`] view over a remote storage service: each operation
/// is one service invocation.
#[derive(Debug, Clone)]
pub struct RemoteKv {
    service: Arc<SimService>,
}

impl RemoteKv {
    /// Wraps a storage-class service.
    pub fn new(service: Arc<SimService>) -> RemoteKv {
        RemoteKv { service }
    }

    /// The underlying service (e.g. to inspect cost/latency counters).
    pub fn service(&self) -> &Arc<SimService> {
        &self.service
    }

    fn call(&self, payload: Json) -> Result<Json, StoreError> {
        let size = payload.size_bytes();
        let req = Request::new("kv", payload).with_param("size", size as f64);
        let out = self.service.invoke(&req);
        match out.result {
            Ok(resp) => Ok(resp.payload),
            Err(cogsdk_sim::ServiceError::BadRequest(msg)) if msg.starts_with("404") => {
                Err(StoreError::NotFound(msg))
            }
            Err(e) => Err(StoreError::RemoteUnavailable(e.to_string())),
        }
    }
}

impl KeyValueStore for RemoteKv {
    fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError> {
        self.call(json!({"op": "put", "key": (key), "value": (hex_encode(&value))}))
            .map(|_| ())
    }

    fn get(&self, key: &str) -> Result<Bytes, StoreError> {
        let resp = self.call(json!({"op": "get", "key": (key)}))?;
        let hex = resp
            .get("value")
            .and_then(Json::as_str)
            .ok_or_else(|| StoreError::Malformed("missing value".into()))?;
        hex_decode(hex)
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        let resp = self.call(json!({"op": "delete", "key": (key)}))?;
        Ok(resp.get("existed").and_then(Json::as_bool).unwrap_or(false))
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        // The remote protocol deliberately has no listing op (most cloud
        // KV APIs meter scans); offline sync tracks its own key set.
        Err(StoreError::Conflict(
            "remote store does not support key listing".into(),
        ))
    }
}

/// Hex-encodes bytes (the wire encoding for binary values in JSON).
pub fn hex_encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes [`hex_encode`] output.
///
/// # Errors
///
/// [`StoreError::Malformed`] on odd length or non-hex characters.
pub fn hex_decode(s: &str) -> Result<Bytes, StoreError> {
    if !s.len().is_multiple_of(2) {
        return Err(StoreError::Malformed("odd-length hex".into()));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| StoreError::Malformed("bad hex digit".into()))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| StoreError::Malformed("bad hex digit".into()))?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(Bytes::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(kv: &dyn KeyValueStore) {
        assert!(kv.is_empty().unwrap());
        kv.put("a", Bytes::from("1")).unwrap();
        kv.put("b/with slash", Bytes::from(vec![0u8, 255, 7]))
            .unwrap();
        assert_eq!(kv.get("a").unwrap(), Bytes::from("1"));
        assert_eq!(
            kv.get("b/with slash").unwrap(),
            Bytes::from(vec![0u8, 255, 7])
        );
        assert!(matches!(kv.get("missing"), Err(StoreError::NotFound(_))));
        kv.put("a", Bytes::from("2")).unwrap();
        assert_eq!(kv.get("a").unwrap(), Bytes::from("2"));
        let mut keys = kv.keys().unwrap();
        keys.sort();
        assert_eq!(keys, vec!["a", "b/with slash"]);
        assert!(kv.delete("a").unwrap());
        assert!(!kv.delete("a").unwrap());
        assert_eq!(kv.len().unwrap(), 1);
    }

    #[test]
    fn memory_kv_contract() {
        exercise(&MemoryKv::new());
    }

    #[test]
    fn file_kv_contract() {
        let dir = std::env::temp_dir().join(format!("cogsdk-filekv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let kv = FileKv::open(&dir).unwrap();
        exercise(&kv);
        // Persistence across handles.
        let kv2 = FileKv::open(&dir).unwrap();
        assert_eq!(
            kv2.get("b/with slash").unwrap(),
            Bytes::from(vec![0u8, 255, 7])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_kv_keys_tolerate_foreign_malformed_names() {
        // A file with a truncated percent escape (not produced by this
        // store) must not panic key listing.
        let dir = std::env::temp_dir().join(format!("cogsdk-filekv-mal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let kv = FileKv::open(&dir).unwrap();
        kv.put("good key", Bytes::from("v")).unwrap();
        std::fs::write(dir.join("trunc%2.kv"), b"x").unwrap();
        std::fs::write(dir.join("bad%zz.kv"), b"x").unwrap();
        let keys = kv.keys().unwrap();
        assert!(keys.contains(&"good key".to_string()), "{keys:?}");
        assert_eq!(keys.len(), 3, "foreign names listed verbatim: {keys:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_kv_put_is_atomic_across_seeded_crash_points() {
        use cogsdk_sim::fs::SimFs;
        // For every crash point inside a put, a post-crash reader sees
        // the complete old value or the complete new one — never a torn
        // prefix, never a missing key.
        for seed in 0..40u64 {
            let fs = Arc::new(SimFs::new(seed));
            let kv = FileKv::on_vfs(fs.clone());
            kv.put("k", Bytes::from("old-value")).unwrap();
            // A put is write + fsync + rename = 3 fs ops; crash at each.
            let crash_at = seed % 3;
            fs.fail_after_ops(crash_at);
            let result = kv.put("k", Bytes::from("NEW-VALUE-LONGER"));
            assert!(result.is_err(), "armed op must fail (seed {seed})");
            assert!(
                matches!(result, Err(StoreError::Io(_))),
                "local fault maps to Io: {result:?}"
            );
            fs.crash();
            let kv = FileKv::on_vfs(fs);
            let value = kv.get("k").expect("key survives every crash point");
            assert!(
                value == Bytes::from("old-value") || value == Bytes::from("NEW-VALUE-LONGER"),
                "torn value after crash at op {crash_at} (seed {seed}): {value:?}"
            );
            // Any leftover temp file is invisible to listing.
            assert_eq!(kv.keys().unwrap(), vec!["k"]);
        }
    }

    #[test]
    fn file_kv_crashed_first_put_leaves_key_absent_or_complete() {
        use cogsdk_sim::fs::SimFs;
        for crash_at in 0..3u64 {
            let fs = Arc::new(SimFs::new(100 + crash_at));
            let kv = FileKv::on_vfs(fs.clone());
            fs.fail_after_ops(crash_at);
            assert!(kv.put("fresh", Bytes::from("payload")).is_err());
            fs.crash();
            let kv = FileKv::on_vfs(fs);
            match kv.get("fresh") {
                Ok(v) => assert_eq!(v, Bytes::from("payload"), "complete if present"),
                Err(StoreError::NotFound(_)) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn hex_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        let hex = hex_encode(&data);
        assert_eq!(hex_decode(&hex).unwrap(), Bytes::from(data));
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
        assert_eq!(hex_decode("").unwrap(), Bytes::new());
    }

    #[test]
    fn remote_kv_round_trip() {
        let env = SimEnv::with_seed(1);
        let svc = remote_kv_service(
            &env,
            "cloud-kv",
            LatencyModel::constant_ms(10.0),
            FailurePlan::reliable(),
            CostModel::Free,
        );
        let kv = RemoteKv::new(svc);
        kv.put("k", Bytes::from("hello")).unwrap();
        assert_eq!(kv.get("k").unwrap(), Bytes::from("hello"));
        assert!(matches!(kv.get("nope"), Err(StoreError::NotFound(_))));
        assert!(kv.delete("k").unwrap());
        assert!(!kv.delete("k").unwrap());
        assert!(kv.keys().is_err(), "remote listing unsupported");
    }

    #[test]
    fn remote_kv_latency_grows_with_value_size() {
        let env = SimEnv::with_seed(2);
        let svc = remote_kv_service(
            &env,
            "cloud-kv",
            LatencyModel::size_linear_ms(2.0, 0.001),
            FailurePlan::reliable(),
            CostModel::Free,
        );
        let kv = RemoteKv::new(svc);
        let t0 = env.clock().now();
        kv.put("small", Bytes::from(vec![0u8; 10])).unwrap();
        let t1 = env.clock().now();
        kv.put("large", Bytes::from(vec![0u8; 100_000])).unwrap();
        let t2 = env.clock().now();
        let small = t1.since(t0);
        let large = t2.since(t1);
        assert!(large > small * 10, "small={small:?} large={large:?}");
    }

    #[test]
    fn remote_kv_surfaces_outage_as_unavailable() {
        let env = SimEnv::with_seed(3);
        let svc = remote_kv_service(
            &env,
            "down-kv",
            LatencyModel::constant_ms(1.0),
            FailurePlan::flaky(1.0),
            CostModel::Free,
        );
        let kv = RemoteKv::new(svc);
        assert!(matches!(
            kv.put("k", Bytes::from("v")),
            Err(StoreError::RemoteUnavailable(_))
        ));
    }

    #[test]
    fn stores_are_object_safe_and_shareable() {
        let kv: Arc<dyn KeyValueStore> = Arc::new(MemoryKv::new());
        let kv2 = kv.clone();
        std::thread::spawn(move || {
            kv2.put("t", Bytes::from("1")).unwrap();
        })
        .join()
        .unwrap();
        assert_eq!(kv.get("t").unwrap(), Bytes::from("1"));
    }
}
