//! Client-side encryption with integrity protection.
//!
//! §3: "The personalized knowledge base provides encryption to preserve
//! data confidentiality. Data can be encrypted before it is stored
//! persistently… if the remote data store is not trusted, then the
//! personal knowledge base might need to encrypt confidential data before
//! sending it" regardless of what the store itself offers.
//!
//! **This is a pedagogical cipher, not production cryptography.** It is an
//! XTEA block cipher (64-bit blocks, 128-bit key, 64 rounds) in counter
//! mode with a keyed tag for tamper detection. The experiments only rely
//! on its *placement* (client-side, before the wire) and *cost*; a real
//! deployment would substitute AES-GCM without any interface change.

use crate::StoreError;
use bytes::Bytes;

/// A 128-bit symmetric key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Key([u32; 4]);

impl Key {
    /// Creates a key from 16 bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Key {
        let mut words = [0u32; 4];
        for (i, chunk) in bytes.chunks(4).enumerate() {
            words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Key(words)
    }

    /// Derives a key from a passphrase (iterated mixing; again, a stand-in
    /// for a real KDF).
    pub fn derive(passphrase: &str) -> Key {
        let mut state = [0x9E3779B9u32, 0x243F6A88, 0xB7E15162, 0xDEADBEEF];
        for (i, b) in passphrase.bytes().enumerate() {
            let slot = i % 4;
            state[slot] = state[slot]
                .wrapping_mul(16777619)
                .wrapping_add(u32::from(b))
                .rotate_left(13);
            // Diffuse across words.
            state[(slot + 1) % 4] ^= state[slot];
        }
        for _ in 0..64 {
            for i in 0..4 {
                state[i] = state[i]
                    .wrapping_add(state[(i + 1) % 4].rotate_left(7))
                    .rotate_left(11);
            }
        }
        Key(state)
    }
}

const ROUNDS: u32 = 32;
const DELTA: u32 = 0x9E3779B9;

/// Encrypts one 64-bit block with XTEA.
fn encrypt_block(key: &Key, block: u64) -> u64 {
    let mut v0 = (block >> 32) as u32;
    let mut v1 = block as u32;
    let k = key.0;
    let mut sum = 0u32;
    for _ in 0..ROUNDS {
        v0 = v0.wrapping_add(
            ((v1 << 4 ^ v1 >> 5).wrapping_add(v1)) ^ (sum.wrapping_add(k[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(DELTA);
        v1 = v1.wrapping_add(
            ((v0 << 4 ^ v0 >> 5).wrapping_add(v0))
                ^ (sum.wrapping_add(k[((sum >> 11) & 3) as usize])),
        );
    }
    (u64::from(v0) << 32) | u64::from(v1)
}

/// Encrypts `plaintext` under `key` with a fresh `nonce`.
///
/// Layout of the output: `nonce (8 bytes) || ciphertext || tag (8 bytes)`.
/// The same `(key, nonce)` pair must never be reused for different
/// plaintexts (counter-mode caveat); the enhanced client derives nonces
/// from a per-client counter.
pub fn encrypt(key: &Key, nonce: u64, plaintext: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(plaintext.len() + 16);
    out.extend_from_slice(&nonce.to_le_bytes());
    // CTR keystream.
    for (i, chunk) in plaintext.chunks(8).enumerate() {
        let ks = encrypt_block(key, nonce ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let ks_bytes = ks.to_le_bytes();
        for (j, &b) in chunk.iter().enumerate() {
            out.push(b ^ ks_bytes[j]);
        }
    }
    let tag = tag(key, nonce, &out[8..]);
    out.extend_from_slice(&tag.to_le_bytes());
    Bytes::from(out)
}

/// Decrypts and verifies the output of [`encrypt`].
///
/// # Errors
///
/// [`StoreError::IntegrityFailure`] if the tag does not verify (wrong key
/// or tampered data); [`StoreError::Malformed`] if the envelope is too
/// short.
pub fn decrypt(key: &Key, data: &[u8]) -> Result<Bytes, StoreError> {
    if data.len() < 16 {
        return Err(StoreError::Malformed("ciphertext too short".into()));
    }
    let nonce = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
    let body = &data[8..data.len() - 8];
    let got_tag = u64::from_le_bytes(data[data.len() - 8..].try_into().expect("8 bytes"));
    if tag(key, nonce, body) != got_tag {
        return Err(StoreError::IntegrityFailure);
    }
    let mut out = Vec::with_capacity(body.len());
    for (i, chunk) in body.chunks(8).enumerate() {
        let ks = encrypt_block(key, nonce ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let ks_bytes = ks.to_le_bytes();
        for (j, &b) in chunk.iter().enumerate() {
            out.push(b ^ ks_bytes[j]);
        }
    }
    Ok(Bytes::from(out))
}

/// A keyed tag over the ciphertext (encrypt-then-MAC shape).
fn tag(key: &Key, nonce: u64, ciphertext: &[u8]) -> u64 {
    let mut acc = nonce ^ 0xA5A5_5A5A_0F0F_F0F0;
    for chunk in ciphertext.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = encrypt_block(key, acc ^ u64::from_le_bytes(word));
    }
    // Bind the length to reject truncation.
    encrypt_block(key, acc ^ ciphertext.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key::derive("correct horse battery staple")
    }

    #[test]
    fn round_trip_various_sizes() {
        let k = key();
        for size in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let data: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
            let ct = encrypt(&k, size as u64, &data);
            assert_eq!(decrypt(&k, &ct).unwrap(), Bytes::from(data), "size {size}");
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let k = key();
        let data = b"attack at dawn, attack at dawn!!";
        let ct = encrypt(&k, 1, data);
        assert!(!ct.windows(data.len()).any(|w| w == &data[..]));
    }

    #[test]
    fn different_nonces_different_ciphertexts() {
        let k = key();
        let data = b"same plaintext";
        assert_ne!(encrypt(&k, 1, data), encrypt(&k, 2, data));
    }

    #[test]
    fn wrong_key_fails_integrity() {
        let ct = encrypt(&key(), 7, b"secret");
        let other = Key::derive("other passphrase");
        assert_eq!(decrypt(&other, &ct), Err(StoreError::IntegrityFailure));
    }

    #[test]
    fn tampering_detected() {
        let k = key();
        let ct = encrypt(&k, 9, b"important ledger entry");
        // Flip each byte in turn; every flip must be caught.
        for i in 0..ct.len() {
            let mut bad = ct.to_vec();
            bad[i] ^= 0x40;
            assert_eq!(
                decrypt(&k, &bad),
                Err(StoreError::IntegrityFailure),
                "byte {i}"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let k = key();
        let ct = encrypt(&k, 3, b"0123456789abcdef");
        let shortened = &ct[..ct.len() - 9];
        assert!(decrypt(&k, shortened).is_err());
        assert!(matches!(
            decrypt(&k, &ct[..10]),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn key_derivation_is_deterministic_and_sensitive() {
        assert_eq!(Key::derive("abc"), Key::derive("abc"));
        assert_ne!(Key::derive("abc"), Key::derive("abd"));
        assert_ne!(Key::derive(""), Key::derive("a"));
    }

    #[test]
    fn from_bytes_round_trip() {
        let k = Key::from_bytes(*b"0123456789abcdef");
        let ct = encrypt(&k, 5, b"payload");
        assert_eq!(decrypt(&k, &ct).unwrap(), Bytes::from(&b"payload"[..]));
    }

    #[test]
    fn known_block_vector_changes_bits() {
        // Sanity: encryption is not the identity and is deterministic.
        let k = Key::from_bytes([0u8; 16]);
        let c1 = encrypt_block(&k, 0);
        let c2 = encrypt_block(&k, 0);
        assert_eq!(c1, c2);
        assert_ne!(c1, 0);
        assert_ne!(encrypt_block(&k, 1), c1);
    }
}
