//! A mini relational engine — the MySQL stand-in.
//!
//! Supports exactly what the knowledge base needs (§3): typed schemas,
//! insert/select/update/delete with predicates, projections, and
//! conversion to and from CSV (see [`crate::csv`]) and RDF (in
//! `cogsdk-kb`).

use crate::StoreError;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Whether this value inhabits `ty` (NULL inhabits every type).
    pub fn matches(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ColumnType::Int)
                | (Value::Float(_), ColumnType::Float)
                | (Value::Text(_), ColumnType::Text)
                | (Value::Bool(_), ColumnType::Bool)
        )
    }

    /// Numeric view (Int and Float only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// A row: one value per schema column.
pub type Row = Vec<Value>;

/// A table schema.
///
/// # Examples
///
/// ```
/// use cogsdk_store::{Schema, ColumnType};
///
/// let schema = Schema::new(vec![
///     ("country", ColumnType::Text),
///     ("gdp", ColumnType::Float),
/// ]).unwrap();
/// assert_eq!(schema.column_index("gdp"), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Creates a schema from `(name, type)` pairs.
    ///
    /// # Errors
    ///
    /// [`StoreError::Conflict`] for duplicate or empty column names, or an
    /// empty column list.
    pub fn new<N: Into<String>>(columns: Vec<(N, ColumnType)>) -> Result<Schema, StoreError> {
        let columns: Vec<(String, ColumnType)> =
            columns.into_iter().map(|(n, t)| (n.into(), t)).collect();
        if columns.is_empty() {
            return Err(StoreError::Conflict(
                "schema needs at least one column".into(),
            ));
        }
        for (i, (name, _)) in columns.iter().enumerate() {
            if name.is_empty() {
                return Err(StoreError::Conflict("empty column name".into()));
            }
            if columns[..i].iter().any(|(n, _)| n == name) {
                return Err(StoreError::Conflict(format!("duplicate column: {name}")));
            }
        }
        Ok(Schema { columns })
    }

    /// The columns in order.
    pub fn columns(&self) -> &[(String, ColumnType)] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Validates a row against the schema.
    ///
    /// # Errors
    ///
    /// [`StoreError::TypeMismatch`] if the arity or any cell type is wrong.
    pub fn validate(&self, row: &Row) -> Result<(), StoreError> {
        if row.len() != self.columns.len() {
            return Err(StoreError::TypeMismatch(format!(
                "expected {} values, got {}",
                self.columns.len(),
                row.len()
            )));
        }
        for (value, (name, ty)) in row.iter().zip(&self.columns) {
            if !value.matches(*ty) {
                return Err(StoreError::TypeMismatch(format!(
                    "column {name} expects {ty:?}, got {value:?}"
                )));
            }
        }
        Ok(())
    }
}

/// A row predicate for selects, updates and deletes.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Column equals value.
    Eq(String, Value),
    /// Column differs from value (NULL-safe: NULL != anything).
    Ne(String, Value),
    /// Numeric column strictly less than.
    Lt(String, f64),
    /// Numeric column strictly greater than.
    Gt(String, f64),
    /// Text column contains substring.
    Contains(String, String),
    /// Column is NULL.
    IsNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Combines with logical AND.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Combines with logical OR.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    fn eval(&self, schema: &Schema, row: &Row) -> Result<bool, StoreError> {
        let col = |name: &str| -> Result<&Value, StoreError> {
            schema
                .column_index(name)
                .map(|i| &row[i])
                .ok_or_else(|| StoreError::NotFound(format!("column {name}")))
        };
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => col(c)? == v,
            Predicate::Ne(c, v) => {
                let cell = col(c)?;
                !matches!(cell, Value::Null) && cell != v
            }
            Predicate::Lt(c, x) => col(c)?.as_f64().is_some_and(|v| v < *x),
            Predicate::Gt(c, x) => col(c)?.as_f64().is_some_and(|v| v > *x),
            Predicate::Contains(c, s) => col(c)?.as_text().is_some_and(|t| t.contains(s)),
            Predicate::IsNull(c) => matches!(col(c)?, Value::Null),
            Predicate::And(a, b) => a.eval(schema, row)? && b.eval(schema, row)?,
            Predicate::Or(a, b) => a.eval(schema, row)? || b.eval(schema, row)?,
            Predicate::Not(p) => !p.eval(schema, row)?,
        })
    }
}

/// One table: a schema plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a validated row.
    ///
    /// # Errors
    ///
    /// [`StoreError::TypeMismatch`] if the row does not fit the schema.
    pub fn insert(&mut self, row: Row) -> Result<(), StoreError> {
        self.schema.validate(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Selects rows matching `predicate`, projecting the named columns
    /// (empty projection = all columns).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for unknown columns in the predicate or
    /// projection.
    pub fn select(
        &self,
        predicate: &Predicate,
        projection: &[&str],
    ) -> Result<Vec<Row>, StoreError> {
        let proj_idx: Vec<usize> = projection
            .iter()
            .map(|name| {
                self.schema
                    .column_index(name)
                    .ok_or_else(|| StoreError::NotFound(format!("column {name}")))
            })
            .collect::<Result<_, _>>()?;
        let mut out = Vec::new();
        for row in &self.rows {
            if predicate.eval(&self.schema, row)? {
                if proj_idx.is_empty() {
                    out.push(row.clone());
                } else {
                    out.push(proj_idx.iter().map(|&i| row[i].clone()).collect());
                }
            }
        }
        Ok(out)
    }

    /// Updates `column` to `value` on matching rows; returns the count.
    ///
    /// # Errors
    ///
    /// Unknown column or type mismatch.
    pub fn update(
        &mut self,
        predicate: &Predicate,
        column: &str,
        value: Value,
    ) -> Result<usize, StoreError> {
        let idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| StoreError::NotFound(format!("column {column}")))?;
        let ty = self.schema.columns()[idx].1;
        if !value.matches(ty) {
            return Err(StoreError::TypeMismatch(format!(
                "column {column} expects {ty:?}"
            )));
        }
        let mut count = 0;
        // Two passes keep the borrow checker happy: evaluate, then mutate.
        let matches: Vec<bool> = self
            .rows
            .iter()
            .map(|row| predicate.eval(&self.schema, row))
            .collect::<Result<_, _>>()?;
        for (row, hit) in self.rows.iter_mut().zip(matches) {
            if hit {
                row[idx] = value.clone();
                count += 1;
            }
        }
        Ok(count)
    }

    /// Deletes matching rows; returns the count.
    ///
    /// # Errors
    ///
    /// Unknown predicate column.
    pub fn delete_rows(&mut self, predicate: &Predicate) -> Result<usize, StoreError> {
        let before = self.rows.len();
        let matches: Vec<bool> = self
            .rows
            .iter()
            .map(|row| predicate.eval(&self.schema, row))
            .collect::<Result<_, _>>()?;
        let mut it = matches.into_iter();
        self.rows.retain(|_| !it.next().expect("same length"));
        Ok(before - self.rows.len())
    }
}

/// A named collection of tables — the "database".
#[derive(Debug, Default)]
pub struct TableStore {
    tables: RwLock<BTreeMap<String, Table>>,
}

impl TableStore {
    /// Creates an empty store.
    pub fn new() -> TableStore {
        TableStore::default()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// [`StoreError::Conflict`] if the name is taken.
    pub fn create_table(&self, name: impl Into<String>, schema: Schema) -> Result<(), StoreError> {
        let name = name.into();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(StoreError::Conflict(format!("table exists: {name}")));
        }
        tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Drops a table, returning it.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if absent.
    pub fn drop_table(&self, name: &str) -> Result<Table, StoreError> {
        self.tables
            .write()
            .remove(name)
            .ok_or_else(|| StoreError::NotFound(format!("table {name}")))
    }

    /// Runs `f` with read access to a table.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if absent.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&Table) -> R) -> Result<R, StoreError> {
        let tables = self.tables.read();
        let table = tables
            .get(name)
            .ok_or_else(|| StoreError::NotFound(format!("table {name}")))?;
        Ok(f(table))
    }

    /// Runs `f` with write access to a table.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if absent.
    pub fn with_table_mut<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Table) -> R,
    ) -> Result<R, StoreError> {
        let mut tables = self.tables.write();
        let table = tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NotFound(format!("table {name}")))?;
        Ok(f(table))
    }

    /// Inserts a row into a named table.
    ///
    /// # Errors
    ///
    /// Missing table or schema mismatch.
    pub fn insert(&self, table: &str, row: Row) -> Result<(), StoreError> {
        self.with_table_mut(table, |t| t.insert(row))?
    }

    /// Selects from a named table.
    ///
    /// # Errors
    ///
    /// Missing table or unknown columns.
    pub fn select(
        &self,
        table: &str,
        predicate: &Predicate,
        projection: &[&str],
    ) -> Result<Vec<Row>, StoreError> {
        self.with_table(table, |t| t.select(predicate, projection))?
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn country_table() -> Table {
        let schema = Schema::new(vec![
            ("country", ColumnType::Text),
            ("gdp", ColumnType::Float),
            ("population", ColumnType::Int),
            ("developed", ColumnType::Bool),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![
            "united_states".into(),
            21000.0.into(),
            Value::Int(331),
            true.into(),
        ])
        .unwrap();
        t.insert(vec![
            "germany".into(),
            4200.0.into(),
            Value::Int(83),
            true.into(),
        ])
        .unwrap();
        t.insert(vec![
            "india".into(),
            3700.0.into(),
            Value::Int(1400),
            false.into(),
        ])
        .unwrap();
        t.insert(vec![
            "unknown".into(),
            Value::Null,
            Value::Null,
            false.into(),
        ])
        .unwrap();
        t
    }

    #[test]
    fn schema_rejects_duplicates_and_empty() {
        assert!(Schema::new::<String>(vec![]).is_err());
        assert!(Schema::new(vec![("a", ColumnType::Int), ("a", ColumnType::Int)]).is_err());
        assert!(Schema::new(vec![("", ColumnType::Int)]).is_err());
    }

    #[test]
    fn insert_validates_types_and_arity() {
        let mut t = country_table();
        assert!(matches!(
            t.insert(vec!["x".into()]),
            Err(StoreError::TypeMismatch(_))
        ));
        assert!(matches!(
            t.insert(vec![Value::Int(1), 1.0.into(), Value::Int(1), true.into()]),
            Err(StoreError::TypeMismatch(_))
        ));
        // NULL fits any column.
        t.insert(vec![Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
    }

    #[test]
    fn select_with_predicates() {
        let t = country_table();
        let rich = t.select(&Predicate::Gt("gdp".into(), 4000.0), &[]).unwrap();
        assert_eq!(rich.len(), 2);
        let dev = t
            .select(
                &Predicate::Eq("developed".into(), Value::Bool(true)),
                &["country"],
            )
            .unwrap();
        assert_eq!(dev.len(), 2);
        assert_eq!(dev[0], vec![Value::Text("united_states".into())]);
        let nulls = t
            .select(&Predicate::IsNull("gdp".into()), &["country"])
            .unwrap();
        assert_eq!(nulls.len(), 1);
    }

    #[test]
    fn compound_predicates() {
        let t = country_table();
        let p = Predicate::Gt("gdp".into(), 3000.0)
            .and(Predicate::Eq("developed".into(), Value::Bool(false)));
        assert_eq!(t.select(&p, &[]).unwrap().len(), 1);
        let p = Predicate::Eq("country".into(), "germany".into())
            .or(Predicate::Eq("country".into(), "india".into()));
        assert_eq!(t.select(&p, &[]).unwrap().len(), 2);
        let p = Predicate::Not(Box::new(Predicate::True));
        assert!(t.select(&p, &[]).unwrap().is_empty());
    }

    #[test]
    fn ne_is_null_safe() {
        let t = country_table();
        // NULL gdp row must not match Ne.
        let p = Predicate::Ne("gdp".into(), Value::Float(21000.0));
        assert_eq!(t.select(&p, &[]).unwrap().len(), 2);
    }

    #[test]
    fn contains_predicate() {
        let t = country_table();
        let p = Predicate::Contains("country".into(), "united".into());
        assert_eq!(t.select(&p, &[]).unwrap().len(), 1);
    }

    #[test]
    fn unknown_columns_error() {
        let t = country_table();
        assert!(t
            .select(&Predicate::Eq("nope".into(), Value::Null), &[])
            .is_err());
        assert!(t.select(&Predicate::True, &["nope"]).is_err());
    }

    #[test]
    fn update_and_delete() {
        let mut t = country_table();
        let n = t
            .update(
                &Predicate::Eq("country".into(), "india".into()),
                "developed",
                true.into(),
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            t.select(&Predicate::Eq("developed".into(), Value::Bool(true)), &[])
                .unwrap()
                .len(),
            3
        );
        assert!(matches!(
            t.update(&Predicate::True, "gdp", Value::Text("x".into())),
            Err(StoreError::TypeMismatch(_))
        ));
        let removed = t.delete_rows(&Predicate::IsNull("gdp".into())).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn table_store_lifecycle() {
        let store = TableStore::new();
        let schema = Schema::new(vec![("k", ColumnType::Text)]).unwrap();
        store.create_table("t", schema.clone()).unwrap();
        assert!(matches!(
            store.create_table("t", schema),
            Err(StoreError::Conflict(_))
        ));
        store.insert("t", vec!["v".into()]).unwrap();
        let rows = store.select("t", &Predicate::True, &[]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(store.table_names(), vec!["t"]);
        assert!(store.insert("missing", vec!["v".into()]).is_err());
        store.drop_table("t").unwrap();
        assert!(store.drop_table("t").is_err());
    }

    #[test]
    fn update_returns_zero_on_no_match() {
        let mut t = country_table();
        let n = t
            .update(
                &Predicate::Eq("country".into(), "narnia".into()),
                "developed",
                true.into(),
            )
            .unwrap();
        assert_eq!(n, 0);
        assert!(matches!(
            t.update(&Predicate::True, "nope", Value::Null),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn delete_rows_with_always_true_empties_table() {
        let mut t = country_table();
        let n = t.delete_rows(&Predicate::True).unwrap();
        assert_eq!(n, 4);
        assert!(t.is_empty());
        // Deleting again removes nothing.
        assert_eq!(t.delete_rows(&Predicate::True).unwrap(), 0);
    }

    #[test]
    fn select_projection_order_matches_request() {
        let t = country_table();
        let rows = t
            .select(
                &Predicate::Eq("country".into(), "germany".into()),
                &["population", "country"],
            )
            .unwrap();
        assert_eq!(rows[0][0], Value::Int(83));
        assert_eq!(rows[0][1], Value::Text("germany".into()));
    }

    #[test]
    fn value_conversions_and_display() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("ss"), Value::Text("ss".into()));
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
