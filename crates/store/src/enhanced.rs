//! The enhanced data store client.
//!
//! Reference \[11\] of the paper ("Providing Enhanced Functionality for Data
//! Store Clients", ICDE 2017) describes clients that add caching,
//! encryption and compression in front of cloud data stores; the
//! personalized knowledge base "uses enhanced data store clients which
//! reduce the latency for accessing remote data stores via caching" (§3).
//!
//! [`EnhancedClient`] wraps any [`KeyValueStore`] (typically the remote
//! one) and layers, in order: client-side LRU cache → compression →
//! encryption. It keeps byte counters so experiments can report
//! bytes-on-the-wire savings.

//! Reads are herd-safe: the client cache is sharded (lock-striped) for
//! concurrent access, and concurrent `get` misses on the same key
//! coalesce onto one remote fetch (single-flight), with the result — or
//! error — fanned out to every waiter.

use crate::compress;
use crate::crypto::{self, Key};
use crate::kv::KeyValueStore;
use crate::StoreError;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for an [`EnhancedClient`].
#[derive(Debug, Clone)]
pub struct EnhancedOptions {
    /// Cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Compress values before upload.
    pub compress: bool,
    /// Encrypt values before upload (after compression).
    pub encryption_key: Option<Key>,
}

impl Default for EnhancedOptions {
    fn default() -> EnhancedOptions {
        EnhancedOptions {
            cache_capacity: 1024,
            compress: false,
            encryption_key: None,
        }
    }
}

/// Operation counters exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnhancedStats {
    /// Cache hits on `get`.
    pub cache_hits: u64,
    /// Cache misses on `get` (remote fetches).
    pub cache_misses: u64,
    /// `get` calls that joined another caller's in-flight remote fetch
    /// for the same key instead of fetching themselves (not counted as
    /// hits or misses).
    pub coalesced_waits: u64,
    /// Total plaintext bytes passed to `put`.
    pub bytes_in: u64,
    /// Total bytes actually sent to the remote store.
    pub bytes_on_wire: u64,
}

/// A caching, compressing, encrypting client over a remote store.
///
/// # Examples
///
/// ```
/// use cogsdk_store::{EnhancedClient, MemoryKv, KeyValueStore};
/// use cogsdk_store::enhanced::EnhancedOptions;
/// use bytes::Bytes;
/// use std::sync::Arc;
///
/// let remote = Arc::new(MemoryKv::new());
/// let client = EnhancedClient::new(remote, EnhancedOptions::default());
/// client.put("k", Bytes::from("v")).unwrap();
/// assert_eq!(client.get("k").unwrap(), Bytes::from("v"));
/// assert_eq!(client.stats().cache_hits, 1); // served locally
/// ```
pub struct EnhancedClient {
    remote: Arc<dyn KeyValueStore>,
    options: EnhancedOptions,
    cache: ShardedLru,
    flights: Mutex<HashMap<String, Arc<Flight>>>,
    nonce: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced_waits: AtomicU64,
    bytes_in: AtomicU64,
    bytes_on_wire: AtomicU64,
}

impl std::fmt::Debug for EnhancedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnhancedClient")
            .field("options", &self.options)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl EnhancedClient {
    /// Wraps `remote` with the given options.
    pub fn new(remote: Arc<dyn KeyValueStore>, options: EnhancedOptions) -> EnhancedClient {
        EnhancedClient {
            cache: ShardedLru::new(options.cache_capacity),
            flights: Mutex::new(HashMap::new()),
            remote,
            options,
            nonce: AtomicU64::new(1),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced_waits: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_on_wire: AtomicU64::new(0),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> EnhancedStats {
        EnhancedStats {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            coalesced_waits: self.coalesced_waits.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_on_wire: self.bytes_on_wire.load(Ordering::Relaxed),
        }
    }

    /// Number of lock-striped cache shards (scales with capacity).
    pub fn cache_shards(&self) -> usize {
        self.cache.shards.len()
    }

    /// Drops every cached entry (used by consistency experiments).
    pub fn invalidate_cache(&self) {
        self.cache.clear();
    }

    fn encode(&self, value: &Bytes) -> Bytes {
        let mut data = value.clone();
        if self.options.compress {
            data = compress::compress(&data);
        }
        if let Some(key) = &self.options.encryption_key {
            let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
            data = crypto::encrypt(key, nonce, &data);
        }
        data
    }

    fn decode(&self, data: Bytes) -> Result<Bytes, StoreError> {
        let mut data = data;
        if let Some(key) = &self.options.encryption_key {
            data = crypto::decrypt(key, &data)?;
        }
        if self.options.compress {
            data = compress::decompress(&data)?;
        }
        Ok(data)
    }
}

impl EnhancedClient {
    /// The miss path: exactly one caller per key fetches remotely at a
    /// time; everyone else blocks on the in-flight result.
    fn get_coalesced(&self, key: &str) -> Result<Bytes, StoreError> {
        let flight = {
            let mut flights = self.flights.lock();
            match flights.get(key) {
                Some(flight) => Some(flight.clone()),
                None => {
                    flights.insert(key.to_string(), Arc::new(Flight::default()));
                    None
                }
            }
        };
        if let Some(flight) = flight {
            self.coalesced_waits.fetch_add(1, Ordering::Relaxed);
            return flight.wait();
        }
        // Leader. Double-check the cache: a previous flight may have
        // published between this caller's miss and its flight acquisition.
        let result = match self.cache.get(key) {
            Some(hit) => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                Ok(hit)
            }
            None => {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
                let fetched = self.remote.get(key).and_then(|raw| self.decode(raw));
                if let Ok(value) = &fetched {
                    // Cache before unparking waiters so none can re-miss
                    // and start a second flight for a value we hold.
                    self.cache.put(key.to_string(), value.clone());
                }
                fetched
            }
        };
        let flight = self
            .flights
            .lock()
            .remove(key)
            .expect("leader owns the flight slot");
        flight.publish(result.clone());
        result
    }
}

impl KeyValueStore for EnhancedClient {
    fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError> {
        self.bytes_in
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        let encoded = self.encode(&value);
        self.bytes_on_wire
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        self.remote.put(key, encoded)?;
        // Write-through cache of the plaintext.
        self.cache.put(key.to_string(), value);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes, StoreError> {
        if let Some(hit) = self.cache.get(key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.get_coalesced(key)
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        self.cache.remove(key);
        self.remote.delete(key)
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        self.remote.keys()
    }
}

/// One in-flight remote fetch; waiters block until the leader publishes.
#[derive(Debug, Default)]
struct Flight {
    slot: Mutex<Option<Result<Bytes, StoreError>>>,
    ready: Condvar,
}

impl Flight {
    fn publish(&self, result: Result<Bytes, StoreError>) {
        *self.slot.lock() = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Bytes, StoreError> {
        let mut slot = self.slot.lock();
        while slot.is_none() {
            self.ready.wait(&mut slot);
        }
        slot.clone().expect("published")
    }
}

/// A lock-striped LRU: keys hash to one of N power-of-two shards, each
/// holding its slice of the capacity under its own lock. Small caches
/// (under 64 entries) keep a single shard so whole-cache LRU order — and
/// the tests that rely on it — are preserved exactly.
#[derive(Debug)]
struct ShardedLru {
    shards: Vec<Mutex<LruCache>>,
    mask: u64,
}

impl ShardedLru {
    fn new(capacity: usize) -> ShardedLru {
        // One shard per 32 entries, up to 8.
        let requested = (capacity / 32).clamp(1, 8);
        let mut count = 1;
        while count * 2 <= requested {
            count *= 2;
        }
        let base = capacity / count;
        let rem = capacity % count;
        ShardedLru {
            shards: (0..count)
                .map(|i| Mutex::new(LruCache::new(base + usize::from(i < rem))))
                .collect(),
            mask: count as u64 - 1,
        }
    }

    fn shard(&self, key: &str) -> &Mutex<LruCache> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() & self.mask) as usize]
    }

    fn get(&self, key: &str) -> Option<Bytes> {
        self.shard(key).lock().get(key)
    }

    fn put(&self, key: String, value: Bytes) {
        self.shard(&key).lock().put(key, value);
    }

    fn remove(&self, key: &str) {
        self.shard(key).lock().remove(key);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// A small LRU cache over byte values.
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    map: HashMap<String, Bytes>,
    order: Vec<String>, // front = least recently used
}

impl LruCache {
    fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity,
            map: HashMap::new(),
            order: Vec::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<Bytes> {
        let hit = self.map.get(key).cloned();
        if hit.is_some() {
            self.touch(key);
        }
        hit
    }

    fn put(&mut self, key: String, value: Bytes) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push(key);
        } else {
            self.touch(&key);
        }
        while self.map.len() > self.capacity {
            let evict = self.order.remove(0);
            self.map.remove(&evict);
        }
    }

    fn remove(&mut self, key: &str) {
        if self.map.remove(key).is_some() {
            self.order.retain(|k| k != key);
        }
    }

    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::MemoryKv;

    fn remote() -> Arc<MemoryKv> {
        Arc::new(MemoryKv::new())
    }

    #[test]
    fn plain_client_round_trips() {
        let client = EnhancedClient::new(remote(), EnhancedOptions::default());
        client.put("k", Bytes::from("hello")).unwrap();
        assert_eq!(client.get("k").unwrap(), Bytes::from("hello"));
        assert!(client.delete("k").unwrap());
        assert!(client.get("k").is_err());
    }

    #[test]
    fn cache_serves_repeat_reads() {
        let r = remote();
        let client = EnhancedClient::new(r.clone(), EnhancedOptions::default());
        client.put("k", Bytes::from("v")).unwrap();
        for _ in 0..5 {
            client.get("k").unwrap();
        }
        let s = client.stats();
        assert_eq!(s.cache_hits, 5);
        assert_eq!(s.cache_misses, 0);
        // After invalidation the next read goes remote.
        client.invalidate_cache();
        client.get("k").unwrap();
        assert_eq!(client.stats().cache_misses, 1);
    }

    #[test]
    fn compression_reduces_wire_bytes() {
        let client = EnhancedClient::new(
            remote(),
            EnhancedOptions {
                compress: true,
                ..EnhancedOptions::default()
            },
        );
        let value = Bytes::from("repetitive payload ".repeat(200));
        client.put("k", value.clone()).unwrap();
        let s = client.stats();
        assert!(s.bytes_on_wire < s.bytes_in / 3, "{s:?}");
        client.invalidate_cache();
        assert_eq!(client.get("k").unwrap(), value);
    }

    #[test]
    fn encryption_hides_plaintext_on_remote() {
        let r = remote();
        let key = Key::derive("kb secret");
        let client = EnhancedClient::new(
            r.clone(),
            EnhancedOptions {
                encryption_key: Some(key),
                ..EnhancedOptions::default()
            },
        );
        client.put("k", Bytes::from("very confidential")).unwrap();
        let on_remote = r.get("k").unwrap();
        assert!(!on_remote
            .windows(b"confidential".len())
            .any(|w| w == b"confidential"));
        client.invalidate_cache();
        assert_eq!(client.get("k").unwrap(), Bytes::from("very confidential"));
    }

    #[test]
    fn compress_then_encrypt_round_trips() {
        let key = Key::derive("both layers");
        let client = EnhancedClient::new(
            remote(),
            EnhancedOptions {
                compress: true,
                encryption_key: Some(key),
                cache_capacity: 0, // force remote round trips
            },
        );
        let value = Bytes::from("abcabcabc".repeat(100));
        client.put("k", value.clone()).unwrap();
        assert_eq!(client.get("k").unwrap(), value);
        let s = client.stats();
        assert_eq!(s.cache_hits, 0);
        assert!(s.bytes_on_wire < s.bytes_in, "{s:?}");
    }

    #[test]
    fn wrong_key_on_shared_remote_fails_closed() {
        let r = remote();
        let writer = EnhancedClient::new(
            r.clone(),
            EnhancedOptions {
                encryption_key: Some(Key::derive("alice")),
                ..EnhancedOptions::default()
            },
        );
        writer.put("k", Bytes::from("for alice only")).unwrap();
        let reader = EnhancedClient::new(
            r,
            EnhancedOptions {
                encryption_key: Some(Key::derive("mallory")),
                ..EnhancedOptions::default()
            },
        );
        assert_eq!(reader.get("k"), Err(StoreError::IntegrityFailure));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let r = remote();
        let client = EnhancedClient::new(
            r,
            EnhancedOptions {
                cache_capacity: 2,
                ..EnhancedOptions::default()
            },
        );
        client.put("a", Bytes::from("1")).unwrap();
        client.put("b", Bytes::from("2")).unwrap();
        client.get("a").unwrap(); // a is now most recent
        client.put("c", Bytes::from("3")).unwrap(); // evicts b
        let before = client.stats();
        client.get("a").unwrap();
        client.get("c").unwrap();
        assert_eq!(client.stats().cache_hits, before.cache_hits + 2);
        client.get("b").unwrap(); // must go remote
        assert_eq!(client.stats().cache_misses, before.cache_misses + 1);
    }

    /// A remote that counts gets and holds each one open long enough for
    /// concurrent callers to pile onto the flight.
    struct SlowKv {
        inner: Arc<MemoryKv>,
        gets: AtomicU64,
        hold: std::time::Duration,
    }

    impl KeyValueStore for SlowKv {
        fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError> {
            self.inner.put(key, value)
        }
        fn get(&self, key: &str) -> Result<Bytes, StoreError> {
            self.gets.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(self.hold);
            self.inner.get(key)
        }
        fn delete(&self, key: &str) -> Result<bool, StoreError> {
            self.inner.delete(key)
        }
        fn keys(&self) -> Result<Vec<String>, StoreError> {
            self.inner.keys()
        }
    }

    #[test]
    fn concurrent_misses_coalesce_to_one_remote_fetch() {
        let slow = Arc::new(SlowKv {
            inner: remote(),
            gets: AtomicU64::new(0),
            hold: std::time::Duration::from_millis(40),
        });
        slow.inner.put("k", Bytes::from("v")).unwrap();
        let client = Arc::new(EnhancedClient::new(
            slow.clone(),
            EnhancedOptions::default(),
        ));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let client = client.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    assert_eq!(client.get("k").unwrap(), Bytes::from("v"));
                });
            }
        });
        assert_eq!(
            slow.gets.load(Ordering::SeqCst),
            1,
            "one remote fetch for 8 concurrent readers"
        );
        let s = client.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(
            s.cache_hits + s.coalesced_waits,
            7,
            "everyone else was served without a remote call: {s:?}"
        );
        // The flight slot is cleaned up and the value cached.
        client.get("k").unwrap();
        assert_eq!(slow.gets.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn coalesced_error_fans_out_and_is_not_cached() {
        let slow = Arc::new(SlowKv {
            inner: remote(),
            gets: AtomicU64::new(0),
            hold: std::time::Duration::from_millis(20),
        });
        let client = Arc::new(EnhancedClient::new(
            slow.clone(),
            EnhancedOptions::default(),
        ));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let client = client.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    // Key absent: every waiter receives the leader's error.
                    assert!(matches!(
                        client.get("missing"),
                        Err(StoreError::NotFound(_))
                    ));
                });
            }
        });
        assert_eq!(slow.gets.load(Ordering::SeqCst), 1, "one remote miss");
        // Errors are not cached: the next get retries the remote.
        assert!(client.get("missing").is_err());
        assert_eq!(slow.gets.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn large_caches_stripe_small_caches_do_not() {
        let small = EnhancedClient::new(remote(), EnhancedOptions::default());
        assert!(small.cache_shards() >= 1);
        let tiny = EnhancedClient::new(
            remote(),
            EnhancedOptions {
                cache_capacity: 2,
                ..EnhancedOptions::default()
            },
        );
        assert_eq!(tiny.cache_shards(), 1, "tiny caches keep global LRU order");
        let big = EnhancedClient::new(
            remote(),
            EnhancedOptions {
                cache_capacity: 1024,
                ..EnhancedOptions::default()
            },
        );
        assert_eq!(big.cache_shards(), 8);
        // Striped capacity still bounds total residency.
        for i in 0..4096 {
            big.put(&format!("k{i}"), Bytes::from("x")).unwrap();
        }
        let resident: usize = (0..4096)
            .filter(|i| {
                let before = big.stats().cache_hits;
                let _ = big.get(&format!("k{i}"));
                big.stats().cache_hits > before
            })
            .count();
        assert!(resident <= 1024, "{resident} > capacity");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let client = EnhancedClient::new(
            remote(),
            EnhancedOptions {
                cache_capacity: 0,
                ..EnhancedOptions::default()
            },
        );
        client.put("k", Bytes::from("v")).unwrap();
        client.get("k").unwrap();
        client.get("k").unwrap();
        let s = client.stats();
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.cache_misses, 2);
    }
}
