//! The enhanced data store client.
//!
//! Reference \[11\] of the paper ("Providing Enhanced Functionality for Data
//! Store Clients", ICDE 2017) describes clients that add caching,
//! encryption and compression in front of cloud data stores; the
//! personalized knowledge base "uses enhanced data store clients which
//! reduce the latency for accessing remote data stores via caching" (§3).
//!
//! [`EnhancedClient`] wraps any [`KeyValueStore`] (typically the remote
//! one) and layers, in order: client-side LRU cache → compression →
//! encryption. It keeps byte counters so experiments can report
//! bytes-on-the-wire savings.

use crate::compress;
use crate::crypto::{self, Key};
use crate::kv::KeyValueStore;
use crate::StoreError;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for an [`EnhancedClient`].
#[derive(Debug, Clone)]
pub struct EnhancedOptions {
    /// Cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Compress values before upload.
    pub compress: bool,
    /// Encrypt values before upload (after compression).
    pub encryption_key: Option<Key>,
}

impl Default for EnhancedOptions {
    fn default() -> EnhancedOptions {
        EnhancedOptions {
            cache_capacity: 1024,
            compress: false,
            encryption_key: None,
        }
    }
}

/// Operation counters exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnhancedStats {
    /// Cache hits on `get`.
    pub cache_hits: u64,
    /// Cache misses on `get` (remote fetches).
    pub cache_misses: u64,
    /// Total plaintext bytes passed to `put`.
    pub bytes_in: u64,
    /// Total bytes actually sent to the remote store.
    pub bytes_on_wire: u64,
}

/// A caching, compressing, encrypting client over a remote store.
///
/// # Examples
///
/// ```
/// use cogsdk_store::{EnhancedClient, MemoryKv, KeyValueStore};
/// use cogsdk_store::enhanced::EnhancedOptions;
/// use bytes::Bytes;
/// use std::sync::Arc;
///
/// let remote = Arc::new(MemoryKv::new());
/// let client = EnhancedClient::new(remote, EnhancedOptions::default());
/// client.put("k", Bytes::from("v")).unwrap();
/// assert_eq!(client.get("k").unwrap(), Bytes::from("v"));
/// assert_eq!(client.stats().cache_hits, 1); // served locally
/// ```
pub struct EnhancedClient {
    remote: Arc<dyn KeyValueStore>,
    options: EnhancedOptions,
    cache: Mutex<LruCache>,
    nonce: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    bytes_in: AtomicU64,
    bytes_on_wire: AtomicU64,
}

impl std::fmt::Debug for EnhancedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnhancedClient")
            .field("options", &self.options)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl EnhancedClient {
    /// Wraps `remote` with the given options.
    pub fn new(remote: Arc<dyn KeyValueStore>, options: EnhancedOptions) -> EnhancedClient {
        EnhancedClient {
            cache: Mutex::new(LruCache::new(options.cache_capacity)),
            remote,
            options,
            nonce: AtomicU64::new(1),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_on_wire: AtomicU64::new(0),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> EnhancedStats {
        EnhancedStats {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_on_wire: self.bytes_on_wire.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached entry (used by consistency experiments).
    pub fn invalidate_cache(&self) {
        self.cache.lock().clear();
    }

    fn encode(&self, value: &Bytes) -> Bytes {
        let mut data = value.clone();
        if self.options.compress {
            data = compress::compress(&data);
        }
        if let Some(key) = &self.options.encryption_key {
            let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
            data = crypto::encrypt(key, nonce, &data);
        }
        data
    }

    fn decode(&self, data: Bytes) -> Result<Bytes, StoreError> {
        let mut data = data;
        if let Some(key) = &self.options.encryption_key {
            data = crypto::decrypt(key, &data)?;
        }
        if self.options.compress {
            data = compress::decompress(&data)?;
        }
        Ok(data)
    }
}

impl KeyValueStore for EnhancedClient {
    fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError> {
        self.bytes_in
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        let encoded = self.encode(&value);
        self.bytes_on_wire
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        self.remote.put(key, encoded)?;
        // Write-through cache of the plaintext.
        self.cache.lock().put(key.to_string(), value);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes, StoreError> {
        if let Some(hit) = self.cache.lock().get(key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let raw = self.remote.get(key)?;
        let value = self.decode(raw)?;
        self.cache.lock().put(key.to_string(), value.clone());
        Ok(value)
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        self.cache.lock().remove(key);
        self.remote.delete(key)
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        self.remote.keys()
    }
}

/// A small LRU cache over byte values.
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    map: HashMap<String, Bytes>,
    order: Vec<String>, // front = least recently used
}

impl LruCache {
    fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity,
            map: HashMap::new(),
            order: Vec::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<Bytes> {
        let hit = self.map.get(key).cloned();
        if hit.is_some() {
            self.touch(key);
        }
        hit
    }

    fn put(&mut self, key: String, value: Bytes) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push(key);
        } else {
            self.touch(&key);
        }
        while self.map.len() > self.capacity {
            let evict = self.order.remove(0);
            self.map.remove(&evict);
        }
    }

    fn remove(&mut self, key: &str) {
        if self.map.remove(key).is_some() {
            self.order.retain(|k| k != key);
        }
    }

    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::MemoryKv;

    fn remote() -> Arc<MemoryKv> {
        Arc::new(MemoryKv::new())
    }

    #[test]
    fn plain_client_round_trips() {
        let client = EnhancedClient::new(remote(), EnhancedOptions::default());
        client.put("k", Bytes::from("hello")).unwrap();
        assert_eq!(client.get("k").unwrap(), Bytes::from("hello"));
        assert!(client.delete("k").unwrap());
        assert!(client.get("k").is_err());
    }

    #[test]
    fn cache_serves_repeat_reads() {
        let r = remote();
        let client = EnhancedClient::new(r.clone(), EnhancedOptions::default());
        client.put("k", Bytes::from("v")).unwrap();
        for _ in 0..5 {
            client.get("k").unwrap();
        }
        let s = client.stats();
        assert_eq!(s.cache_hits, 5);
        assert_eq!(s.cache_misses, 0);
        // After invalidation the next read goes remote.
        client.invalidate_cache();
        client.get("k").unwrap();
        assert_eq!(client.stats().cache_misses, 1);
    }

    #[test]
    fn compression_reduces_wire_bytes() {
        let client = EnhancedClient::new(
            remote(),
            EnhancedOptions {
                compress: true,
                ..EnhancedOptions::default()
            },
        );
        let value = Bytes::from("repetitive payload ".repeat(200));
        client.put("k", value.clone()).unwrap();
        let s = client.stats();
        assert!(s.bytes_on_wire < s.bytes_in / 3, "{s:?}");
        client.invalidate_cache();
        assert_eq!(client.get("k").unwrap(), value);
    }

    #[test]
    fn encryption_hides_plaintext_on_remote() {
        let r = remote();
        let key = Key::derive("kb secret");
        let client = EnhancedClient::new(
            r.clone(),
            EnhancedOptions {
                encryption_key: Some(key),
                ..EnhancedOptions::default()
            },
        );
        client.put("k", Bytes::from("very confidential")).unwrap();
        let on_remote = r.get("k").unwrap();
        assert!(!on_remote
            .windows(b"confidential".len())
            .any(|w| w == b"confidential"));
        client.invalidate_cache();
        assert_eq!(client.get("k").unwrap(), Bytes::from("very confidential"));
    }

    #[test]
    fn compress_then_encrypt_round_trips() {
        let key = Key::derive("both layers");
        let client = EnhancedClient::new(
            remote(),
            EnhancedOptions {
                compress: true,
                encryption_key: Some(key),
                cache_capacity: 0, // force remote round trips
            },
        );
        let value = Bytes::from("abcabcabc".repeat(100));
        client.put("k", value.clone()).unwrap();
        assert_eq!(client.get("k").unwrap(), value);
        let s = client.stats();
        assert_eq!(s.cache_hits, 0);
        assert!(s.bytes_on_wire < s.bytes_in, "{s:?}");
    }

    #[test]
    fn wrong_key_on_shared_remote_fails_closed() {
        let r = remote();
        let writer = EnhancedClient::new(
            r.clone(),
            EnhancedOptions {
                encryption_key: Some(Key::derive("alice")),
                ..EnhancedOptions::default()
            },
        );
        writer.put("k", Bytes::from("for alice only")).unwrap();
        let reader = EnhancedClient::new(
            r,
            EnhancedOptions {
                encryption_key: Some(Key::derive("mallory")),
                ..EnhancedOptions::default()
            },
        );
        assert_eq!(reader.get("k"), Err(StoreError::IntegrityFailure));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let r = remote();
        let client = EnhancedClient::new(
            r,
            EnhancedOptions {
                cache_capacity: 2,
                ..EnhancedOptions::default()
            },
        );
        client.put("a", Bytes::from("1")).unwrap();
        client.put("b", Bytes::from("2")).unwrap();
        client.get("a").unwrap(); // a is now most recent
        client.put("c", Bytes::from("3")).unwrap(); // evicts b
        let before = client.stats();
        client.get("a").unwrap();
        client.get("c").unwrap();
        assert_eq!(client.stats().cache_hits, before.cache_hits + 2);
        client.get("b").unwrap(); // must go remote
        assert_eq!(client.stats().cache_misses, before.cache_misses + 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let client = EnhancedClient::new(
            remote(),
            EnhancedOptions {
                cache_capacity: 0,
                ..EnhancedOptions::default()
            },
        );
        client.put("k", Bytes::from("v")).unwrap();
        client.get("k").unwrap();
        client.get("k").unwrap();
        let s = client.stats();
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.cache_misses, 2);
    }
}
