//! Compression: an LZ77-window compressor with a run-length fallback.
//!
//! §3: "Compression can be applied to reduce disk and memory requirements
//! for storing data… If the personal knowledge base compresses data before
//! sending it to the remote data store, less network bandwidth will be
//! required" and metered cloud storage costs less. This is the gzip
//! stand-in: a real, working compressor whose ratio/throughput trade-offs
//! the enhanced-client experiments (E8) measure.
//!
//! Format: a 1-byte header (`0` = stored, `1` = LZ) followed by either raw
//! bytes or a token stream of literals and `(distance, length)` copies.

use crate::StoreError;
use bytes::Bytes;

/// Window size for back-references (64 KiB, 16-bit distances).
const WINDOW: usize = 65_535;
/// Minimum profitable match length.
const MIN_MATCH: usize = 4;
/// Maximum encodable match length.
const MAX_MATCH: usize = 255 + MIN_MATCH;

/// Compresses `data`.
///
/// Falls back to stored form when compression would not shrink the input,
/// so output is never more than one byte larger than the input.
///
/// # Examples
///
/// ```
/// use cogsdk_store::compress::{compress, decompress};
/// use bytes::Bytes;
///
/// let data = Bytes::from("abcabcabcabcabcabc".repeat(20));
/// let packed = compress(&data);
/// assert!(packed.len() < data.len());
/// assert_eq!(decompress(&packed).unwrap(), data);
/// ```
pub fn compress(data: &[u8]) -> Bytes {
    let lz = lz_compress(data);
    if lz.len() < data.len() {
        let mut out = Vec::with_capacity(lz.len() + 1);
        out.push(1u8);
        out.extend_from_slice(&lz);
        Bytes::from(out)
    } else {
        let mut out = Vec::with_capacity(data.len() + 1);
        out.push(0u8);
        out.extend_from_slice(data);
        Bytes::from(out)
    }
}

/// Decompresses the output of [`compress`].
///
/// # Errors
///
/// [`StoreError::Malformed`] for truncated or corrupt input.
pub fn decompress(data: &[u8]) -> Result<Bytes, StoreError> {
    let Some((&tag, rest)) = data.split_first() else {
        return Err(StoreError::Malformed("empty compressed payload".into()));
    };
    match tag {
        0 => Ok(Bytes::copy_from_slice(rest)),
        1 => lz_decompress(rest),
        other => Err(StoreError::Malformed(format!("unknown format tag {other}"))),
    }
}

/// The achieved compression ratio (compressed / original); 1.0 means no
/// gain. Empty input has ratio 1.0.
pub fn ratio(original: &[u8], compressed: &[u8]) -> f64 {
    if original.is_empty() {
        1.0
    } else {
        compressed.len() as f64 / original.len() as f64
    }
}

/// Token stream:
/// * `0x00 len` followed by `len` literal bytes (len 1–255);
/// * `0x01 d_hi d_lo len` — copy `len + MIN_MATCH` bytes from `distance`
///   back.
fn lz_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // One candidate position per 4-byte-prefix hash. A single-entry table
    // trades some ratio for simplicity and O(n) worst-case time.
    const HASH_BITS: u32 = 15;
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let hash = |w: &[u8]| -> usize {
        let v = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
    };
    let mut literals: Vec<u8> = Vec::new();
    let flush_literals = |out: &mut Vec<u8>, lits: &mut Vec<u8>| {
        for chunk in lits.chunks(255) {
            out.push(0x00);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
        lits.clear();
    };
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash(&data[i..i + 4]);
            let candidate = head[h];
            head[h] = i;
            if candidate != usize::MAX {
                let dist = i - candidate;
                if dist <= WINDOW {
                    let max = (data.len() - i).min(MAX_MATCH);
                    let mut len = 0;
                    while len < max && data[candidate + len] == data[i + len] {
                        len += 1;
                    }
                    if len >= MIN_MATCH {
                        best_len = len;
                        best_dist = dist;
                    }
                }
            }
        }
        if best_len >= MIN_MATCH {
            flush_literals(&mut out, &mut literals);
            out.push(0x01);
            out.push((best_dist >> 8) as u8);
            out.push((best_dist & 0xFF) as u8);
            out.push((best_len - MIN_MATCH) as u8);
            i += best_len;
        } else {
            literals.push(data[i]);
            i += 1;
        }
    }
    flush_literals(&mut out, &mut literals);
    out
}

fn lz_decompress(stream: &[u8]) -> Result<Bytes, StoreError> {
    let mut out: Vec<u8> = Vec::with_capacity(stream.len() * 2);
    let mut i = 0;
    let truncated = || StoreError::Malformed("truncated LZ stream".into());
    while i < stream.len() {
        match stream[i] {
            0x00 => {
                let len = *stream.get(i + 1).ok_or_else(truncated)? as usize;
                if len == 0 {
                    return Err(StoreError::Malformed("zero-length literal run".into()));
                }
                let start = i + 2;
                let end = start + len;
                if end > stream.len() {
                    return Err(truncated());
                }
                out.extend_from_slice(&stream[start..end]);
                i = end;
            }
            0x01 => {
                if i + 4 > stream.len() {
                    return Err(truncated());
                }
                let dist = ((stream[i + 1] as usize) << 8) | stream[i + 2] as usize;
                let len = stream[i + 3] as usize + MIN_MATCH;
                if dist == 0 || dist > out.len() {
                    return Err(StoreError::Malformed("invalid back-reference".into()));
                }
                let start = out.len() - dist;
                // Overlapping copies must go byte-by-byte.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
                i += 4;
            }
            other => {
                return Err(StoreError::Malformed(format!("bad token {other:#x}")));
            }
        }
    }
    Ok(Bytes::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            let c = compress(data);
            assert_eq!(decompress(&c).unwrap(), Bytes::copy_from_slice(data));
        }
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = b"the quick brown fox ".repeat(100);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 5,
            "ratio {} too poor",
            ratio(&data, &c)
        );
        assert_eq!(decompress(&c).unwrap(), Bytes::from(data));
    }

    #[test]
    fn json_like_payload_compresses() {
        let record = r#"{"country":"united_states","gdp":21000.5,"developed":true},"#;
        let data = record.repeat(50);
        let c = compress(data.as_bytes());
        assert!(ratio(data.as_bytes(), &c) < 0.5);
        assert_eq!(decompress(&c).unwrap(), Bytes::from(data.into_bytes()));
    }

    #[test]
    fn incompressible_data_stays_stored() {
        // Pseudo-random bytes: LZ should find nothing and fall back.
        let mut data = Vec::with_capacity(4096);
        let mut x = 0x12345678u32;
        for _ in 0..4096 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            data.push((x >> 24) as u8);
        }
        let c = compress(&data);
        assert_eq!(c.len(), data.len() + 1, "stored form adds exactly 1 byte");
        assert_eq!(decompress(&c).unwrap(), Bytes::from(data));
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        // "aaaa..." forces distance-1 copies with overlap.
        let data = vec![b'a'; 1000];
        let c = compress(&data);
        assert!(c.len() < 40, "run should collapse, got {}", c.len());
        assert_eq!(decompress(&c).unwrap(), Bytes::from(data));
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        // Note `[1]` alone is valid: the LZ encoding of empty input.
        for bad in [
            &[][..],
            &[1, 0x00],          // literal without length
            &[1, 0x00, 5, b'a'], // truncated literal
            &[1, 0x01, 0, 1],    // truncated copy
            &[1, 0x01, 0, 5, 0], // back-ref beyond output
            &[1, 0x02],          // bad token
            &[1, 0x00, 0],       // zero-length literal
            &[7, 1, 2],          // unknown tag
        ] {
            assert!(decompress(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn binary_data_round_trips() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), Bytes::from(data));
    }

    #[test]
    fn ratio_helper() {
        assert_eq!(ratio(b"", b""), 1.0);
        assert_eq!(ratio(b"abcd", b"ab"), 0.5);
    }
}
