//! Comma-separated values.
//!
//! §3: "Support is provided for reading and writing comma-separated value
//! (CSV) files", both as a storage format and as the interchange format
//! with external analysis tools (MATLAB, Excel, R, …). RFC-4180-style
//! quoting: fields containing commas, quotes or newlines are quoted;
//! quotes are doubled.

use crate::table::{ColumnType, Row, Schema, Table, Value};
use crate::StoreError;

/// Serializes rows of string fields to CSV text.
pub fn write_records(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for record in records {
        for (i, field) in record.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&quote(field));
        }
        out.push('\n');
    }
    out
}

/// Parses CSV text into rows of string fields.
///
/// # Errors
///
/// [`StoreError::Malformed`] for unterminated quotes or stray quotes in
/// unquoted fields.
///
/// # Examples
///
/// ```
/// let rows = cogsdk_store::csv::parse_records("a,\"b,c\"\nd,e\n").unwrap();
/// assert_eq!(rows, vec![vec!["a", "b,c"], vec!["d", "e"]]);
/// ```
pub fn parse_records(text: &str) -> Result<Vec<Vec<String>>, StoreError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut field_started_quoted = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() && !field_started_quoted => {
                in_quotes = true;
                field_started_quoted = true;
            }
            '"' => {
                return Err(StoreError::Malformed(
                    "stray quote in unquoted field".into(),
                ));
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                field_started_quoted = false;
            }
            '\r' => {
                // Tolerate CRLF: swallow the CR if an LF follows.
                if chars.peek() != Some(&'\n') {
                    field.push('\r');
                }
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                field_started_quoted = false;
            }
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(StoreError::Malformed("unterminated quoted field".into()));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Serializes a [`Table`] to CSV with a header row.
pub fn table_to_csv(table: &Table) -> String {
    let mut records: Vec<Vec<String>> = Vec::with_capacity(table.len() + 1);
    records.push(
        table
            .schema()
            .columns()
            .iter()
            .map(|(name, _)| name.clone())
            .collect(),
    );
    for row in table.rows() {
        records.push(row.iter().map(ToString::to_string).collect());
    }
    write_records(&records)
}

/// Parses CSV (with header) into a [`Table`], inferring column types.
///
/// Type inference per column over the data rows: all-parse-as-int → Int,
/// else all-parse-as-float → Float, else all true/false → Bool, else
/// Text. Empty fields become NULL.
///
/// # Errors
///
/// [`StoreError::Malformed`] for empty input, ragged rows, or invalid CSV.
pub fn csv_to_table(text: &str) -> Result<Table, StoreError> {
    let records = parse_records(text)?;
    let Some((header, data)) = records.split_first() else {
        return Err(StoreError::Malformed("empty CSV".into()));
    };
    for (i, r) in data.iter().enumerate() {
        if r.len() != header.len() {
            return Err(StoreError::Malformed(format!(
                "row {} has {} fields, header has {}",
                i + 2,
                r.len(),
                header.len()
            )));
        }
    }
    let types: Vec<ColumnType> = (0..header.len())
        .map(|c| infer_type(data.iter().map(|r| r[c].as_str())))
        .collect();
    let schema = Schema::new(
        header
            .iter()
            .cloned()
            .zip(types.iter().copied())
            .collect::<Vec<_>>(),
    )?;
    let mut table = Table::new(schema);
    for r in data {
        let row: Row = r
            .iter()
            .zip(&types)
            .map(|(field, ty)| parse_value(field, *ty))
            .collect();
        table.insert(row)?;
    }
    Ok(table)
}

fn infer_type<'a>(mut fields: impl Iterator<Item = &'a str>) -> ColumnType {
    let mut ty = ColumnType::Int;
    let mut saw_value = false;
    for f in fields.by_ref() {
        if f.is_empty() {
            continue; // NULL fits anything
        }
        saw_value = true;
        ty = match ty {
            ColumnType::Int if f.parse::<i64>().is_ok() => ColumnType::Int,
            ColumnType::Int | ColumnType::Float if f.parse::<f64>().is_ok() => ColumnType::Float,
            ColumnType::Int | ColumnType::Float | ColumnType::Bool
                if f == "true" || f == "false" =>
            {
                ColumnType::Bool
            }
            _ => return ColumnType::Text,
        };
    }
    if saw_value {
        ty
    } else {
        ColumnType::Text
    }
}

fn parse_value(field: &str, ty: ColumnType) -> Value {
    if field.is_empty() {
        return Value::Null;
    }
    match ty {
        ColumnType::Int => field.parse().map(Value::Int).unwrap_or(Value::Null),
        ColumnType::Float => field.parse().map(Value::Float).unwrap_or(Value::Null),
        ColumnType::Bool => Value::Bool(field == "true"),
        ColumnType::Text => Value::Text(field.to_string()),
    }
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_round_trip() {
        let rows = vec![
            vec!["a".to_string(), "b".to_string()],
            vec!["c".to_string(), "d".to_string()],
        ];
        let text = write_records(&rows);
        assert_eq!(text, "a,b\nc,d\n");
        assert_eq!(parse_records(&text).unwrap(), rows);
    }

    #[test]
    fn quoting_round_trip() {
        let rows = vec![vec![
            "has,comma".to_string(),
            "has\"quote".to_string(),
            "has\nnewline".to_string(),
            "plain".to_string(),
        ]];
        let text = write_records(&rows);
        assert_eq!(parse_records(&text).unwrap(), rows);
    }

    #[test]
    fn crlf_tolerated() {
        let rows = parse_records("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn final_line_without_newline() {
        let rows = parse_records("a,b\nc,d").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["c", "d"]);
    }

    #[test]
    fn empty_fields_preserved() {
        let rows = parse_records("a,,c\n,,\n").unwrap();
        assert_eq!(rows[0], vec!["a", "", "c"]);
        assert_eq!(rows[1], vec!["", "", ""]);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse_records("\"unterminated").is_err());
        assert!(parse_records("ab\"cd,e").is_err());
    }

    #[test]
    fn empty_input_is_no_records() {
        assert!(parse_records("").unwrap().is_empty());
    }

    #[test]
    fn table_round_trip_with_type_inference() {
        let csv = "country,gdp,population,developed\n\
                   united_states,21000.5,331,true\n\
                   germany,4200.0,83,true\n\
                   unknown,,,false\n";
        let table = csv_to_table(csv).unwrap();
        assert_eq!(table.len(), 3);
        let cols = table.schema().columns();
        assert_eq!(cols[0].1, ColumnType::Text);
        assert_eq!(cols[1].1, ColumnType::Float);
        assert_eq!(cols[2].1, ColumnType::Int);
        assert_eq!(cols[3].1, ColumnType::Bool);
        assert_eq!(table.rows()[2][1], Value::Null);
        // Round trip back to CSV and parse again: same table.
        let again = csv_to_table(&table_to_csv(&table)).unwrap();
        assert_eq!(again, table);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(csv_to_table("a,b\n1\n").is_err());
    }

    #[test]
    fn all_empty_column_becomes_text() {
        let t = csv_to_table("a,b\n1,\n2,\n").unwrap();
        assert_eq!(t.schema().columns()[1].1, ColumnType::Text);
    }

    #[test]
    fn int_column_with_float_value_widens() {
        let t = csv_to_table("x\n1\n2.5\n").unwrap();
        assert_eq!(t.schema().columns()[0].1, ColumnType::Float);
        assert_eq!(t.rows()[0][0], Value::Float(1.0));
    }
}
