//! Offline operation and reconnect synchronization.
//!
//! §3: "The personalized knowledge base tries to accommodate scenarios
//! where the computer(s) on which it runs may be disconnected from the
//! network. Caching and local storage can be used when remote data sources
//! and services are not accessible… it may be appropriate to synchronize
//! the contents of local storage and the cloud data store after
//! connectivity … is re-established."
//!
//! [`LocalFirstStore`] writes to a local store immediately, tracks dirty
//! keys, and flushes them to the remote store when connected. Reads are
//! local-first with remote fallback. Disconnection is explicit, modeling
//! the client's own knowledge of its link state; remote failures while
//! "connected" also leave keys dirty for the next flush.

use crate::kv::KeyValueStore;
use crate::StoreError;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Report of one synchronization pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Keys successfully pushed to the remote store.
    pub pushed: Vec<String>,
    /// Keys that failed and remain dirty.
    pub failed: Vec<String>,
    /// Tombstoned keys whose remote deletion succeeded.
    pub deleted: Vec<String>,
}

/// A local-first store with explicit connectivity and resync.
///
/// # Examples
///
/// ```
/// use cogsdk_store::sync::LocalFirstStore;
/// use cogsdk_store::{KeyValueStore, MemoryKv};
/// use bytes::Bytes;
/// use std::sync::Arc;
///
/// let local = Arc::new(MemoryKv::new());
/// let remote = Arc::new(MemoryKv::new());
/// let store = LocalFirstStore::new(local, remote.clone());
///
/// store.set_connected(false);
/// store.put("k", Bytes::from("v")).unwrap();      // works offline
/// assert!(remote.get("k").is_err());               // not yet remote
///
/// store.set_connected(true);
/// let report = store.synchronize();
/// assert_eq!(report.pushed, vec!["k"]);
/// assert_eq!(remote.get("k").unwrap(), Bytes::from("v"));
/// ```
pub struct LocalFirstStore {
    local: Arc<dyn KeyValueStore>,
    remote: Arc<dyn KeyValueStore>,
    connected: AtomicBool,
    dirty: Mutex<BTreeSet<String>>,
    tombstones: Mutex<BTreeSet<String>>,
}

impl std::fmt::Debug for LocalFirstStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalFirstStore")
            .field("connected", &self.is_connected())
            .field("dirty", &self.dirty_keys())
            .finish_non_exhaustive()
    }
}

impl LocalFirstStore {
    /// Creates a store over a local and a remote backend; starts
    /// connected.
    pub fn new(local: Arc<dyn KeyValueStore>, remote: Arc<dyn KeyValueStore>) -> LocalFirstStore {
        LocalFirstStore {
            local,
            remote,
            connected: AtomicBool::new(true),
            dirty: Mutex::new(BTreeSet::new()),
            tombstones: Mutex::new(BTreeSet::new()),
        }
    }

    /// Sets the (client-observed) connectivity state.
    pub fn set_connected(&self, connected: bool) {
        self.connected.store(connected, Ordering::SeqCst);
    }

    /// Whether the client currently believes it is connected.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// Keys written locally but not yet durable remotely.
    pub fn dirty_keys(&self) -> Vec<String> {
        self.dirty.lock().iter().cloned().collect()
    }

    /// Pushes all dirty writes and tombstoned deletes to the remote store.
    /// Keys whose push fails stay dirty for the next pass.
    pub fn synchronize(&self) -> SyncReport {
        let mut report = SyncReport::default();
        if !self.is_connected() {
            report.failed = self.dirty_keys();
            return report;
        }
        let dirty: Vec<String> = self.dirty.lock().iter().cloned().collect();
        for key in dirty {
            let push = self
                .local
                .get(&key)
                .and_then(|value| self.remote.put(&key, value));
            match push {
                Ok(()) => {
                    self.dirty.lock().remove(&key);
                    report.pushed.push(key);
                }
                Err(_) => report.failed.push(key),
            }
        }
        let tombs: Vec<String> = self.tombstones.lock().iter().cloned().collect();
        for key in tombs {
            match self.remote.delete(&key) {
                Ok(_) => {
                    self.tombstones.lock().remove(&key);
                    report.deleted.push(key);
                }
                Err(_) => report.failed.push(key),
            }
        }
        report
    }
}

impl KeyValueStore for LocalFirstStore {
    fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError> {
        self.local.put(key, value.clone())?;
        self.tombstones.lock().remove(key);
        if self.is_connected() {
            match self.remote.put(key, value) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    // Remote hiccup: stay available, mark dirty (the
                    // paper's "occasionally stored in the cloud" model).
                    self.dirty.lock().insert(key.to_string());
                    return Ok(());
                }
            }
        }
        self.dirty.lock().insert(key.to_string());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes, StoreError> {
        match self.local.get(key) {
            Ok(v) => Ok(v),
            Err(StoreError::NotFound(_)) if self.is_connected() => {
                let v = self.remote.get(key)?;
                // Populate local for subsequent offline reads.
                self.local.put(key, v.clone())?;
                Ok(v)
            }
            Err(e) => Err(e),
        }
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        let existed_locally = self.local.delete(key)?;
        self.dirty.lock().remove(key);
        if self.is_connected() {
            if let Ok(existed_remotely) = self.remote.delete(key) {
                return Ok(existed_locally || existed_remotely);
            }
        }
        self.tombstones.lock().insert(key.to_string());
        Ok(existed_locally)
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        self.local.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::MemoryKv;

    /// A remote that can be forced to fail.
    struct FlakyRemote {
        inner: MemoryKv,
        failing: AtomicBool,
    }

    impl FlakyRemote {
        fn new() -> FlakyRemote {
            FlakyRemote {
                inner: MemoryKv::new(),
                failing: AtomicBool::new(false),
            }
        }
        fn set_failing(&self, f: bool) {
            self.failing.store(f, Ordering::SeqCst);
        }
        fn check(&self) -> Result<(), StoreError> {
            if self.failing.load(Ordering::SeqCst) {
                Err(StoreError::RemoteUnavailable("injected".into()))
            } else {
                Ok(())
            }
        }
    }

    impl KeyValueStore for FlakyRemote {
        fn put(&self, key: &str, value: Bytes) -> Result<(), StoreError> {
            self.check()?;
            self.inner.put(key, value)
        }
        fn get(&self, key: &str) -> Result<Bytes, StoreError> {
            self.check()?;
            self.inner.get(key)
        }
        fn delete(&self, key: &str) -> Result<bool, StoreError> {
            self.check()?;
            self.inner.delete(key)
        }
        fn keys(&self) -> Result<Vec<String>, StoreError> {
            self.check()?;
            self.inner.keys()
        }
    }

    fn setup() -> (Arc<MemoryKv>, Arc<FlakyRemote>, LocalFirstStore) {
        let local = Arc::new(MemoryKv::new());
        let remote = Arc::new(FlakyRemote::new());
        let store = LocalFirstStore::new(local.clone(), remote.clone());
        (local, remote, store)
    }

    #[test]
    fn connected_writes_go_through_immediately() {
        let (_local, remote, store) = setup();
        store.put("k", Bytes::from("v")).unwrap();
        assert_eq!(remote.inner.get("k").unwrap(), Bytes::from("v"));
        assert!(store.dirty_keys().is_empty());
    }

    #[test]
    fn offline_writes_queue_and_flush() {
        let (_local, remote, store) = setup();
        store.set_connected(false);
        store.put("a", Bytes::from("1")).unwrap();
        store.put("b", Bytes::from("2")).unwrap();
        assert_eq!(store.dirty_keys(), vec!["a", "b"]);
        assert!(remote.inner.get("a").is_err());
        // Reads still served locally while offline.
        assert_eq!(store.get("a").unwrap(), Bytes::from("1"));

        store.set_connected(true);
        let report = store.synchronize();
        assert_eq!(report.pushed, vec!["a", "b"]);
        assert!(report.failed.is_empty());
        assert_eq!(remote.inner.get("b").unwrap(), Bytes::from("2"));
        assert!(store.dirty_keys().is_empty());
    }

    #[test]
    fn sync_while_disconnected_reports_failures() {
        let (_l, _r, store) = setup();
        store.set_connected(false);
        store.put("k", Bytes::from("v")).unwrap();
        let report = store.synchronize();
        assert_eq!(report.failed, vec!["k"]);
        assert!(report.pushed.is_empty());
        assert_eq!(store.dirty_keys(), vec!["k"]);
    }

    #[test]
    fn remote_failure_while_connected_leaves_dirty() {
        let (_l, remote, store) = setup();
        remote.set_failing(true);
        store.put("k", Bytes::from("v")).unwrap(); // still succeeds locally
        assert_eq!(store.dirty_keys(), vec!["k"]);
        remote.set_failing(false);
        let report = store.synchronize();
        assert_eq!(report.pushed, vec!["k"]);
        assert_eq!(remote.inner.get("k").unwrap(), Bytes::from("v"));
    }

    #[test]
    fn last_write_wins_after_reconnect() {
        let (_l, remote, store) = setup();
        store.put("k", Bytes::from("v1")).unwrap();
        store.set_connected(false);
        store.put("k", Bytes::from("v2")).unwrap();
        store.set_connected(true);
        store.synchronize();
        assert_eq!(remote.inner.get("k").unwrap(), Bytes::from("v2"));
    }

    #[test]
    fn offline_deletes_tombstone_and_replay() {
        let (_l, remote, store) = setup();
        store.put("k", Bytes::from("v")).unwrap();
        store.set_connected(false);
        assert!(store.delete("k").unwrap());
        // Remote still has it until resync.
        assert_eq!(remote.inner.get("k").unwrap(), Bytes::from("v"));
        store.set_connected(true);
        let report = store.synchronize();
        assert_eq!(report.deleted, vec!["k"]);
        assert!(remote.inner.get("k").is_err());
    }

    #[test]
    fn get_falls_back_to_remote_and_populates_local() {
        let (local, remote, store) = setup();
        remote.inner.put("only-remote", Bytes::from("r")).unwrap();
        assert_eq!(store.get("only-remote").unwrap(), Bytes::from("r"));
        assert_eq!(local.get("only-remote").unwrap(), Bytes::from("r"));
        // Now works offline too.
        store.set_connected(false);
        assert_eq!(store.get("only-remote").unwrap(), Bytes::from("r"));
    }

    #[test]
    fn write_after_delete_clears_tombstone() {
        let (_l, remote, store) = setup();
        store.set_connected(false);
        store.put("k", Bytes::from("v1")).unwrap();
        store.delete("k").unwrap();
        store.put("k", Bytes::from("v2")).unwrap();
        store.set_connected(true);
        let report = store.synchronize();
        assert_eq!(report.pushed, vec!["k"]);
        assert!(report.deleted.is_empty());
        assert_eq!(remote.inner.get("k").unwrap(), Bytes::from("v2"));
    }
}
