//! Storage substrates for the personalized knowledge base.
//!
//! §3 of the paper: "The personal knowledge base can store data
//! persistently in a variety of forms including files, relational database
//! management systems (RDBMS), key-value stores, and RDF triple stores",
//! with client-side caching, encryption and compression provided by
//! *enhanced data store clients* (reference \[11\] of the paper).
//!
//! This crate provides every storage form except RDF (which lives in
//! `cogsdk-rdf`):
//!
//! * [`kv`] — key-value stores (in-memory and file-backed) behind one
//!   trait, plus a simulated *remote* cloud store.
//! * [`table`] — a mini relational engine (schemas, typed rows, predicate
//!   selects) standing in for MySQL.
//! * [`csv`] — reading/writing comma-separated values with quoting.
//! * [`compress`] — an LZ77-window + RLE compressor (gzip stand-in).
//! * [`crypto`] — an XTEA-CTR cipher with an integrity tag. **Pedagogical,
//!   not production crypto**: the experiments only measure where
//!   encryption happens and what it costs, per DESIGN.md.
//! * [`enhanced`] — the enhanced data store client: caching, encryption
//!   and compression layered over any remote store.
//! * [`sync`] — offline operation and reconnect synchronization.

pub mod compress;
pub mod crypto;
pub mod csv;
pub mod enhanced;
pub mod kv;
pub mod sync;
pub mod table;

pub use enhanced::EnhancedClient;
pub use kv::{KeyValueStore, MemoryKv};
pub use table::{ColumnType, Predicate, Row, Schema, Table, TableStore, Value};

use std::error::Error;
use std::fmt;

/// Error type for storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named table/key/column does not exist.
    NotFound(String),
    /// The operation conflicts with existing schema or data.
    Conflict(String),
    /// A value failed validation against the schema.
    TypeMismatch(String),
    /// The remote store could not be reached.
    RemoteUnavailable(String),
    /// Local storage I/O failed (disk error, permissions, no space) —
    /// distinct from remote unavailability so callers don't retry a
    /// local fault as if the network were flapping.
    Io(String),
    /// Data failed integrity verification (tampering or corruption).
    IntegrityFailure,
    /// Malformed input (e.g. unparsable CSV).
    Malformed(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(what) => write!(f, "not found: {what}"),
            StoreError::Conflict(what) => write!(f, "conflict: {what}"),
            StoreError::TypeMismatch(what) => write!(f, "type mismatch: {what}"),
            StoreError::RemoteUnavailable(what) => write!(f, "remote unavailable: {what}"),
            StoreError::Io(what) => write!(f, "local i/o: {what}"),
            StoreError::IntegrityFailure => write!(f, "integrity verification failed"),
            StoreError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl Error for StoreError {}
