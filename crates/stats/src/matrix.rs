//! Small dense matrices and linear solving — just enough linear algebra
//! for least-squares normal equations.

use crate::StatsError;
use std::fmt;

/// A row-major dense matrix of `f64`.
///
/// # Examples
///
/// ```
/// use cogsdk_stats::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
/// let x = a.solve(&[2.0, 8.0]).unwrap();
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if `rows` is empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Matrix, StatsError> {
        let r = rows.len();
        if r == 0 {
            return Err(StatsError::new("matrix needs at least one row"));
        }
        let c = rows[0].len();
        if c == 0 || rows.iter().any(|row| row.len() != c) {
            return Err(StatsError::new(
                "matrix rows must be nonempty and equal length",
            ));
        }
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if the inner dimensions disagree.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != other.rows {
            return Err(StatsError::new("matrix product dimension mismatch"));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.set(i, j, out.get(i, j) + a * other.get(k, j));
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, StatsError> {
        if v.len() != self.cols {
            return Err(StatsError::new("matrix-vector dimension mismatch"));
        }
        Ok((0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j) * v[j]).sum())
            .collect())
    }

    /// Solves `self * x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if the matrix is not square, the dimensions
    /// disagree, or the system is singular (to working precision).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, StatsError> {
        if self.rows != self.cols {
            return Err(StatsError::new("solve requires a square matrix"));
        }
        if b.len() != self.rows {
            return Err(StatsError::new("solve right-hand side length mismatch"));
        }
        let n = self.rows;
        // Augmented matrix [A | b].
        let mut a = vec![0.0; n * (n + 1)];
        for i in 0..n {
            for j in 0..n {
                a[i * (n + 1) + j] = self.get(i, j);
            }
            a[i * (n + 1) + n] = b[i];
        }
        for col in 0..n {
            // Partial pivot: largest magnitude in this column.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[r1 * (n + 1) + col]
                        .abs()
                        .total_cmp(&a[r2 * (n + 1) + col].abs())
                })
                .expect("nonempty range");
            let pivot = a[pivot_row * (n + 1) + col];
            if pivot.abs() < 1e-12 {
                return Err(StatsError::new("singular system"));
            }
            if pivot_row != col {
                for j in 0..=n {
                    a.swap(col * (n + 1) + j, pivot_row * (n + 1) + j);
                }
            }
            for row in 0..n {
                if row == col {
                    continue;
                }
                let factor = a[row * (n + 1) + col] / a[col * (n + 1) + col];
                if factor == 0.0 {
                    continue;
                }
                for j in col..=n {
                    a[row * (n + 1) + j] -= factor * a[col * (n + 1) + j];
                }
            }
        }
        Ok((0..n)
            .map(|i| a[i * (n + 1) + n] / a[i * (n + 1) + i])
            .collect())
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_and_multiply() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let at = a.transpose();
        assert_eq!(at.rows(), 2);
        assert_eq!(at.cols(), 3);
        let ata = at.mul(&a).unwrap();
        assert_eq!(ata.get(0, 0), 35.0);
        assert_eq!(ata.get(0, 1), 44.0);
        assert_eq!(ata.get(1, 1), 56.0);
    }

    #[test]
    fn solve_identity() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert_eq!(a.solve(&[3.0, 4.0]).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert_eq!(a.solve(&[5.0, 7.0]).unwrap(), vec![7.0, 5.0]);
    }

    #[test]
    fn solve_general_3x3() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (got, want) in x.iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "{x:?}");
        }
    }

    #[test]
    fn solve_singular_errors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn dimension_errors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(a.solve(&[1.0]).is_err());
        assert!(a.mul(&a).is_err());
        assert!(a.mul_vec(&[1.0]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], [1.0, 2.0][..].as_ref()]).is_err());
    }

    #[test]
    fn mul_vec_computes_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a.get(2, 0);
    }
}
