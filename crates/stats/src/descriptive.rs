//! Descriptive statistics over slices of `f64`.

use crate::StatsError;

/// Arithmetic mean; `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(cogsdk_stats::descriptive::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(cogsdk_stats::descriptive::mean(&[]), None);
/// ```
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

/// Median (average of the two middle elements for even lengths); `None`
/// for an empty slice.
pub fn median(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

/// Population variance; `None` for an empty slice.
pub fn variance(data: &[f64]) -> Option<f64> {
    let m = mean(data)?;
    Some(data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / data.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    variance(data).map(f64::sqrt)
}

/// The `q`-th percentile (0–100) using linear interpolation between order
/// statistics; `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]`.
pub fn percentile(data: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0, 100]");
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// A one-pass summary of a data set.
///
/// # Examples
///
/// ```
/// use cogsdk_stats::Summary;
///
/// let s = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]).unwrap();
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert_eq!(s.mean(), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    variance: f64,
    min: f64,
    max: f64,
    median: f64,
    p95: f64,
    p99: f64,
}

impl Summary {
    /// Summarizes `data`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if `data` is empty.
    pub fn from_slice(data: &[f64]) -> Result<Summary, StatsError> {
        if data.is_empty() {
            return Err(StatsError::new("summary of empty data"));
        }
        Ok(Summary {
            count: data.len(),
            mean: mean(data).expect("nonempty"),
            variance: variance(data).expect("nonempty"),
            min: data.iter().copied().fold(f64::INFINITY, f64::min),
            max: data.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            median: median(data).expect("nonempty"),
            p95: percentile(data, 95.0).expect("nonempty"),
            p99: percentile(data, 99.0).expect("nonempty"),
        })
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Median observation.
    pub fn median(&self) -> f64 {
        self.median
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.p95
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.p99
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} med={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min,
            self.median,
            self.p95,
            self.p99,
            self.max
        )
    }
}

/// A fixed-bucket histogram for latency distributions (§2: the SDK
/// "maintains histories of latencies allowing users to compare latency
/// distributions").
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(lo < hi, "histogram bounds out of order");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let width = (self.hi - self.lo) / n as f64;
            let idx = (((value - self.lo) / width) as usize).min(n - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Counts per bucket.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Total recorded observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_of_known_data() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data), Some(5.0));
        assert_eq!(median(&data), Some(4.5));
        assert_eq!(std_dev(&data), Some(2.0));
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&data, 0.0), Some(10.0));
        assert_eq!(percentile(&data, 100.0), Some(40.0));
        assert_eq!(percentile(&data, 50.0), Some(25.0));
    }

    #[test]
    #[should_panic(expected = "[0, 100]")]
    fn percentile_rejects_out_of_range_q() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn summary_matches_parts() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Summary::from_slice(&data).unwrap();
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.count(), 5);
        assert!(s.to_string().contains("n=5"));
    }

    #[test]
    fn summary_of_empty_errors() {
        assert!(Summary::from_slice(&[]).is_err());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.5, 1.0, 2.5, 9.9, 10.0, -1.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }
}
