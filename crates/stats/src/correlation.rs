//! Correlation measures.
//!
//! §2: "Latency values can also be correlated with one or more parameters."
//! These functions quantify that correlation so the SDK can decide whether
//! a latency parameter is worth conditioning a predictor on.

use crate::StatsError;

/// Pearson product-moment correlation coefficient in `[-1, 1]`.
///
/// # Errors
///
/// Returns [`StatsError`] if the slices differ in length, have fewer than
/// two elements, or either is constant.
///
/// # Examples
///
/// ```
/// let r = cogsdk_stats::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::new("x and y must have equal length"));
    }
    if x.len() < 2 {
        return Err(StatsError::new("correlation needs at least two points"));
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        sxy += (xi - mx) * (yi - my);
        sxx += (xi - mx).powi(2);
        syy += (yi - my).powi(2);
    }
    if sxx.abs() < 1e-12 || syy.abs() < 1e-12 {
        return Err(StatsError::new("correlation undefined for constant input"));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson over the ranks, robust to monotone
/// nonlinearity. Ties receive their average rank.
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    pearson(&ranks(x), &ranks(y))
}

/// Average ranks (1-based) with ties sharing their mean rank.
fn ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| data[a].total_cmp(&data[b]));
    let mut out = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // Positions i..=j all tie: average their 1-based ranks.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.5, "r={r}");
    }

    #[test]
    fn constant_input_errors() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[5.0, 5.0]).is_err());
    }

    #[test]
    fn length_mismatch_errors() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn spearman_sees_monotone_nonlinear_as_perfect() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|x: &f64| x.exp()).collect();
        let p = pearson(&x, &y).unwrap();
        let s = spearman(&x, &y).unwrap();
        assert!(s > 0.999, "s={s}");
        assert!(p < s, "pearson {p} should be below spearman {s}");
    }

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }
}
