//! Statistical and mathematical analysis for the cogsdk workspace.
//!
//! The paper's personalized knowledge base "has the ability to perform
//! statistical and mathematical analysis on numerical data. Regression
//! analysis can be used to predict new data values from existing values"
//! (§3), using the Apache Commons Math library. This crate is the in-repo
//! substitute: descriptive statistics, ordinary-least-squares and
//! polynomial regression, correlation, exponential smoothing, and the small
//! dense linear algebra they need.
//!
//! The rich SDK also uses this crate for latency prediction conditioned on
//! *latency parameters* (§2).
//!
//! # Examples
//!
//! ```
//! use cogsdk_stats::regression::LinearRegression;
//!
//! // Latency grows linearly with payload size: recover the trend.
//! let sizes = [1.0, 2.0, 3.0, 4.0];
//! let latencies = [10.0, 12.0, 14.0, 16.0];
//! let fit = LinearRegression::fit(&sizes, &latencies).unwrap();
//! assert!((fit.slope() - 2.0).abs() < 1e-9);
//! assert!((fit.predict(10.0) - 28.0).abs() < 1e-9);
//! ```

pub mod correlation;
pub mod descriptive;
pub mod forecast;
pub mod matrix;
pub mod regression;

pub use correlation::{pearson, spearman};
pub use descriptive::Summary;
pub use forecast::Ewma;
pub use matrix::Matrix;
pub use regression::{LinearRegression, MultipleRegression, PolynomialRegression};

use std::error::Error;
use std::fmt;

/// Error produced when a statistical computation is undefined for its
/// input (too few points, degenerate design matrix, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsError {
    message: String,
}

impl StatsError {
    pub(crate) fn new(message: impl Into<String>) -> StatsError {
        StatsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "statistics error: {}", self.message)
    }
}

impl Error for StatsError {}
