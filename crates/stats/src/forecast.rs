//! Time-weighted forecasting.
//!
//! Latency series drift as services warm up, degrade, and recover. An
//! exponentially weighted moving average tracks the recent regime instead
//! of averaging over all history; the SDK offers it as one of its latency
//! predictors (experiment E4 compares them).

/// An exponentially weighted moving average.
///
/// # Examples
///
/// ```
/// use cogsdk_stats::Ewma;
///
/// let mut ewma = Ewma::new(0.5);
/// ewma.observe(10.0);
/// ewma.observe(20.0);
/// assert_eq!(ewma.value(), Some(15.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
    count: u64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` (higher = faster to
    /// follow recent observations).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Ewma {
            alpha,
            value: None,
            count: 0,
        }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        self.value = Some(match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        });
    }

    /// The current smoothed value; `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Number of observations consumed.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// A fixed-capacity sliding window mean, the simpler alternative to
/// [`Ewma`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingMean {
    capacity: usize,
    window: std::collections::VecDeque<f64>,
    sum: f64,
}

impl SlidingMean {
    /// Creates a window holding the last `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> SlidingMean {
        assert!(capacity > 0, "capacity must be positive");
        SlidingMean {
            capacity,
            window: std::collections::VecDeque::with_capacity(capacity),
            sum: 0.0,
        }
    }

    /// Feeds one observation, evicting the oldest if full.
    pub fn observe(&mut self, x: f64) {
        if self.window.len() == self.capacity {
            self.sum -= self.window.pop_front().expect("window is full");
        }
        self.window.push_back(x);
        self.sum += x;
    }

    /// The current window mean; `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.sum / self.window.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_starts_at_first_observation() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        e.observe(42.0);
        assert_eq!(e.value(), Some(42.0));
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn ewma_tracks_regime_change_faster_than_global_mean() {
        let mut e = Ewma::new(0.3);
        let mut all = Vec::new();
        for _ in 0..50 {
            e.observe(10.0);
        }
        all.extend(std::iter::repeat_n(10.0, 50));
        for _ in 0..10 {
            e.observe(100.0);
        }
        all.extend(std::iter::repeat_n(100.0, 10));
        let global_mean = all.iter().sum::<f64>() / all.len() as f64;
        let ewma = e.value().unwrap();
        assert!(
            ewma > global_mean + 40.0,
            "ewma {ewma} should react faster than mean {global_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn sliding_mean_evicts_oldest() {
        let mut s = SlidingMean::new(2);
        assert_eq!(s.value(), None);
        s.observe(1.0);
        s.observe(3.0);
        assert_eq!(s.value(), Some(2.0));
        s.observe(5.0); // evicts 1.0
        assert_eq!(s.value(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sliding_mean_rejects_zero_capacity() {
        let _ = SlidingMean::new(0);
    }
}
