//! Regression analysis: simple, multiple, and polynomial least squares.
//!
//! Used by the rich SDK to predict service latency from latency parameters
//! (§2) and by the knowledge base for predictive analytics (§3, Fig. 5).

use crate::matrix::Matrix;
use crate::StatsError;

/// Simple ordinary-least-squares fit `y = intercept + slope * x`.
///
/// # Examples
///
/// ```
/// use cogsdk_stats::LinearRegression;
///
/// let fit = LinearRegression::fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
/// assert!((fit.intercept() - 1.0).abs() < 1e-12);
/// assert!((fit.slope() - 2.0).abs() < 1e-12);
/// assert!(fit.r_squared() > 0.999);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    intercept: f64,
    slope: f64,
    r_squared: f64,
    n: usize,
}

impl LinearRegression {
    /// Fits the least-squares line through `(x[i], y[i])`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if fewer than two points are given, the
    /// lengths differ, or all `x` values are identical.
    pub fn fit(x: &[f64], y: &[f64]) -> Result<LinearRegression, StatsError> {
        if x.len() != y.len() {
            return Err(StatsError::new("x and y must have equal length"));
        }
        if x.len() < 2 {
            return Err(StatsError::new("regression needs at least two points"));
        }
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let sxx: f64 = x.iter().map(|xi| (xi - mx).powi(2)).sum();
        if sxx.abs() < 1e-12 {
            return Err(StatsError::new("all x values identical"));
        }
        let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| (xi - mx) * (yi - my)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_tot: f64 = y.iter().map(|yi| (yi - my).powi(2)).sum();
        let ss_res: f64 = x
            .iter()
            .zip(y)
            .map(|(xi, yi)| (yi - (intercept + slope * xi)).powi(2))
            .sum();
        let r_squared = if ss_tot.abs() < 1e-12 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Ok(LinearRegression {
            intercept,
            slope,
            r_squared,
            n: x.len(),
        })
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// The coefficient of determination R².
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Number of points the model was fitted on.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Predicts `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Multiple linear regression `y = b0 + b1*x1 + … + bk*xk` via normal
/// equations.
///
/// # Examples
///
/// ```
/// use cogsdk_stats::MultipleRegression;
///
/// // y = 1 + 2*a + 3*b
/// let rows = vec![
///     (vec![0.0, 0.0], 1.0),
///     (vec![1.0, 0.0], 3.0),
///     (vec![0.0, 1.0], 4.0),
///     (vec![1.0, 1.0], 6.0),
/// ];
/// let xs: Vec<&[f64]> = rows.iter().map(|(x, _)| x.as_slice()).collect();
/// let ys: Vec<f64> = rows.iter().map(|(_, y)| *y).collect();
/// let fit = MultipleRegression::fit(&xs, &ys).unwrap();
/// assert!((fit.predict(&[2.0, 2.0]).unwrap() - 11.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultipleRegression {
    /// `coefficients[0]` is the intercept; `coefficients[i]` multiplies
    /// feature `i-1`.
    coefficients: Vec<f64>,
    r_squared: f64,
    n: usize,
}

impl MultipleRegression {
    /// Fits the model on rows of features `xs[i]` with targets `ys[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if the shapes disagree, there are fewer rows
    /// than coefficients, or the design matrix is singular.
    pub fn fit(xs: &[&[f64]], ys: &[f64]) -> Result<MultipleRegression, StatsError> {
        if xs.len() != ys.len() {
            return Err(StatsError::new("xs and ys must have equal length"));
        }
        if xs.is_empty() {
            return Err(StatsError::new("regression needs data"));
        }
        let k = xs[0].len();
        if xs.iter().any(|row| row.len() != k) {
            return Err(StatsError::new("feature rows must have equal length"));
        }
        if xs.len() < k + 1 {
            return Err(StatsError::new("need at least k+1 rows for k features"));
        }
        // Design matrix with a leading 1s column for the intercept.
        let mut design = Matrix::zeros(xs.len(), k + 1);
        for (i, row) in xs.iter().enumerate() {
            design.set(i, 0, 1.0);
            for (j, &v) in row.iter().enumerate() {
                design.set(i, j + 1, v);
            }
        }
        let dt = design.transpose();
        let dtd = dt.mul(&design)?;
        let dty = dt.mul_vec(&{
            // mul_vec multiplies by a cols-length vector; dt has xs.len()
            // columns, so pass the targets.
            ys.to_vec()
        })?;
        let coefficients = dtd.solve(&dty)?;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(row, y)| {
                let pred = coefficients[0]
                    + row
                        .iter()
                        .zip(&coefficients[1..])
                        .map(|(x, c)| x * c)
                        .sum::<f64>();
                (y - pred).powi(2)
            })
            .sum();
        let r_squared = if ss_tot.abs() < 1e-12 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Ok(MultipleRegression {
            coefficients,
            r_squared,
            n: xs.len(),
        })
    }

    /// The fitted coefficients, intercept first.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The coefficient of determination R².
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Number of rows the model was fitted on.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Predicts `y` for a feature row.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if `features.len()` does not match the model.
    pub fn predict(&self, features: &[f64]) -> Result<f64, StatsError> {
        if features.len() + 1 != self.coefficients.len() {
            return Err(StatsError::new("feature count mismatch"));
        }
        Ok(self.coefficients[0]
            + features
                .iter()
                .zip(&self.coefficients[1..])
                .map(|(x, c)| x * c)
                .sum::<f64>())
    }
}

/// Polynomial least-squares fit `y = c0 + c1*x + … + cd*x^d`.
///
/// # Examples
///
/// ```
/// use cogsdk_stats::PolynomialRegression;
///
/// let x = [0.0, 1.0, 2.0, 3.0, 4.0];
/// let y: Vec<f64> = x.iter().map(|x| 2.0 + x * x).collect();
/// let fit = PolynomialRegression::fit(&x, &y, 2).unwrap();
/// assert!((fit.predict(5.0) - 27.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolynomialRegression {
    coefficients: Vec<f64>,
}

impl PolynomialRegression {
    /// Fits a degree-`degree` polynomial.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if there are fewer than `degree + 1` points
    /// or the Vandermonde system is singular.
    pub fn fit(x: &[f64], y: &[f64], degree: usize) -> Result<PolynomialRegression, StatsError> {
        if x.len() != y.len() {
            return Err(StatsError::new("x and y must have equal length"));
        }
        if x.len() < degree + 1 {
            return Err(StatsError::new("not enough points for requested degree"));
        }
        let rows: Vec<Vec<f64>> = x
            .iter()
            .map(|&xi| (1..=degree).map(|d| xi.powi(d as i32)).collect())
            .collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let fit = MultipleRegression::fit(&row_refs, y)?;
        Ok(PolynomialRegression {
            coefficients: fit.coefficients().to_vec(),
        })
    }

    /// Coefficients, constant term first.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Evaluates the polynomial at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        // Horner's rule, highest degree first.
        self.coefficients
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc * x + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_fit_recovers_planted_line() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|x| 3.0 - 0.5 * x).collect();
        let fit = LinearRegression::fit(&x, &y).unwrap();
        assert!((fit.intercept() - 3.0).abs() < 1e-9);
        assert!((fit.slope() + 0.5).abs() < 1e-9);
        assert!((fit.r_squared() - 1.0).abs() < 1e-9);
        assert_eq!(fit.n(), 50);
    }

    #[test]
    fn simple_fit_with_noise_keeps_trend() {
        // Deterministic pseudo-noise.
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, x)| 10.0 + 2.0 * x + ((i * 7919) % 13) as f64 - 6.0)
            .collect();
        let fit = LinearRegression::fit(&x, &y).unwrap();
        assert!((fit.slope() - 2.0).abs() < 0.05, "slope={}", fit.slope());
        assert!(fit.r_squared() > 0.99);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(LinearRegression::fit(&[1.0], &[1.0]).is_err());
        assert!(LinearRegression::fit(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(LinearRegression::fit(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn constant_target_has_unit_r_squared() {
        let fit = LinearRegression::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope(), 0.0);
        assert_eq!(fit.r_squared(), 1.0);
    }

    #[test]
    fn multiple_regression_recovers_coefficients() {
        // y = 2 + 1*a - 3*b + 0.5*c over a grid.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    let (a, b, c) = (a as f64, b as f64, c as f64);
                    xs.push(vec![a, b, c]);
                    ys.push(2.0 + a - 3.0 * b + 0.5 * c);
                }
            }
        }
        let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        let fit = MultipleRegression::fit(&refs, &ys).unwrap();
        let c = fit.coefficients();
        for (got, want) in c.iter().zip([2.0, 1.0, -3.0, 0.5]) {
            assert!((got - want).abs() < 1e-9, "{c:?}");
        }
        assert!(fit.r_squared() > 0.999);
    }

    #[test]
    fn multiple_regression_shape_errors() {
        assert!(MultipleRegression::fit(&[], &[]).is_err());
        let xs: Vec<&[f64]> = vec![&[1.0, 2.0], &[1.0]];
        assert!(MultipleRegression::fit(&xs, &[1.0, 2.0]).is_err());
        let xs: Vec<&[f64]> = vec![&[1.0, 2.0]];
        assert!(
            MultipleRegression::fit(&xs, &[1.0]).is_err(),
            "too few rows"
        );
    }

    #[test]
    fn multiple_predict_feature_count_mismatch() {
        let xs: Vec<&[f64]> = vec![&[0.0], &[1.0], &[2.0]];
        let fit = MultipleRegression::fit(&xs, &[0.0, 1.0, 2.0]).unwrap();
        assert!(fit.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn polynomial_recovers_quadratic() {
        let x: Vec<f64> = (-5..=5).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|x| 1.0 - 2.0 * x + 0.5 * x * x).collect();
        let fit = PolynomialRegression::fit(&x, &y, 2).unwrap();
        let c = fit.coefficients();
        for (got, want) in c.iter().zip([1.0, -2.0, 0.5]) {
            assert!((got - want).abs() < 1e-6, "{c:?}");
        }
        assert!((fit.predict(10.0) - (1.0 - 20.0 + 50.0)).abs() < 1e-6);
    }

    #[test]
    fn polynomial_needs_enough_points() {
        assert!(PolynomialRegression::fit(&[1.0, 2.0], &[1.0, 2.0], 2).is_err());
    }
}
