//! Self-contained JSON support for the cogsdk workspace.
//!
//! Cloud and cognitive services in the paper exchange payloads as JSON over
//! HTTP. This crate provides the wire format used throughout the simulated
//! service fabric: a dynamically typed [`Json`] value, a strict recursive
//! descent [`parser`](Json::parse), a compact and a pretty
//! [serializer](Json::to_string_pretty), and a JSON-Pointer-style
//! [path accessor](Json::pointer).
//!
//! The implementation is deliberately dependency-free (the workspace policy
//! allows `serde` but not `serde_json`) and is strict RFC 8259 JSON: no
//! comments, no trailing commas, no NaN/Infinity literals.
//!
//! # Examples
//!
//! ```
//! use cogsdk_json::Json;
//!
//! # fn main() -> Result<(), cogsdk_json::ParseJsonError> {
//! let doc = Json::parse(r#"{"entities": [{"name": "USA", "salience": 0.9}]}"#)?;
//! let name = doc.pointer("/entities/0/name").and_then(Json::as_str);
//! assert_eq!(name, Some("USA"));
//! # Ok(())
//! # }
//! ```

mod parse;
mod ser;
mod value;

pub use parse::{parse, ParseJsonError};
pub use value::{Json, Number};

/// Builds a [`Json`] value with JSON-like literal syntax.
///
/// Supports objects, arrays, strings, numbers, booleans, `null`, and splicing
/// arbitrary Rust expressions that implement `Into<Json>` (parenthesize
/// non-literal expressions).
///
/// # Examples
///
/// ```
/// use cogsdk_json::{json, Json};
///
/// let score = 0.75;
/// let v = json!({
///     "service": "nlu-alpha",
///     "scores": [(score), 1.0],
///     "ok": true,
///     "detail": null,
/// });
/// assert_eq!(v.pointer("/scores/0").and_then(Json::as_f64), Some(0.75));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Json::Null };
    (true) => { $crate::Json::Bool(true) };
    (false) => { $crate::Json::Bool(false) };
    ([ $( $elem:tt ),* $(,)? ]) => {
        $crate::Json::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $( $key:tt : $val:tt ),* $(,)? }) => {{
        let obj: Vec<(String, $crate::Json)> =
            vec![ $( ($key.to_string(), $crate::json!($val)) ),* ];
        $crate::Json::Object(obj)
    }};
    ($other:expr) => { $crate::Json::from($other) };
}
