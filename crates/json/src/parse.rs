//! A strict recursive-descent JSON parser.

use crate::{Json, Number};
use std::error::Error;
use std::fmt;

/// Error produced when parsing invalid JSON text.
///
/// Carries the byte offset of the first offending character and a short
/// description of what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    offset: usize,
    message: String,
}

impl ParseJsonError {
    /// Byte offset into the input where parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseJsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`ParseJsonError`] if the input is not a single valid JSON value
/// optionally surrounded by whitespace.
pub fn parse(input: &str) -> Result<Json, ParseJsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting depth bound: protects against stack exhaustion on adversarial
/// deeply nested inputs (a service could in principle return one).
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseJsonError {
        ParseJsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseJsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
        self.depth -= 1;
        Ok(Json::Object(entries))
    }

    fn array(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
        self.depth -= 1;
        Ok(Json::Array(items))
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safety of from_utf8: the input is a &str, and we only
                // stopped on ASCII boundaries, so the run is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input was valid UTF-8"),
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        let ch = if (0xD800..=0xDBFF).contains(&cp) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate escape"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else if (0xDC00..=0xDFFF).contains(&cp) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseJsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Number(Number::Int(i)));
            }
            // Integer overflow: fall back to float like other parsers do.
        }
        let f: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !f.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Number(Number::Float(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap().as_i64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-1.5e-2").unwrap().as_f64(), Some(-0.015));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, {"b": null}, "x"], "c": true}"#).unwrap();
        assert_eq!(v.pointer("/a/1/b"), Some(&Json::Null));
        assert_eq!(v.pointer("/a/2").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\n\t\"\\\/ A é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\/ A é"));
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_lone_surrogates() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "  ",
            "{",
            "[",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1,}",
            "01",
            "1.",
            "1e",
            "+1",
            "nul",
            "tru",
            "\"unterminated",
            "\"ctrl\u{01}\"",
            "{\"a\" 1}",
            "[1 2]",
            "1 2",
            "NaN",
            "Infinity",
            "'single'",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn reports_error_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset(), 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn integer_overflow_falls_back_to_float() {
        let v = parse("99999999999999999999").unwrap();
        assert!(v.as_i64().is_none());
        assert!(v.as_f64().unwrap() > 9.9e18);
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn deeply_nested_within_limit_parses() {
        let depth = 200;
        let text = "[".repeat(depth) + &"]".repeat(depth);
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn duplicate_keys_preserved_in_order() {
        let v = parse(r#"{"k": 1, "k": 2, "j": 3}"#).unwrap();
        let entries = v.as_object().unwrap();
        assert_eq!(entries.len(), 3, "duplicates preserved structurally");
        assert_eq!(
            v.get("k").and_then(Json::as_i64),
            Some(2),
            "last wins on access"
        );
    }

    #[test]
    fn minimal_and_maximal_integers() {
        assert_eq!(
            parse("9223372036854775807").unwrap().as_i64(),
            Some(i64::MAX)
        );
        assert_eq!(
            parse("-9223372036854775808").unwrap().as_i64(),
            Some(i64::MIN)
        );
    }

    #[test]
    fn whitespace_tolerated_everywhere() {
        let v = parse(" \n\t{ \"a\" :\r [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v, json!({"a": [1, 2]}));
    }
}
