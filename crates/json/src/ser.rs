//! Compact and pretty JSON serialization.

use crate::Json;
use std::fmt::Write as _;

/// Serializes `value`, pretty-printing with the given indent width if
/// `indent` is `Some`.
///
/// # Panics
///
/// Panics if the value contains a non-finite float; such a value cannot be
/// represented in JSON and indicates a bug in the producer.
pub(crate) fn to_string(value: &Json, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, value, indent, 0);
    out
}

fn write_value(out: &mut String, value: &Json, indent: Option<usize>, level: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(n) => {
            assert!(
                n.as_f64().is_finite(),
                "cannot serialize non-finite number to JSON"
            );
            let _ = write!(out, "{n}");
        }
        Json::String(s) => write_string(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::{json, Json};

    #[test]
    fn compact_output() {
        let v = json!({"a": [1, 2.5, "x"], "b": null, "c": false});
        assert_eq!(v.to_json(), r#"{"a":[1,2.5,"x"],"b":null,"c":false}"#);
    }

    #[test]
    fn pretty_output_indents() {
        let v = json!({"a": [1]});
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(json!([]).to_json(), "[]");
        assert_eq!(Json::object().to_json(), "{}");
        assert_eq!(json!([]).to_string_pretty(), "[]");
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let v = Json::from("a\"b\\c\nd\u{0001}e");
        assert_eq!(v.to_json(), "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn float_round_trip_keeps_type() {
        let v = json!({"x": 3.0});
        let back = Json::parse(&v.to_json()).unwrap();
        assert_eq!(back.pointer("/x").and_then(Json::as_f64), Some(3.0));
        assert!(back.pointer("/x").and_then(Json::as_i64).is_none());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_float_panics() {
        let _ = Json::from(f64::NAN).to_json();
    }
}
