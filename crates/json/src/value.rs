//! The dynamically typed JSON value.

use std::fmt;

/// A JSON number, preserving the integer/float distinction.
///
/// JSON itself has a single number type; we keep integers exact so that
/// identifiers, counters and sizes survive a round trip without precision
/// loss.
///
/// # Examples
///
/// ```
/// use cogsdk_json::{Json, Number};
///
/// let n = Json::from(42);
/// assert_eq!(n.as_i64(), Some(42));
/// assert_eq!(n.as_f64(), Some(42.0));
/// assert_eq!(Json::Number(Number::Float(0.5)).as_i64(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An exact signed integer.
    Int(i64),
    /// A double-precision float. Never NaN or infinite in a value produced
    /// by the parser; the serializer rejects non-finite floats.
    Float(f64),
}

impl Number {
    /// Returns the value as `f64`, widening integers.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// Returns the value as `i64` if it is an integer.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => {
                let mag = x.abs();
                if mag != 0.0 && !(1e-5..1e15).contains(&mag) {
                    // Exponent notation: compact for extreme magnitudes, and
                    // the 'e' keeps the float/int distinction on round trip.
                    write!(f, "{x:e}")
                } else if x.fract() == 0.0 {
                    // Keep a trailing ".0" so the value re-parses as a float.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON document: the wire format spoken by every simulated service.
///
/// Objects preserve insertion order (like most cognitive-service responses)
/// and allow duplicate-free access through [`Json::get`].
///
/// # Examples
///
/// ```
/// use cogsdk_json::{json, Json};
///
/// let mut resp = json!({"status": "ok"});
/// resp.insert("latency_ms", 12.5);
/// assert_eq!(resp.get("latency_ms").and_then(Json::as_f64), Some(12.5));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Json {
    /// The `null` literal.
    #[default]
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A number; see [`Number`].
    Number(Number),
    /// A UTF-8 string.
    String(String),
    /// An ordered sequence of values.
    Array(Vec<Json>),
    /// An insertion-ordered map of string keys to values.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document from text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseJsonError`](crate::ParseJsonError) with the byte offset
    /// of the first violation if the input is not valid RFC 8259 JSON or if
    /// there is trailing non-whitespace input.
    pub fn parse(input: &str) -> Result<Json, crate::ParseJsonError> {
        crate::parse(input)
    }

    /// Returns an empty object. Convenient as a response builder seed.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Returns `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Returns the boolean if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Returns the value as `usize` if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|i| usize::try_from(i).ok())
    }

    /// Returns the string slice if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array slice if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object entries if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object; `None` for non-objects or missing keys.
    ///
    /// If duplicate keys exist the *last* one wins, matching the behaviour of
    /// most deployed JSON parsers.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(o) => o.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the array element at `idx`; `None` for non-arrays or
    /// out-of-bounds indexes.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Array(a) => a.get(idx),
            _ => None,
        }
    }

    /// Inserts (or replaces) `key` in an object, turning `Null` into an
    /// object first. Returns the previous value, if any.
    ///
    /// # Panics
    ///
    /// Panics if `self` is a non-null, non-object value: inserting a key
    /// into, say, an array is always a logic error.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Json>) -> Option<Json> {
        if self.is_null() {
            *self = Json::object();
        }
        let Json::Object(entries) = self else {
            panic!("Json::insert called on non-object value");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        entries.push((key, value));
        None
    }

    /// Appends `value` to an array, turning `Null` into an array first.
    ///
    /// # Panics
    ///
    /// Panics if `self` is a non-null, non-array value.
    pub fn push(&mut self, value: impl Into<Json>) {
        if self.is_null() {
            *self = Json::Array(Vec::new());
        }
        let Json::Array(items) = self else {
            panic!("Json::push called on non-array value");
        };
        items.push(value.into());
    }

    /// Resolves a JSON-Pointer-like path such as `/entities/0/name`.
    ///
    /// An empty path returns `self`. Unlike full RFC 6901 we do not support
    /// the `~0`/`~1` escapes; service payloads in this workspace never use
    /// `/` or `~` in keys.
    pub fn pointer(&self, path: &str) -> Option<&Json> {
        if path.is_empty() {
            return Some(self);
        }
        let mut cur = self;
        for part in path.strip_prefix('/')?.split('/') {
            cur = match cur {
                Json::Object(_) => cur.get(part)?,
                Json::Array(a) => a.get(part.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Serializes to compact JSON text.
    pub fn to_json(&self) -> String {
        crate::ser::to_string(self, None)
    }

    /// Serializes to pretty-printed JSON text with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        crate::ser::to_string(self, Some(2))
    }

    /// Approximate in-memory/wire size of the value in bytes.
    ///
    /// Used by latency models that scale with payload size.
    pub fn size_bytes(&self) -> usize {
        match self {
            Json::Null => 4,
            Json::Bool(_) => 5,
            Json::Number(_) => 12,
            Json::String(s) => s.len() + 2,
            Json::Array(a) => 2 + a.iter().map(Json::size_bytes).sum::<usize>(),
            Json::Object(o) => {
                2 + o
                    .iter()
                    .map(|(k, v)| k.len() + 3 + v.size_bytes())
                    .sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Number(Number::Int(i))
    }
}

impl From<i32> for Json {
    fn from(i: i32) -> Json {
        Json::Number(Number::Int(i64::from(i)))
    }
}

impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Number(Number::Int(i64::from(i)))
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Number(Number::Int(i as i64))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Number(Number::Float(x))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl From<Number> for Json {
    fn from(n: Number) -> Json {
        Json::Number(n)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl FromIterator<(String, Json)> for Json {
    fn from_iter<I: IntoIterator<Item = (String, Json)>>(iter: I) -> Json {
        Json::Object(iter.into_iter().collect())
    }
}

impl FromIterator<Json> for Json {
    fn from_iter<I: IntoIterator<Item = Json>>(iter: I) -> Json {
        Json::Array(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn default_is_null() {
        assert!(Json::default().is_null());
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = json!({"a": 1});
        assert_eq!(v.as_str(), None);
        assert_eq!(v.as_f64(), None);
        assert_eq!(v.as_bool(), None);
        assert_eq!(v.as_array(), None);
        assert!(v.as_object().is_some());
    }

    #[test]
    fn get_prefers_last_duplicate_key() {
        let v = Json::Object(vec![
            ("k".into(), Json::from(1)),
            ("k".into(), Json::from(2)),
        ]);
        assert_eq!(v.get("k").and_then(Json::as_i64), Some(2));
    }

    #[test]
    fn insert_replaces_existing_key_and_preserves_order() {
        let mut v = json!({"a": 1, "b": 2});
        let old = v.insert("a", 10);
        assert_eq!(old.and_then(|j| j.as_i64()), Some(1));
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn insert_on_null_creates_object() {
        let mut v = Json::Null;
        v.insert("x", true);
        assert_eq!(v.get("x").and_then(Json::as_bool), Some(true));
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn insert_on_array_panics() {
        let mut v = json!([1]);
        v.insert("x", 1);
    }

    #[test]
    fn push_on_null_creates_array() {
        let mut v = Json::Null;
        v.push(1);
        v.push("two");
        assert_eq!(v.as_array().unwrap().len(), 2);
    }

    #[test]
    fn pointer_traverses_nested_structures() {
        let v = json!({"a": [{"b": [10, 20]}]});
        assert_eq!(v.pointer("/a/0/b/1").and_then(Json::as_i64), Some(20));
        assert_eq!(v.pointer(""), Some(&v));
        assert_eq!(v.pointer("/a/5"), None);
        assert_eq!(v.pointer("/a/0/b/x"), None);
        assert_eq!(v.pointer("no-leading-slash"), None);
    }

    #[test]
    fn number_display_keeps_float_marker() {
        assert_eq!(Number::Float(3.0).to_string(), "3.0");
        assert_eq!(Number::Int(3).to_string(), "3");
        assert_eq!(Number::Float(0.25).to_string(), "0.25");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Json::from(5i32).as_i64(), Some(5));
        assert_eq!(Json::from(5usize).as_i64(), Some(5));
        assert_eq!(Json::from("s").as_str(), Some("s"));
        assert_eq!(Json::from(vec![1, 2]).as_array().unwrap().len(), 2);
        assert!(Json::from(Option::<i64>::None).is_null());
        assert_eq!(Json::from(Some(7i64)).as_i64(), Some(7));
    }

    #[test]
    fn size_bytes_scales_with_content() {
        let small = json!({"k": "v"});
        let big = json!({"k": "a much longer value that occupies more bytes"});
        assert!(big.size_bytes() > small.size_bytes());
    }
}
