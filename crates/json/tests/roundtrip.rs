//! Property-based round-trip tests: parse(serialize(v)) == v for arbitrary
//! JSON values, in both compact and pretty form.

use cogsdk_json::{Json, Number};
use proptest::prelude::*;

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(|i| Json::Number(Number::Int(i))),
        // Finite floats only; JSON cannot carry NaN/inf.
        prop::num::f64::NORMAL.prop_map(|f| Json::Number(Number::Float(f))),
        "[a-zA-Z0-9 _\\-\\\\\"\n\t\u{00e9}\u{4e16}]{0,12}".prop_map(Json::String),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..6)
                .prop_map(|kv| Json::Object(kv.into_iter().collect())),
        ]
    })
}

proptest! {
    #[test]
    fn compact_round_trip(v in arb_json()) {
        let text = v.to_json();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trip(v in arb_json()) {
        let text = v.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = Json::parse(&s);
    }

    #[test]
    fn size_bytes_is_close_to_serialized_length(v in arb_json()) {
        // size_bytes is an estimate used by latency models; it should be
        // within a reasonable factor of the actual compact serialization.
        let est = v.size_bytes();
        let actual = v.to_json().len();
        prop_assert!(est + 16 >= actual / 8, "est={est} actual={actual}");
    }
}
