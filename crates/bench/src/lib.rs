//! Benchmark harness crate.
//!
//! The library target only hosts shared helpers; the experiments live in
//! `benches/` (one Criterion target per figure/claim — see the
//! experiment index in DESIGN.md and the results in EXPERIMENTS.md).

use cogsdk_core::RichSdk;
use cogsdk_sim::SimEnv;

/// Standard seed for benchmark reproducibility.
pub const BENCH_SEED: u64 = 0xC0_95DC;

/// Builds a `(SimEnv, RichSdk)` pair on the standard seed.
pub fn bench_env() -> (SimEnv, RichSdk) {
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    (env, sdk)
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_env_constructs() {
        let (_env, sdk) = super::bench_env();
        assert!(sdk.registry().is_empty());
    }
}
