//! A13 (ablation): the streaming bulk loader vs document-at-a-time
//! ingest.
//!
//! The Fig. 5 loop's write side pays four per-document costs when driven
//! through `ingest_text` on a durable base: NLU analysis, term
//! interning, a WAL append **with its own fsync**, and a full epoch
//! publish. The pipelined loader amortizes the commit-side costs — one
//! group-committed WAL append, one fsync, and one epoch publish per
//! `batch_size` documents — and overlaps analysis with the commit
//! stage. This ablation quantifies that on a real filesystem, where the
//! per-document fsync dominates the baseline exactly as it does in
//! deployment:
//!
//! 1. docs/sec for `INGEST_DOCS` synthetic documents into a durable
//!    (WAL-backed) base, document-at-a-time baseline vs the pipeline at
//!    1/2/4/8 workers (batch 256);
//! 2. equality of the final knowledge: the pipelined base must digest
//!    identical to the sequential one (order-insensitive, resolved
//!    statements);
//! 3. bounded memory: with the materializer stage stalled behind the
//!    store lock, peak in-flight documents stay ≤ the configured bound.
//!
//! Document count defaults to 100_000; set `INGEST_DOCS` to override
//! (CI smoke uses a smaller corpus).

use cogsdk_core::ThreadPool;
use cogsdk_kb::{IngestConfig, IngestSession, KbOptions, PersonalKnowledgeBase};
use cogsdk_store::MemoryKv;
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_SIZE: usize = 256;
const MAX_IN_FLIGHT: usize = 1024;

fn doc_count() -> usize {
    std::env::var("INGEST_DOCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

/// Synthetic corpus cycling through catalog entities: every document
/// resolves entities and relations, documents share vocabulary (as real
/// corpora do), and per-document facts keep the graph growing.
fn corpus(n: usize) -> Vec<String> {
    let templates = [
        "IBM acquired Oracle. The USA praised the excellent deal.",
        "Google praised Microsoft. Germany welcomed the partnership.",
        "Oracle criticized IBM. France condemned the terrible move.",
        "Microsoft acquired Google. The USA welcomed the merger.",
        "Germany praised France. Oracle welcomed the excellent outcome.",
    ];
    (0..n)
        .map(|i| templates[i % templates.len()].to_string())
        .collect()
}

fn memory_kb() -> Arc<PersonalKnowledgeBase> {
    Arc::new(PersonalKnowledgeBase::new(
        Arc::new(MemoryKv::new()),
        KbOptions::default(),
    ))
}

/// A fresh durable base under the system temp dir. The caller removes
/// the directory when done; a stale one from a crashed run is wiped.
fn durable_kb(tag: &str) -> (Arc<PersonalKnowledgeBase>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ablation_ingest_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    let kb = Arc::new(
        PersonalKnowledgeBase::open_durable(&dir, Arc::new(MemoryKv::new()), KbOptions::default())
            .expect("open durable bench store"),
    );
    (kb, dir)
}

/// Document-at-a-time baseline: one WAL append + fsync + epoch publish
/// per document. Returns (docs/sec, digest).
fn sequential(docs: &[String]) -> (f64, u64) {
    let (kb, dir) = durable_kb("seq");
    let start = Instant::now();
    for d in docs {
        kb.ingest_text(d).unwrap();
    }
    let rate = docs.len() as f64 / start.elapsed().as_secs_f64();
    let digest = kb.contents_digest();
    drop(kb);
    let _ = std::fs::remove_dir_all(dir);
    (rate, digest)
}

/// The pipelined loader at a given worker count. Returns (docs/sec,
/// digest, peak in-flight).
fn pipelined(docs: &[String], workers: usize) -> (f64, u64, usize) {
    let (kb, dir) = durable_kb(&format!("pipe_w{workers}"));
    let pool = ThreadPool::new(workers.max(1));
    let start = Instant::now();
    let report = kb
        .ingest_stream(
            &pool,
            docs.iter().cloned(),
            IngestConfig {
                batch_size: BATCH_SIZE,
                workers,
                max_in_flight: MAX_IN_FLIGHT,
                nlu: None,
            },
        )
        .unwrap();
    let rate = docs.len() as f64 / start.elapsed().as_secs_f64();
    assert_eq!(report.documents, docs.len());
    let digest = kb.contents_digest();
    drop(kb);
    let _ = std::fs::remove_dir_all(dir);
    (rate, digest, report.peak_in_flight)
}

fn report() {
    let n = doc_count();
    let docs = corpus(n);

    let (base_rate, base_digest) = sequential(&docs);
    println!("[ablation_ingest] sequential baseline: {base_rate:.0} docs/s ({n} docs)");

    for &workers in &[1usize, 2, 4, 8] {
        let (rate, digest, peak) = pipelined(&docs, workers);
        assert_eq!(
            digest, base_digest,
            "pipelined contents diverged from sequential at {workers} workers"
        );
        println!(
            "[ablation_ingest] pipelined workers={workers} batch={BATCH_SIZE}: \
             {rate:.0} docs/s ({:.2}x, peak in-flight {peak})",
            rate / base_rate,
        );
        if workers == 8 {
            assert!(
                rate >= 4.0 * base_rate,
                "acceptance: pipelined at 8 workers must be >= 4x sequential \
                 (got {:.2}x)",
                rate / base_rate,
            );
        }
    }

    // Bounded memory under a stalled materializer: hold the store's
    // read lock so the committer cannot take its write lock; the
    // pipeline must park at the in-flight bound.
    let kb = memory_kb();
    let pool = ThreadPool::new(4);
    let bound = 96;
    let session = IngestSession::new(
        kb.clone(),
        &pool,
        IngestConfig {
            batch_size: 32,
            workers: 2,
            max_in_flight: bound,
            nlu: None,
        },
    );
    let watcher = session.watcher();
    let stall_docs = corpus(2_000);
    let pusher = std::thread::spawn(move || {
        let mut session = session;
        for d in stall_docs {
            session.push(d).unwrap();
        }
        session.finish().unwrap()
    });
    let peak_during_stall = kb.with_graph(|_| {
        let deadline = Instant::now() + Duration::from_millis(300);
        let mut peak = 0;
        while Instant::now() < deadline {
            peak = peak.max(watcher.in_flight());
            std::thread::sleep(Duration::from_millis(5));
        }
        peak
    });
    let stalled_report = pusher.join().unwrap();
    assert!(
        peak_during_stall <= bound && stalled_report.peak_in_flight <= bound,
        "in-flight documents exceeded the bound under a stalled materializer"
    );
    println!(
        "[ablation_ingest] stalled materializer: peak in-flight \
         {peak_during_stall}/{bound} during stall, {} across the run",
        stalled_report.peak_in_flight,
    );
}

fn bench(c: &mut Criterion) {
    report();

    c.bench_function("ingest_sequential_512", |b| {
        let docs = corpus(512);
        b.iter(|| {
            let kb = memory_kb();
            for d in &docs {
                kb.ingest_text(d).unwrap();
            }
            std::hint::black_box(kb.statement_count())
        })
    });

    c.bench_function("ingest_pipelined_512", |b| {
        let docs = corpus(512);
        let pool = ThreadPool::new(4);
        b.iter(|| {
            let kb = memory_kb();
            let report = kb
                .ingest_stream(
                    &pool,
                    docs.iter().cloned(),
                    IngestConfig {
                        batch_size: 128,
                        workers: 4,
                        max_in_flight: 512,
                        nlu: None,
                    },
                )
                .unwrap();
            std::hint::black_box(report.documents)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
