//! A2 (ablation): scoring formula — Eq. 1 raw weights vs Eq. 2
//! normalized weights vs a custom formula — under heterogeneous metric
//! scales.
//!
//! Expected shape: Eq. 1 is scale-sensitive (micro-dollar costs swamp
//! millisecond latencies unless weights are hand-tuned); Eq. 2 is robust
//! to unit choices because every term is normalized to [0, 1].

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::rank::RankOptions;
use cogsdk_core::score::ScoringFormula;
use cogsdk_core::RichSdk;
use cogsdk_json::json;
use cogsdk_sim::cost::{CostModel, MicroDollars};
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Ground truth: "balanced-best" has the best overall profile once every
/// metric is viewed on its own scale.
fn setup() -> (SimEnv, RichSdk) {
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    sdk.register(
        SimService::builder("balanced-best", "cls")
            .latency(LatencyModel::lognormal_ms(20.0, 0.2))
            .cost(CostModel::PerCall(MicroDollars::from_micros(300)))
            .quality(0.9)
            .build(&env),
    );
    sdk.register(
        SimService::builder("cheap-slow", "cls")
            .latency(LatencyModel::lognormal_ms(120.0, 0.2))
            .cost(CostModel::PerCall(MicroDollars::from_micros(50)))
            .quality(0.55)
            .build(&env),
    );
    sdk.register(
        SimService::builder("fast-exorbitant", "cls")
            .latency(LatencyModel::lognormal_ms(8.0, 0.2))
            .cost(CostModel::PerCall(MicroDollars::from_micros(9_000)))
            .quality(0.7)
            .build(&env),
    );
    let req = Request::new("op", json!({"x": 1}));
    for _ in 0..25 {
        for name in ["balanced-best", "cheap-slow", "fast-exorbitant"] {
            let _ = sdk.invoke(name, &req);
        }
    }
    (env, sdk)
}

fn report_series() {
    let (_env, sdk) = setup();
    println!("[ablation_scoring] equal-intent weights across formulas:");
    let formulas: Vec<(&str, ScoringFormula)> = vec![
        (
            "Eq.1 naive (1,1,1)",
            ScoringFormula::weighted(1.0, 1.0, 1.0),
        ),
        (
            "Eq.1 tuned (1,0.01,100)",
            ScoringFormula::weighted(1.0, 0.01, 100.0),
        ),
        ("Eq.2 (1,1,1)", ScoringFormula::normalized(1.0, 1.0, 1.0)),
        (
            "custom (latency p50/quality)",
            ScoringFormula::custom(|i, m| {
                (i.response_ms / m.response_ms.max(1e-9)) / i.quality.max(0.01)
            }),
        ),
    ];
    for (label, formula) in formulas {
        let ranked = sdk.rank(
            "cls",
            &RankOptions {
                formula,
                ..RankOptions::default()
            },
        );
        println!(
            "[ablation_scoring]   {label:28} winner={:16} order=({})",
            ranked[0].service.name(),
            ranked
                .iter()
                .map(|r| r.service.name())
                .collect::<Vec<_>>()
                .join(" > ")
        );
    }
    println!(
        "[ablation_scoring] note: Eq.1 with naive unit weights is dominated by the \
         micro-dollar scale; Eq.2 needs no tuning."
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    let (_env, sdk) = setup();
    for (id, formula) in [
        ("score_eq1", ScoringFormula::weighted(1.0, 0.01, 100.0)),
        ("score_eq2", ScoringFormula::normalized(1.0, 1.0, 1.0)),
        (
            "score_custom",
            ScoringFormula::custom(|i, m| i.response_ms / m.response_ms.max(1e-9) - i.quality),
        ),
    ] {
        let options = RankOptions {
            formula,
            ..RankOptions::default()
        };
        c.bench_function(id, |b| {
            b.iter(|| sdk.rank(std::hint::black_box("cls"), &options))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = bench
}
criterion_main!(benches);
