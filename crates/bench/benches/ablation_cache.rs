//! A1 (ablation): cache design choices under a Zipf workload — LRU+TTL
//! (the shipped design) vs generous TTL-only vs no cache at all.
//!
//! Expected shape: LRU keeps the hot head of the Zipf distribution inside
//! a small capacity; TTL-only with unbounded-ish capacity does marginally
//! better at much higher memory; no cache pays the full remote latency
//! every time.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::ResponseCache;
use cogsdk_json::json;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const DOCS: usize = 2_000;
const LOOKUPS: usize = 20_000;

fn run_config(capacity: usize, ttl_secs: u64, label: &str) {
    let env = SimEnv::with_seed(BENCH_SEED);
    let svc = SimService::builder("nlu", "nlu")
        .latency(LatencyModel::constant_ms(50.0))
        .build(&env);
    let cache = ResponseCache::new(env.clock().clone(), capacity, Duration::from_secs(ttl_secs));
    let mut rng = env.rng().fork();
    let mut remote_calls = 0u64;
    for _ in 0..LOOKUPS {
        let doc = rng.zipf(DOCS, 1.05);
        let req = Request::new("analyze", json!({"doc": (doc)}));
        let key = req.cache_key();
        if capacity == 0 || cache.get(&key).is_none() {
            let out = svc.invoke(&req);
            remote_calls += 1;
            if capacity > 0 {
                if let Ok(resp) = out.result {
                    cache.put(key, resp.payload);
                }
            }
        }
        // Background time passes between requests so TTLs matter.
        env.clock().advance(Duration::from_millis(200));
    }
    let stats = cache.stats();
    println!(
        "[ablation_cache] {label:26} remote_calls={remote_calls:6} hit_rate={:.3} evictions={} mem={} entries",
        stats.hit_rate(),
        stats.evictions,
        capacity.min(DOCS)
    );
}

fn report_series() {
    println!("[ablation_cache] {LOOKUPS} Zipf(1.05) lookups over {DOCS} docs, 200ms apart:");
    run_config(0, 1, "no cache");
    run_config(64, 300, "LRU-64, TTL 5min");
    run_config(256, 300, "LRU-256, TTL 5min");
    run_config(256, 30, "LRU-256, TTL 30s");
    run_config(DOCS * 2, 300, "TTL-only (no eviction)");
    run_config(DOCS * 2, u64::MAX / 2, "unbounded, no expiry");
}

fn bench(c: &mut Criterion) {
    report_series();
    let env = SimEnv::with_seed(BENCH_SEED);
    let cache = ResponseCache::new(env.clock().clone(), 256, Duration::from_secs(300));
    for i in 0..256 {
        cache.put(format!("k{i}"), json!({"v": (i)}));
    }
    c.bench_function("cache_get_hit_at_capacity", |b| {
        b.iter(|| cache.get(std::hint::black_box("k128")))
    });
    let mut i = 0u64;
    c.bench_function("cache_put_with_eviction", |b| {
        b.iter(|| {
            i += 1;
            cache.put(format!("new{i}"), json!({"v": 1}));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
