//! Ablation: dictionary-encoded (interned) triple indexes vs the
//! pre-interning string-keyed representation, on the E10 workload
//! (subclass chain of depth 10 plus n typed instances — 110 / 1 010 /
//! 5 010 stated facts).
//!
//! The baseline embedded here is the *pre-PR* `Graph`: SPO/POS/OSP
//! `BTreeSet<(Term, Term, Term)>` indexes whose every insert clones nine
//! strings and whose every join comparison walks string bytes. The
//! library's `Graph`/`RdfsReasoner` now intern each distinct term once to
//! a `u32` id and run the identical semi-naive delta algorithm over
//! `(u32, u32, u32)` keys. Same algorithm, same rule set, same workload —
//! the measured gap is purely the representation.
//!
//! Both arms are asserted to produce the same closure before timing.

use cogsdk_rdf::{Graph, RdfsReasoner, Statement, Term};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Embedded baseline: the pre-interning string-keyed store and reasoner
// ---------------------------------------------------------------------

/// The pre-PR triple store: term-keyed B-tree indexes, cloned keys.
#[derive(Debug, Clone, Default)]
struct StringGraph {
    spo: BTreeSet<(Term, Term, Term)>,
    pos: BTreeSet<(Term, Term, Term)>,
}

fn min_term() -> Term {
    // `Term::Iri("")` sorts before every other term.
    Term::Iri(String::new())
}

impl StringGraph {
    fn insert(&mut self, st: &Statement) -> bool {
        let (s, p, o) = (st.subject.clone(), st.predicate.clone(), st.object.clone());
        let added = self.spo.insert((s.clone(), p.clone(), o.clone()));
        if added {
            self.pos.insert((p, o, s));
        }
        added
    }

    fn contains(&self, st: &Statement) -> bool {
        self.spo
            .contains(&(st.subject.clone(), st.predicate.clone(), st.object.clone()))
    }

    fn len(&self) -> usize {
        self.spo.len()
    }

    /// The three pattern shapes the RDFS delta rules use, exactly as the
    /// pre-PR `match_pattern` served them: range scans over cloned keys.
    fn find(&self, s: Option<&Term>, p: &Term, o: Option<&Term>) -> Vec<Statement> {
        match (s, o) {
            (Some(s), None) => self
                .spo
                .range((s.clone(), p.clone(), min_term())..)
                .take_while(|t| &t.0 == s && &t.1 == p)
                .map(|(ts, tp, to)| Statement::new(ts.clone(), tp.clone(), to.clone()))
                .collect(),
            (None, Some(o)) => self
                .pos
                .range((p.clone(), o.clone(), min_term())..)
                .take_while(|t| &t.0 == p && &t.1 == o)
                .map(|(tp, to, ts)| Statement::new(ts.clone(), tp.clone(), to.clone()))
                .collect(),
            (None, None) => self
                .pos
                .range((p.clone(), min_term(), min_term())..)
                .take_while(|t| &t.0 == p)
                .map(|(tp, to, ts)| Statement::new(ts.clone(), tp.clone(), to.clone()))
                .collect(),
            (Some(_), Some(_)) => unreachable!("not used by the RDFS rules"),
        }
    }
}

/// Base + derived overlay, as the pre-PR `Overlay` view.
struct StringOverlay<'a> {
    base: &'a StringGraph,
    extra: &'a StringGraph,
}

impl StringOverlay<'_> {
    fn find(&self, s: Option<&Term>, p: &Term, o: Option<&Term>) -> Vec<Statement> {
        let mut out = self.base.find(s, p, o);
        out.extend(self.extra.find(s, p, o));
        out
    }
}

/// The pre-PR Term-level RDFS delta (rdfs2/3/5/7/9/11), verbatim in
/// structure: every join allocates statements and clones terms.
fn string_rdfs_delta(view: &StringOverlay<'_>, delta: &[Statement]) -> Vec<Statement> {
    let type_p = Term::iri("rdf:type");
    let sub_class = Term::iri("rdfs:subClassOf");
    let sub_prop = Term::iri("rdfs:subPropertyOf");
    let domain = Term::iri("rdfs:domain");
    let range = Term::iri("rdfs:range");
    let mut out = Vec::new();
    for st in delta {
        // Transitive lattices (rdfs5/11).
        if (st.predicate == sub_class || st.predicate == sub_prop) && st.object.is_resource() {
            for next in view.find(Some(&st.object), &st.predicate, None) {
                if next.object.is_resource() && next.object != st.subject {
                    out.push(Statement::new(
                        st.subject.clone(),
                        st.predicate.clone(),
                        next.object,
                    ));
                }
            }
            for prev in view.find(None, &st.predicate, Some(&st.subject)) {
                if prev.subject != st.object {
                    out.push(Statement::new(
                        prev.subject,
                        st.predicate.clone(),
                        st.object.clone(),
                    ));
                }
            }
        }
        // Declaration side.
        if st.predicate == sub_class {
            for inst in view.find(None, &type_p, Some(&st.subject)) {
                out.push(Statement::new(
                    inst.subject,
                    type_p.clone(),
                    st.object.clone(),
                ));
            }
        } else if st.predicate == sub_prop {
            if matches!(st.object, Term::Iri(_)) {
                for use_site in view.find(None, &st.subject, None) {
                    out.push(Statement::new(
                        use_site.subject,
                        st.object.clone(),
                        use_site.object,
                    ));
                }
            }
        } else if st.predicate == domain {
            for use_site in view.find(None, &st.subject, None) {
                out.push(Statement::new(
                    use_site.subject,
                    type_p.clone(),
                    st.object.clone(),
                ));
            }
        } else if st.predicate == range {
            for use_site in view.find(None, &st.subject, None) {
                if use_site.object.is_resource() {
                    out.push(Statement::new(
                        use_site.object,
                        type_p.clone(),
                        st.object.clone(),
                    ));
                }
            }
        }
        // Use side.
        if st.predicate == type_p && st.object.is_resource() {
            for sc in view.find(Some(&st.object), &sub_class, None) {
                out.push(Statement::new(
                    st.subject.clone(),
                    type_p.clone(),
                    sc.object,
                ));
            }
        }
        for dom in view.find(Some(&st.predicate), &domain, None) {
            out.push(Statement::new(
                st.subject.clone(),
                type_p.clone(),
                dom.object,
            ));
        }
        if st.object.is_resource() {
            for ran in view.find(Some(&st.predicate), &range, None) {
                out.push(Statement::new(
                    st.object.clone(),
                    type_p.clone(),
                    ran.object,
                ));
            }
        }
        for sp in view.find(Some(&st.predicate), &sub_prop, None) {
            if matches!(sp.object, Term::Iri(_)) {
                out.push(Statement::new(
                    st.subject.clone(),
                    sp.object,
                    st.object.clone(),
                ));
            }
        }
    }
    out
}

/// The pre-PR semi-naive fixpoint over the string-keyed store.
fn string_semi_naive(base: &StringGraph) -> StringGraph {
    let mut derived = StringGraph::default();
    let mut delta: Vec<Statement> = base
        .spo
        .iter()
        .map(|(s, p, o)| Statement::new(s.clone(), p.clone(), o.clone()))
        .collect();
    while !delta.is_empty() {
        let candidates = {
            let view = StringOverlay {
                base,
                extra: &derived,
            };
            string_rdfs_delta(&view, &delta)
        };
        let mut fresh = Vec::new();
        for st in candidates {
            if !base.contains(&st) && !derived.contains(&st) {
                derived.insert(&st);
                fresh.push(st);
            }
        }
        delta = fresh;
    }
    derived
}

// ---------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------

/// The E10 workload statements: subclass chain of depth 10, n instances.
fn chain_statements(n: usize) -> Vec<Statement> {
    let mut out = Vec::new();
    for d in 0..10 {
        out.push(Statement::new(
            Term::iri(format!("c{d}")),
            Term::iri("rdfs:subClassOf"),
            Term::iri(format!("c{}", d + 1)),
        ));
    }
    for i in 0..n {
        out.push(Statement::new(
            Term::iri(format!("inst{i}")),
            Term::iri("rdf:type"),
            Term::iri(format!("c{}", i % 10)),
        ));
    }
    out
}

fn report_series() {
    let id_triple = 3 * std::mem::size_of::<u32>();
    let term_triple = 3 * std::mem::size_of::<Term>();
    println!(
        "[ablation_term_intern] index key size: interned {id_triple} B/triple \
         vs string-keyed {term_triple} B/triple inline (+ heap for every string)"
    );
    for n in [100usize, 1_000, 5_000] {
        let statements = chain_statements(n);

        // Baseline: pre-PR string-keyed store + semi-naive RDFS.
        let t = Instant::now();
        let mut sg = StringGraph::default();
        for st in &statements {
            sg.insert(st);
        }
        let string_build = t.elapsed();
        let t = Instant::now();
        let string_derived = string_semi_naive(&sg);
        let string_reason = t.elapsed();

        // Interned: the library path.
        let t = Instant::now();
        let mut g = Graph::new();
        for st in &statements {
            g.insert(st.clone());
        }
        let interned_build = t.elapsed();
        let t = Instant::now();
        let interned_derived = RdfsReasoner::new().infer(&g);
        let interned_reason = t.elapsed();

        // Equivalence: same closure from both representations.
        assert_eq!(string_derived.len(), interned_derived.len());
        for st in interned_derived.iter() {
            assert!(string_derived.contains(&st), "baseline missing {st}");
        }

        let dict_terms = g.dict().len();
        let speedup = string_reason.as_secs_f64() / interned_reason.as_secs_f64().max(1e-9);
        println!(
            "[ablation_term_intern] {} stated ({dict_terms} distinct terms): \
             build string={string_build:?} interned={interned_build:?}; \
             rdfs closure ({} inferred) string={string_reason:?} \
             interned={interned_reason:?} (speedup {speedup:.1}x)",
            sg.len(),
            interned_derived.len(),
        );
    }
}

fn bench(c: &mut Criterion) {
    report_series();

    let statements = chain_statements(5_000);
    let mut sg = StringGraph::default();
    let mut g = Graph::new();
    for st in &statements {
        sg.insert(st);
        g.insert(st.clone());
    }

    c.bench_function("rdfs_semi_naive_string_keyed_5010", |b| {
        b.iter(|| string_semi_naive(std::hint::black_box(&sg)))
    });

    c.bench_function("rdfs_semi_naive_interned_5010", |b| {
        b.iter(|| RdfsReasoner::new().infer(std::hint::black_box(&g)))
    });

    // Build cost: inserting 5 010 statements from scratch. The interned
    // arm pays interning on first sight of each distinct term, then pure
    // integer B-tree inserts; the string arm clones nine strings per
    // statement.
    c.bench_function("graph_build_string_keyed_5010", |b| {
        b.iter(|| {
            let mut sg = StringGraph::default();
            for st in &statements {
                sg.insert(std::hint::black_box(st));
            }
            sg.len()
        })
    });

    c.bench_function("graph_build_interned_5010", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            for st in &statements {
                g.insert(std::hint::black_box(st.clone()));
            }
            g.len()
        })
    });

    // Bulk merge into a graph sharing the same dictionary: the id-level
    // fast path copies `(u32, u32, u32)` keys without re-interning.
    c.bench_function("extend_from_shared_dict_5010", |b| {
        b.iter(|| {
            let mut dst = Graph::with_dict(g.dict().clone());
            dst.extend_from(std::hint::black_box(&g))
        })
    });

    // Point lookups under a fully-bound pattern (the satellite-6 path:
    // no per-call key allocation).
    let probe_s = Term::iri("inst4999");
    let probe_p = Term::iri("rdf:type");
    let probe_o = Term::iri("c9");
    c.bench_function("match_fully_bound_interned_5010", |b| {
        b.iter(|| {
            g.match_pattern(
                Some(std::hint::black_box(&probe_s)),
                Some(&probe_p),
                Some(&probe_o),
            )
            .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
