//! E8 (Figure 4, enhanced data store client): encryption and compression
//! costs, bytes-on-the-wire reduction, and the client cache's effect on
//! remote reads (§3, reference [11]).
//!
//! Paper-predicted shape: compression cuts wire bytes for structured
//! data (less network, lower storage bills); encryption adds CPU but no
//! wire growth beyond a small envelope; the cache absorbs repeat reads.

use bytes::Bytes;
use cogsdk_store::compress::{compress, decompress, ratio};
use cogsdk_store::crypto::{decrypt, encrypt, Key};
use cogsdk_store::enhanced::{EnhancedClient, EnhancedOptions};
use cogsdk_store::{KeyValueStore, MemoryKv};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

/// A JSON-ish structured payload (compressible, like real KB data).
fn structured_payload(records: usize) -> Bytes {
    let mut s = String::from("[");
    for i in 0..records {
        s.push_str(&format!(
            "{{\"country\":\"country_{}\",\"gdp\":{}.5,\"year\":{}}},",
            i % 40,
            1000 + i,
            2000 + (i % 20)
        ));
    }
    s.push(']');
    Bytes::from(s.into_bytes())
}

fn report_series() {
    // --- Series 1: wire-byte reduction by configuration ------------------
    println!("[fig4_enhanced_client] 64 KiB structured payload, bytes on wire:");
    let payload = structured_payload(800);
    for (label, compress_on, encrypt_on) in [
        ("plain", false, false),
        ("compress", true, false),
        ("encrypt", false, true),
        ("compress+encrypt", true, true),
    ] {
        let client = EnhancedClient::new(
            Arc::new(MemoryKv::new()),
            EnhancedOptions {
                cache_capacity: 0,
                compress: compress_on,
                encryption_key: encrypt_on.then(|| Key::derive("bench")),
            },
        );
        client.put("k", payload.clone()).unwrap();
        let s = client.stats();
        println!(
            "[fig4_enhanced_client]   {label:18} in={} wire={} ratio={:.3}",
            s.bytes_in,
            s.bytes_on_wire,
            s.bytes_on_wire as f64 / s.bytes_in as f64
        );
    }

    // --- Series 2: compression ratio vs payload structure ----------------
    let random: Bytes = {
        let mut v = Vec::with_capacity(65536);
        let mut x = 0x2545F491u32;
        for _ in 0..65536 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            v.push((x >> 24) as u8);
        }
        Bytes::from(v)
    };
    for (label, data) in [
        ("structured json", structured_payload(800)),
        ("random bytes", random),
    ] {
        let packed = compress(&data);
        println!(
            "[fig4_enhanced_client] compression of {label}: ratio={:.3}",
            ratio(&data, &packed)
        );
    }

    // --- Series 3: cache absorbs repeat reads ----------------------------
    let client = EnhancedClient::new(
        Arc::new(MemoryKv::new()),
        EnhancedOptions {
            cache_capacity: 1024,
            compress: true,
            encryption_key: Some(Key::derive("bench")),
        },
    );
    client.put("hot", structured_payload(100)).unwrap();
    for _ in 0..100 {
        client.get("hot").unwrap();
    }
    let s = client.stats();
    println!(
        "[fig4_enhanced_client] 100 repeat reads: hits={} misses={} (decrypt+decompress skipped on hits)",
        s.cache_hits, s.cache_misses
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    let payload = structured_payload(800);
    let key = Key::derive("bench");

    let mut group = c.benchmark_group("enhanced_client");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("compress_64k", |b| {
        b.iter(|| compress(std::hint::black_box(&payload)))
    });
    let packed = compress(&payload);
    group.bench_function("decompress_64k", |b| {
        b.iter(|| decompress(std::hint::black_box(&packed)).unwrap())
    });
    group.bench_function("encrypt_64k", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            encrypt(&key, nonce, std::hint::black_box(&payload))
        })
    });
    let ct = encrypt(&key, 42, &payload);
    group.bench_function("decrypt_64k", |b| {
        b.iter(|| decrypt(&key, std::hint::black_box(&ct)).unwrap())
    });

    let client = EnhancedClient::new(
        Arc::new(MemoryKv::new()),
        EnhancedOptions {
            cache_capacity: 64,
            compress: true,
            encryption_key: Some(key),
        },
    );
    client.put("hot", payload.clone()).unwrap();
    group.bench_function("cached_read_64k", |b| {
        b.iter(|| client.get(std::hint::black_box("hot")).unwrap())
    });
    group.bench_function("uncached_read_64k", |b| {
        b.iter(|| {
            client.invalidate_cache();
            client.get(std::hint::black_box("hot")).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
