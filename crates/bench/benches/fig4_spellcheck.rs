//! E9 (Figure 4, spell checker): the knowledge base's local spell checker
//! vs the simulated remote spell service (§3).
//!
//! Paper-predicted shape: "the spell checker included with the knowledge
//! base is generally faster as it avoids the overheads of remote
//! communication. Some online spell checkers also cost money." Local wins
//! on latency and is free; corrections are equivalent (same dictionary).

use cogsdk_bench::BENCH_SEED;
use cogsdk_json::json;
use cogsdk_sim::{Request, SimEnv};
use cogsdk_text::services::remote_spell_service;
use cogsdk_text::SpellChecker;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const SAMPLE: &str = "the goverment annouced a new energie policy for the \
                      markets and the technolgy sector with stong growth";

fn report_series() {
    let env = SimEnv::with_seed(BENCH_SEED);
    let remote = remote_spell_service(&env);
    let local = SpellChecker::with_builtin_dictionary();

    // --- Series 1: latency and cost over 50 checks -----------------------
    let t0 = env.clock().now();
    let local_fixes = (0..50)
        .map(|_| local.check_text(SAMPLE).len())
        .next_back()
        .unwrap();
    let local_elapsed = env.clock().now().since(t0);

    let t1 = env.clock().now();
    let mut cost = cogsdk_sim::cost::MicroDollars::ZERO;
    let mut remote_fixes = 0;
    for _ in 0..50 {
        let out = remote.invoke(&Request::new("check", json!({"text": (SAMPLE)})));
        cost = cost.saturating_add(out.cost);
        if let Ok(resp) = out.result {
            remote_fixes = resp
                .payload
                .get("corrections")
                .and_then(cogsdk_json::Json::as_array)
                .map_or(0, <[cogsdk_json::Json]>::len);
        }
    }
    let remote_elapsed = env.clock().now().since(t1);
    println!(
        "[fig4_spellcheck] 50 checks: local={local_elapsed:?} $0 | remote(virtual)={remote_elapsed:?} {cost}"
    );
    println!(
        "[fig4_spellcheck] corrections found: local={local_fixes} remote={remote_fixes} (same dictionary)"
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    let local = SpellChecker::with_builtin_dictionary();
    c.bench_function("spellcheck_local_sentence", |b| {
        b.iter(|| local.check_text(std::hint::black_box(SAMPLE)))
    });
    c.bench_function("spellcheck_local_single_word_d1", |b| {
        b.iter(|| local.correct(std::hint::black_box("goverment")))
    });
    c.bench_function("spellcheck_local_single_word_d2", |b| {
        b.iter(|| local.correct(std::hint::black_box("gvrment")))
    });
    // The remote path: Criterion measures the CPU-side cost (virtual
    // latency is on the clock, not the wall).
    let env = SimEnv::with_seed(BENCH_SEED);
    let remote = remote_spell_service(&env);
    c.bench_function("spellcheck_remote_cpu_overhead", |b| {
        b.iter(|| remote.invoke(&Request::new("check", json!({"text": (SAMPLE)}))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
