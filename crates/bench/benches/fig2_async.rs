//! E5 (Figure 2, sync vs async invocation): blocking sequential calls vs
//! `ListenableFuture` async vs pooled parallel fan-out (§2, §2.1).
//!
//! Paper-predicted shape: sequential ≈ sum of latencies; parallel ≈ max
//! of latencies; async submission returns to the caller immediately.
//! Uses scaled real time (1 modeled ms = 20 real µs) so thread overlap is
//! physically real.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::invoke::RedundantMode;
use cogsdk_core::rank::RankOptions;
use cogsdk_core::RichSdk;
use cogsdk_json::json;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

const SCALE: f64 = 0.02; // 1 modeled ms -> 20 real µs

fn scaled_sdk(k: usize) -> (SimEnv, RichSdk) {
    let env = SimEnv::with_seed_scaled(BENCH_SEED, SCALE);
    let sdk = RichSdk::new(&env);
    for i in 0..k {
        sdk.register(
            SimService::builder(format!("svc-{i}"), "nlu")
                .latency(LatencyModel::constant_ms(50.0))
                .build(&env),
        );
    }
    (env, sdk)
}

fn req() -> Request {
    Request::new("analyze", json!({"text": "doc"}))
}

fn report_series() {
    // --- Series: sequential vs parallel wall time across k services -----
    println!("[fig2_async] k identical 50ms services, scaled real time:");
    for k in [1usize, 2, 4, 8] {
        let (_env, sdk) = scaled_sdk(k);
        let start = Instant::now();
        for i in 0..k {
            sdk.invoke(&format!("svc-{i}"), &req()).unwrap();
        }
        let sequential = start.elapsed();

        let (_env2, sdk2) = scaled_sdk(k);
        let start = Instant::now();
        sdk2.invoke_redundant_parallel(
            "nlu",
            &req(),
            &RankOptions::default(),
            k,
            RedundantMode::All,
        )
        .unwrap();
        let parallel = start.elapsed();
        println!(
            "[fig2_async]   k={k}: sequential={sequential:?} parallel={parallel:?} speedup={:.2}x",
            sequential.as_secs_f64() / parallel.as_secs_f64()
        );
    }

    // --- Series: async submission latency vs completion latency ---------
    let (_env, sdk) = scaled_sdk(1);
    let start = Instant::now();
    let future = sdk.invoke_async("svc-0", req());
    let submit = start.elapsed();
    future.wait();
    let complete = start.elapsed();
    println!(
        "[fig2_async] async submit returned in {submit:?}; completion took {complete:?} \
         (caller was free the whole time)"
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    // Criterion measures the CPU-side machinery on virtual time (no real
    // sleeps) so numbers are stable.
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    for i in 0..4 {
        sdk.register(
            SimService::builder(format!("svc-{i}"), "nlu")
                .latency(LatencyModel::constant_ms(50.0))
                .build(&env),
        );
    }
    c.bench_function("sync_invoke_virtual", |b| {
        b.iter(|| sdk.invoke("svc-0", std::hint::black_box(&req())).unwrap())
    });
    c.bench_function("async_submit_and_wait", |b| {
        b.iter(|| {
            sdk.invoke_async("svc-0", std::hint::black_box(req()))
                .wait()
        })
    });
    c.bench_function("parallel_fanout_4_virtual", |b| {
        b.iter(|| {
            sdk.invoke_redundant_parallel(
                "nlu",
                std::hint::black_box(&req()),
                &RankOptions::default(),
                4,
                RedundantMode::All,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = bench
}
criterion_main!(benches);
