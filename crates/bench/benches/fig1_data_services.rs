//! E15 (Figure 1, external data services): the knowledge-source
//! (DBpedia-style), finance and vision services behind the SDK — lookup
//! and SPARQL-over-HTTP costs, finance→KB analytics throughput, and the
//! recall/price trade-off across the vision fleet.
//!
//! Paper-predicted shape: knowledge lookups are dominated by modeled wire
//! latency (hence worth caching); data-service output feeds the Figure-5
//! loop directly; higher-quality vision vendors cost more and recall
//! more.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::RichSdk;
use cogsdk_datasvc::finance::{finance_service, history_to_csv};
use cogsdk_datasvc::knowledge::knowledge_service;
use cogsdk_datasvc::vision::{vision_fleet, ImageDescriptor};
use cogsdk_json::{json, Json};
use cogsdk_kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk_sim::{Request, SimEnv};
use cogsdk_store::MemoryKv;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn report_series() {
    // --- Series 1: cached vs uncached knowledge lookups ------------------
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    sdk.register(knowledge_service(&env, "dbpedia-sim"));
    let req = Request::new("lookup", json!({"op": "lookup", "entity": "United States"}));
    let t0 = env.clock().now();
    sdk.invoke_cached("dbpedia-sim", &req).unwrap();
    let t1 = env.clock().now();
    for _ in 0..99 {
        sdk.invoke_cached("dbpedia-sim", &req).unwrap();
    }
    let t2 = env.clock().now();
    println!(
        "[fig1_data_services] entity lookup: first={:?}, next 99 cached={:?}",
        t1.since(t0),
        t2.since(t1)
    );

    // SPARQL through the service.
    let q = Request::new(
        "sparql",
        json!({"op": "sparql", "query":
            "SELECT ?c WHERE { ?c <db:continent> <db:europe> . ?c <db:population_millions> ?p . FILTER (?p > 50) }"}),
    );
    let resp = loop {
        if let Ok(r) = sdk.invoke("dbpedia-sim", &q) {
            break r;
        }
    };
    let n = resp
        .payload
        .get("bindings")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    println!("[fig1_data_services] sparql: {n} large European countries found via service");

    // --- Series 2: finance -> KB -> signals pipeline ----------------------
    let stocks = finance_service(&env, "stocks");
    sdk.register(stocks);
    let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());
    let t0 = std::time::Instant::now();
    let mut signals = 0;
    for ticker in ["IBM", "ACME", "GLOBEX", "HOOLI"] {
        let resp = loop {
            if let Ok(r) = sdk.invoke(
                "stocks",
                &Request::new(
                    "history",
                    json!({"op": "history", "ticker": (ticker), "days": 120}),
                ),
            ) {
                break r;
            }
        };
        let csv = history_to_csv(&resp.payload).unwrap();
        let table = format!("px_{ticker}");
        kb.ingest_csv(&table, &csv).unwrap();
        kb.regress_and_store(&table, "day", "price", ticker)
            .unwrap();
    }
    signals += kb
        .infer_rules("[(?m kb:trend \"increasing\") -> (?m kb:signal kb:Bullish)]")
        .unwrap();
    println!(
        "[fig1_data_services] finance→KB: 4 tickers regressed, {signals} signals, wall {:?}",
        t0.elapsed()
    );

    // --- Series 3: vision fleet recall vs cost ----------------------------
    let fleet = vision_fleet(&env);
    let images: Vec<ImageDescriptor> = (0..40).map(ImageDescriptor::generate).collect();
    for vendor in &fleet {
        let mut truth = 0usize;
        let mut found = 0usize;
        for image in &images {
            let resp = loop {
                let o = vendor.invoke(&Request::new(
                    "classify",
                    json!({"image": (image.to_json())}),
                ));
                if let Ok(r) = o.result {
                    break r;
                }
            };
            truth += image.labels.len();
            found += resp
                .payload
                .get("labels")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|l| l.get("label").and_then(Json::as_str))
                .filter(|l| image.labels.iter().any(|t| t == l))
                .count();
        }
        println!(
            "[fig1_data_services] {}: recall={:.2} advertised_quality={:.2}",
            vendor.name(),
            found as f64 / truth as f64,
            vendor.quality()
        );
    }
}

fn bench(c: &mut Criterion) {
    report_series();
    let env = SimEnv::with_seed(BENCH_SEED);
    let knowledge = knowledge_service(&env, "dbpedia-sim");
    let lookup = Request::new("lookup", json!({"op": "lookup", "entity": "Germany"}));
    c.bench_function("knowledge_lookup_cpu", |b| {
        b.iter(|| knowledge.invoke(std::hint::black_box(&lookup)))
    });
    let sparql = Request::new(
        "sparql",
        json!({"op": "sparql", "query": "SELECT ?c WHERE { ?c <db:continent> <db:europe> . }"}),
    );
    c.bench_function("knowledge_sparql_cpu", |b| {
        b.iter(|| knowledge.invoke(std::hint::black_box(&sparql)))
    });
    let stocks = finance_service(&env, "stocks");
    let hist = Request::new(
        "history",
        json!({"op": "history", "ticker": "IBM", "days": 120}),
    );
    c.bench_function("finance_history_120d_cpu", |b| {
        b.iter(|| stocks.invoke(std::hint::black_box(&hist)))
    });
    let vision = vision_fleet(&env).remove(0);
    let image = ImageDescriptor::generate(5);
    let classify = Request::new("classify", json!({"image": (image.to_json())}));
    c.bench_function("vision_classify_cpu", |b| {
        b.iter(|| vision.invoke(std::hint::black_box(&classify)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
