//! Ablation: naive vs semi-naive vs incremental RDFS materialization,
//! extending E10's scaling table (Figure 5 workload: a subclass chain of
//! depth 10 with n instances — 110 / 1 010 / 5 010 stated facts).
//!
//! Three evaluation strategies over the identical workload:
//!
//! * **naive** — the pre-rewrite algorithm: every round clones the graph
//!   and re-joins every rule against *all* facts, rediscovering the whole
//!   closure each round.
//! * **semi-naive** — [`RdfsReasoner::infer`]: each round joins rules only
//!   against the delta from the previous round, over a borrowed overlay.
//! * **incremental** — [`IncrementalMaterializer`]: the closure is kept
//!   alive across mutations; an insert batch propagates its own delta
//!   forward instead of re-materializing from scratch.
//!
//! The paper's Fig. 5 loop ingests continuously, so the number that
//! matters operationally is the cost of maintaining the closure per
//! ingest batch — compared here against full re-materialization.

use cogsdk_rdf::{Graph, IncrementalMaterializer, RdfsReasoner, Statement, Term};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// The E10 workload: a subclass chain of depth 10 and `n` typed instances.
fn chain_graph(n: usize) -> Graph {
    let mut g = Graph::new();
    for d in 0..10 {
        g.insert(Statement::new(
            Term::iri(format!("c{d}")),
            Term::iri("rdfs:subClassOf"),
            Term::iri(format!("c{}", d + 1)),
        ));
    }
    for i in 0..n {
        g.insert(Statement::new(
            Term::iri(format!("inst{i}")),
            Term::iri("rdf:type"),
            Term::iri(format!("c{}", i % 10)),
        ));
    }
    g
}

/// A fresh batch of `size` instance facts, distinct per `tag`.
fn instance_batch(tag: usize, size: usize) -> Vec<Statement> {
    (0..size)
        .map(|i| {
            Statement::new(
                Term::iri(format!("new{tag}_{i}")),
                Term::iri("rdf:type"),
                Term::iri(format!("c{}", i % 10)),
            )
        })
        .collect()
}

/// One naive round: joins every RDFS rule against the whole graph.
fn naive_rdfs_round(g: &Graph) -> Vec<Statement> {
    let sub_class = Term::iri("rdfs:subClassOf");
    let sub_prop = Term::iri("rdfs:subPropertyOf");
    let domain = Term::iri("rdfs:domain");
    let range = Term::iri("rdfs:range");
    let rdf_type = Term::iri("rdf:type");
    let mut out = Vec::new();
    for st in g.iter() {
        if st.predicate == sub_class && st.object.is_resource() {
            // rdfs11: subClassOf is transitive.
            for next in g.match_pattern(Some(&st.object), Some(&sub_class), None) {
                out.push(Statement::new(
                    st.subject.clone(),
                    sub_class.clone(),
                    next.object.clone(),
                ));
            }
            // rdfs9: instances of the subclass take the superclass type.
            for inst in g.match_pattern(None, Some(&rdf_type), Some(&st.subject)) {
                out.push(Statement::new(
                    inst.subject.clone(),
                    rdf_type.clone(),
                    st.object.clone(),
                ));
            }
        } else if st.predicate == sub_prop {
            // rdfs5: subPropertyOf is transitive.
            for next in g.match_pattern(Some(&st.object), Some(&sub_prop), None) {
                out.push(Statement::new(
                    st.subject.clone(),
                    sub_prop.clone(),
                    next.object.clone(),
                ));
            }
            // rdfs7: uses of the subproperty also hold for the super.
            if matches!(st.object, Term::Iri(_)) {
                for u in g.match_pattern(None, Some(&st.subject), None) {
                    out.push(Statement::new(
                        u.subject.clone(),
                        st.object.clone(),
                        u.object.clone(),
                    ));
                }
            }
        } else if st.predicate == domain {
            // rdfs2: subjects of the property take the domain class.
            for u in g.match_pattern(None, Some(&st.subject), None) {
                out.push(Statement::new(
                    u.subject.clone(),
                    rdf_type.clone(),
                    st.object.clone(),
                ));
            }
        } else if st.predicate == range {
            // rdfs3: resource objects of the property take the range class.
            for u in g.match_pattern(None, Some(&st.subject), None) {
                if u.object.is_resource() {
                    out.push(Statement::new(
                        u.object.clone(),
                        rdf_type.clone(),
                        st.object.clone(),
                    ));
                }
            }
        }
    }
    out
}

/// The pre-rewrite fixpoint: clone the graph, re-run every rule over all
/// facts each round, stop when a round adds nothing.
fn naive_rdfs_fixpoint(base: &Graph) -> Graph {
    let mut current = base.clone();
    loop {
        let candidates = naive_rdfs_round(&current);
        let before = current.len();
        for st in candidates {
            current.insert(st);
        }
        if current.len() == before {
            return current;
        }
    }
}

fn report_series() {
    for n in [100usize, 1_000, 5_000] {
        let g = chain_graph(n);
        let stated = g.len();

        let t = Instant::now();
        let naive = naive_rdfs_fixpoint(&g);
        let naive_elapsed = t.elapsed();
        let naive_inferred = naive.len() - stated;

        let t = Instant::now();
        let semi = RdfsReasoner::new().infer(&g);
        let semi_elapsed = t.elapsed();
        assert_eq!(semi.len(), naive_inferred, "strategies must agree");

        // Incremental: closure already materialized; time maintaining it
        // through one ingest batch of 10 facts, vs full re-materialization
        // of the grown graph (what every ingest paid before this change).
        let mut m = IncrementalMaterializer::from_graph(g.clone());
        m.enable_rdfs();
        m.materialize();
        let batch = instance_batch(0, 10);
        let mut grown = g.clone();
        for st in &batch {
            grown.insert(st.clone());
        }
        let t = Instant::now();
        m.insert_batch(batch);
        let incr_elapsed = t.elapsed();
        let t = Instant::now();
        let full = RdfsReasoner::new().infer(&grown);
        let full_elapsed = t.elapsed();
        assert_eq!(
            m.len(),
            grown.len() + full.len(),
            "incremental closure must match from-scratch"
        );
        let speedup = full_elapsed.as_secs_f64() / incr_elapsed.as_secs_f64().max(1e-9);

        println!(
            "[ablation_reason_incremental] {stated} stated: naive={naive_elapsed:?} \
             semi-naive={semi_elapsed:?} ({naive_inferred} inferred); \
             ingest batch of 10: incremental={incr_elapsed:?} \
             full-rematerialize={full_elapsed:?} (speedup {speedup:.0}x)"
        );
    }
}

fn bench(c: &mut Criterion) {
    report_series();

    let g = chain_graph(5_000);

    c.bench_function("rdfs_naive_fixpoint_5010", |b| {
        b.iter(|| naive_rdfs_fixpoint(std::hint::black_box(&g)))
    });

    c.bench_function("rdfs_semi_naive_5010", |b| {
        b.iter(|| RdfsReasoner::new().infer(std::hint::black_box(&g)))
    });

    // Per-ingest maintenance: each iteration feeds a fresh, distinct batch
    // of 10 facts into a live materializer (the closure grows slightly
    // across iterations, which only biases *against* the incremental arm).
    let mut seeded = IncrementalMaterializer::from_graph(g.clone());
    seeded.enable_rdfs();
    seeded.materialize();
    let live = RefCell::new((seeded, 0usize));
    c.bench_function("rdfs_incremental_ingest_10_at_5010", |b| {
        b.iter(|| {
            let (m, tag) = &mut *live.borrow_mut();
            *tag += 1;
            m.insert_batch(instance_batch(*tag, 10))
        })
    });

    c.bench_function("rdfs_full_rematerialize_per_ingest_5010", |b| {
        b.iter(|| RdfsReasoner::new().infer(std::hint::black_box(&g)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
