//! A11 (ablation): cost-based BGP planning vs textual-order evaluation.
//!
//! One dataset, one 3-pattern star query written worst-first:
//!
//! * 100k `rdf:type ex:Item` triples (matches everything),
//! * 100k `ex:in ex:cat_{i%100}` triples (1k per category),
//! * 10 `ex:flag "rare"` triples (the needle).
//!
//! Textual order expands 100k rows, joins them down through the
//! category, and only then applies the flag. The planner reads the
//! cardinalities off the indexes, starts from the 10-row flag scan,
//! and merge-joins the rest — same bag of rows, orders of magnitude
//! less intermediate work. Both sides run the *same* executor; only
//! the join order and operators differ, so the speedup is pure
//! planning.

use cogsdk_bench::BENCH_SEED;
use cogsdk_rdf::{BgpQuery, Graph, Solution, Statement, Term};
use cogsdk_sim::rng::Rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

const ITEMS: usize = 100_000;
const CATEGORIES: usize = 100;
const RARE: usize = 10;

fn dataset() -> Graph {
    let mut rng = Rng::new(BENCH_SEED);
    let mut g = Graph::new();
    for i in 0..ITEMS {
        let item = Term::iri(format!("ex:item_{i}"));
        g.insert(Statement::new(
            item.clone(),
            Term::iri("rdf:type"),
            Term::iri("ex:Item"),
        ));
        g.insert(Statement::new(
            item.clone(),
            Term::iri("ex:in"),
            Term::iri(format!("ex:cat_{}", i % CATEGORIES)),
        ));
    }
    // The needles: RARE flagged items, scattered deterministically.
    let mut flagged = 0usize;
    while flagged < RARE {
        let i = rng.below(ITEMS as u64) as usize;
        let st = Statement::new(
            Term::iri(format!("ex:item_{i}")),
            Term::iri("ex:flag"),
            Term::string("rare"),
        );
        if g.insert(st) {
            flagged += 1;
        }
    }
    g
}

/// The 3-pattern star, written in the worst possible textual order:
/// broadest pattern first, needle last.
fn query() -> BgpQuery {
    BgpQuery::new()
        .pattern_text("(?x rdf:type ex:Item)")
        .unwrap()
        .pattern_text("(?x ex:in ?c)")
        .unwrap()
        .pattern_text("(?x ex:flag \"rare\")")
        .unwrap()
}

fn canon(rows: &[Solution]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|row| {
            let mut pairs: Vec<String> = row.iter().map(|(v, t)| format!("{v}={t}")).collect();
            pairs.sort();
            pairs.join("&")
        })
        .collect();
    out.sort();
    out
}

fn report(g: &Graph) {
    let q = query();

    // Same results either way — the ablation compares cost, not answers.
    let planned_rows = q.execute(g);
    let textual_rows = q.execute_textual(g);
    assert_eq!(planned_rows.len(), RARE);
    assert_eq!(canon(&planned_rows), canon(&textual_rows));

    // Best of three on each side: a single cold pass is noisy enough to
    // blur a 30x gap, and the assert below gates CI.
    let timed = |f: &dyn Fn() -> usize| {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                assert_eq!(f(), RARE);
                start.elapsed()
            })
            .min()
            .expect("three runs")
    };
    let plan = q.plan(g);
    let planned = timed(&|| q.plan(g).execute(g).len());
    let textual = timed(&|| q.execute_textual(g).len());

    let speedup = textual.as_secs_f64() / planned.as_secs_f64().max(1e-9);
    println!(
        "[ablation_query] 3-pattern star over {} triples: \
         planned={:.2} ms (plan {} us), textual={:.2} ms, speedup={speedup:.0}x",
        g.len(),
        planned.as_secs_f64() * 1e3,
        plan.plan_micros(),
        textual.as_secs_f64() * 1e3,
    );
    println!("[ablation_query] plan:\n{}", plan.explain());
    assert!(
        speedup >= 10.0,
        "cost-based planning must beat textual order by >=10x (got {speedup:.1}x)"
    );
}

fn bench(c: &mut Criterion) {
    let g = dataset();
    report(&g);

    let q = query();
    c.bench_function("bgp_star_planned_100k", |b| {
        b.iter(|| std::hint::black_box(q.execute(&g)).len())
    });
    c.bench_function("bgp_plan_only_100k", |b| {
        b.iter(|| std::hint::black_box(q.plan(&g)).plan_micros())
    });
    // The textual side is too slow for criterion's default iteration
    // counts at 100k; one timed pass in `report` records it instead.
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
