//! A4 (ablation): retry backoff policy under a burst outage — none vs
//! fixed vs exponential.
//!
//! Expected shape: with a short outage, immediate retries all land inside
//! the outage and fail; spacing retries out lets later attempts land
//! after recovery, so success rises with backoff at the cost of added
//! latency on the failing path.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::invoke::{invoke_with_backoff, Backoff};
use cogsdk_core::ServiceMonitor;
use cogsdk_json::json;
use cogsdk_sim::clock::SimTime;
use cogsdk_sim::failure::{FailurePlan, OutageWindow};
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn req() -> Request {
    Request::new("op", json!({"k": 1}))
}

/// One trial: a call arrives just as a `outage_ms`-long outage begins;
/// returns whether the retried call eventually succeeded and the virtual
/// time burned.
fn trial(outage_ms: u64, retries: usize, backoff: Backoff) -> (bool, Duration) {
    let env = SimEnv::with_seed(BENCH_SEED);
    let monitor = ServiceMonitor::new();
    let svc = SimService::builder("svc", "cls")
        .latency(LatencyModel::constant_ms(10.0))
        .failures(FailurePlan::reliable().with_outage(OutageWindow::new(
            SimTime::ZERO,
            SimTime::from_millis(outage_ms),
        )))
        .build(&env);
    let t0 = env.clock().now();
    let (outcome, _) = invoke_with_backoff(&svc, &req(), retries, backoff, &monitor);
    (outcome.result.is_ok(), env.clock().now().since(t0))
}

fn report_series() {
    println!("[ablation_backoff] 200ms outage starting with the first call, 4 retries:");
    for (label, backoff) in [
        ("none", Backoff::None),
        ("fixed 25ms", Backoff::Fixed(Duration::from_millis(25))),
        ("fixed 100ms", Backoff::Fixed(Duration::from_millis(100))),
        ("exponential", Backoff::standard_exponential()),
    ] {
        let (ok, elapsed) = trial(200, 4, backoff);
        println!("[ablation_backoff]   {label:12} success={ok} virtual_time={elapsed:?}");
    }
    println!("[ablation_backoff] outage-length sweep with exponential backoff (4 retries):");
    for outage_ms in [50u64, 200, 500, 1_000, 5_000] {
        let (ok, elapsed) = trial(outage_ms, 4, Backoff::standard_exponential());
        println!(
            "[ablation_backoff]   outage={outage_ms:5}ms success={ok} virtual_time={elapsed:?}"
        );
    }
    println!(
        "[ablation_backoff] shape: immediate retries waste every attempt inside the \
         outage; exponential rides out anything shorter than its backoff budget."
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    // CPU overhead of the backoff machinery itself (healthy service, no
    // retries actually taken).
    let env = SimEnv::with_seed(BENCH_SEED);
    let monitor = ServiceMonitor::new();
    let healthy = SimService::builder("healthy", "cls")
        .latency(LatencyModel::constant_ms(5.0))
        .build(&env);
    c.bench_function("backoff_machinery_overhead", |b| {
        b.iter(|| {
            invoke_with_backoff(
                &healthy,
                std::hint::black_box(&req()),
                4,
                Backoff::standard_exponential(),
                &monitor,
            )
        })
    });
    c.bench_function("backoff_schedule_computation", |b| {
        let exp = Backoff::standard_exponential();
        b.iter(|| {
            (0..8)
                .map(|i| exp.delay(std::hint::black_box(i)))
                .sum::<Duration>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = bench
}
criterion_main!(benches);
