//! E11 (§2.1, redundant multi-service invocation): first-success vs
//! quorum vs invoke-all, and the consistency-confidence payoff of running
//! several NLU vendors on the same document.
//!
//! Paper-predicted shape: availability grows with redundancy
//! (1 − pᵐ); invoke-all costs m× money; consensus confidence separates
//! entities every vendor finds from ones only the best vendor finds.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::invoke::RedundantMode;
use cogsdk_core::rank::RankOptions;
use cogsdk_core::RichSdk;
use cogsdk_json::json;
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use cogsdk_text::analysis::Analyzer;
use cogsdk_text::services::standard_fleet;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn storage_sdk(p: f64) -> (SimEnv, RichSdk) {
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    for i in 0..3 {
        sdk.register(
            SimService::builder(format!("store-{i}"), "storage")
                .latency(LatencyModel::constant_ms(10.0))
                .failures(FailurePlan::flaky(p))
                .cost(cogsdk_sim::cost::CostModel::PerCall(
                    cogsdk_sim::cost::MicroDollars::from_micros(100),
                ))
                .build(&env),
        );
    }
    sdk.set_policy(cogsdk_core::InvocationPolicy {
        default_retries: 0,
        ..cogsdk_core::InvocationPolicy::default()
    });
    (env, sdk)
}

fn req() -> Request {
    Request::new("put", json!({"k": "v"}))
}

fn report_series() {
    // --- Series 1: availability and cost by redundancy mode --------------
    // Sequential legs (first-success stops as soon as a store answers, so
    // the modes differ in monetary cost as well as availability).
    println!("[sec21_redundancy] p=0.3 per store, 3 replicas, 500 writes each mode:");
    for (label, mode) in [
        ("first-success", RedundantMode::FirstSuccess),
        ("quorum(2)", RedundantMode::Quorum(2)),
        ("all(3)", RedundantMode::All),
    ] {
        let (_env, sdk) = storage_sdk(0.3);
        let candidates: Vec<_> = sdk.registry().class_members("storage");
        let policy = cogsdk_core::InvocationPolicy {
            default_retries: 0,
            ..cogsdk_core::InvocationPolicy::default()
        };
        let n = 500;
        let ok = (0..n)
            .filter(|_| {
                cogsdk_core::invoke::invoke_redundant(
                    &candidates,
                    &req(),
                    mode,
                    &policy,
                    sdk.monitor(),
                )
                .is_ok()
            })
            .count();
        println!(
            "[sec21_redundancy]   {label:14} success={:.3} total_cost={}",
            ok as f64 / n as f64,
            sdk.monitor().total_cost()
        );
    }

    // --- Series 2: consensus confidence across the NLU fleet -------------
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    let fleet = standard_fleet(&env, Arc::new(Analyzer::with_default_lexicons()));
    let text = "IBM acquired Oracle. Germany, France, Japan, Brazil, India and \
                Canada signed agreements while Microsoft, Google and Amazon watched.";
    let consensus = sdk.nlu().consensus_analyze(&fleet, text);
    let unanimous = consensus
        .entities
        .iter()
        .filter(|e| e.confidence >= 0.99)
        .count();
    let contested = consensus
        .entities
        .iter()
        .filter(|e| e.confidence < 0.99)
        .count();
    println!(
        "[sec21_redundancy] consensus over {} vendors: {} unanimous entities, {} contested",
        consensus.responding_services.len(),
        unanimous,
        contested
    );
    for e in consensus.entities.iter().take(6) {
        println!(
            "[sec21_redundancy]   {:16} confidence={:.2}",
            e.canonical, e.confidence
        );
    }
}

fn bench(c: &mut Criterion) {
    report_series();
    let (_env, sdk) = storage_sdk(0.0);
    c.bench_function("redundant_all_3_parallel", |b| {
        b.iter(|| {
            sdk.invoke_redundant_parallel(
                "storage",
                std::hint::black_box(&req()),
                &RankOptions::default(),
                3,
                RedundantMode::All,
            )
            .unwrap()
        })
    });
    c.bench_function("redundant_first_success", |b| {
        b.iter(|| {
            sdk.invoke_redundant_parallel(
                "storage",
                std::hint::black_box(&req()),
                &RankOptions::default(),
                3,
                RedundantMode::FirstSuccess,
            )
            .unwrap()
        })
    });
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk2 = RichSdk::new(&env);
    let fleet = standard_fleet(&env, Arc::new(Analyzer::with_default_lexicons()));
    let text = "IBM acquired Oracle while Germany and France watched.";
    c.bench_function("consensus_3_vendors", |b| {
        b.iter(|| {
            sdk2.nlu()
                .consensus_analyze(&fleet, std::hint::black_box(text))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
