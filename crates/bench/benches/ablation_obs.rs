//! A-OBS (ablation): instrumentation overhead on the cached hot path.
//!
//! The telemetry layer claims to cost near zero when disabled (one branch
//! per probe) and only a few percent when enabled. This bench measures
//! `RichSdk::invoke_cached` hitting a warm cache — the fastest end-to-end
//! path the SDK has, i.e. the worst case for relative overhead — under
//! three configurations: telemetry disabled, enabled, and enabled with a
//! deliberately tiny ring buffer (steady-state drop path).

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::RichSdk;
use cogsdk_json::json;
use cogsdk_obs::Telemetry;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn sdk_with(telemetry: Telemetry) -> (SimEnv, RichSdk, Request) {
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::with_telemetry(&env, telemetry);
    sdk.register(
        SimService::builder("nlu", "nlu")
            .latency(LatencyModel::constant_ms(5.0))
            .build(&env),
    );
    let req = Request::new("analyze", json!({"doc": 7}));
    // Warm the cache so every measured call is a pure hit.
    sdk.invoke_cached("nlu", &req).unwrap();
    (env, sdk, req)
}

/// Wall-clock time for `n` cache-hit invocations.
fn time_hits(sdk: &RichSdk, req: &Request, n: usize) -> Duration {
    let start = Instant::now();
    for _ in 0..n {
        let (_, hit) = sdk.invoke_cached("nlu", req).unwrap();
        assert!(hit);
    }
    start.elapsed()
}

fn report_overhead() {
    const N: usize = 200_000;
    let (_e1, off_sdk, off_req) = sdk_with(Telemetry::disabled());
    let (_e2, on_sdk, on_req) = sdk_with(Telemetry::new());
    // Interleave the two measurements to cancel out drift.
    let (mut off, mut on) = (Duration::ZERO, Duration::ZERO);
    for _ in 0..5 {
        off += time_hits(&off_sdk, &off_req, N / 5);
        on += time_hits(&on_sdk, &on_req, N / 5);
    }
    let off_ns = off.as_nanos() as f64 / N as f64;
    let on_ns = on.as_nanos() as f64 / N as f64;
    println!(
        "[ablation_obs] cache-hit path over {N} calls: disabled={off_ns:.0}ns/call enabled={on_ns:.0}ns/call overhead={:+.1}%",
        (on_ns / off_ns - 1.0) * 100.0
    );
    println!(
        "[ablation_obs] enabled run recorded {} events, dropped {}",
        on_sdk.telemetry().tracer().len(),
        on_sdk.telemetry().tracer().dropped()
    );
}

fn bench(c: &mut Criterion) {
    report_overhead();

    let (_e1, off_sdk, off_req) = sdk_with(Telemetry::disabled());
    c.bench_function("invoke_cached_hit_telemetry_off", |b| {
        b.iter(|| {
            off_sdk
                .invoke_cached(std::hint::black_box("nlu"), &off_req)
                .unwrap()
        })
    });

    let (_e2, on_sdk, on_req) = sdk_with(Telemetry::new());
    c.bench_function("invoke_cached_hit_telemetry_on", |b| {
        b.iter(|| {
            on_sdk
                .invoke_cached(std::hint::black_box("nlu"), &on_req)
                .unwrap()
        })
    });

    // Steady state for a long-running process: the ring is full and every
    // emit also pops the oldest event.
    let (_e3, ring_sdk, ring_req) = sdk_with(Telemetry::with_event_capacity(64));
    for _ in 0..256 {
        ring_sdk.invoke_cached("nlu", &ring_req).unwrap();
    }
    c.bench_function("invoke_cached_hit_telemetry_ring_full", |b| {
        b.iter(|| {
            ring_sdk
                .invoke_cached(std::hint::black_box("nlu"), &ring_req)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
