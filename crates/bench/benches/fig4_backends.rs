//! E7 (Figure 4, storage backends): put/get cost across the knowledge
//! base's storage forms — in-memory KV, file-backed KV, relational
//! table, RDF graph — and local vs simulated-remote (§2, §3).
//!
//! Paper-predicted shape: "Local storage will generally incur
//! significantly lower latency" than the remote store; among local forms,
//! richer structure costs more per operation.

use bytes::Bytes;
use cogsdk_bench::BENCH_SEED;
use cogsdk_kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk_rdf::{Graph, Statement, Term};
use cogsdk_sim::cost::CostModel;
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::SimEnv;
use cogsdk_store::kv::{remote_kv_service, RemoteKv};
use cogsdk_store::table::{ColumnType, Predicate, Schema, Table, Value};
use cogsdk_store::{KeyValueStore, MemoryKv};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn report_series() {
    // --- Series: local vs remote virtual latency -------------------------
    let env = SimEnv::with_seed(BENCH_SEED);
    let remote = RemoteKv::new(remote_kv_service(
        &env,
        "cloud-kv",
        LatencyModel::size_linear_ms(12.0, 0.0005),
        FailurePlan::reliable(),
        CostModel::Free,
    ));
    let local = MemoryKv::new();
    let value = Bytes::from(vec![7u8; 4096]);
    let t0 = env.clock().now();
    for i in 0..100 {
        remote.put(&format!("k{i}"), value.clone()).unwrap();
    }
    let remote_elapsed = env.clock().now().since(t0);
    let t1 = env.clock().now();
    for i in 0..100 {
        local.put(&format!("k{i}"), value.clone()).unwrap();
    }
    let local_elapsed = env.clock().now().since(t1);
    println!(
        "[fig4_backends] 100 puts of 4 KiB: remote(virtual)={remote_elapsed:?} local={local_elapsed:?}"
    );
    println!(
        "[fig4_backends] paper claim: local ≪ remote — factor here is effectively unbounded \
         (local costs no virtual time)"
    );
}

fn sample_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ("id", ColumnType::Int),
        ("name", ColumnType::Text),
        ("value", ColumnType::Float),
    ])
    .unwrap();
    let mut t = Table::new(schema);
    for i in 0..rows {
        t.insert(vec![
            Value::Int(i as i64),
            Value::Text(format!("row-{i}")),
            Value::Float(i as f64 * 1.5),
        ])
        .unwrap();
    }
    t
}

fn sample_graph(n: usize) -> Graph {
    let mut g = Graph::new();
    for i in 0..n {
        g.insert(Statement::new(
            Term::iri(format!("kb:s{i}")),
            Term::iri("kb:value"),
            Term::integer(i as i64),
        ));
    }
    g
}

fn bench(c: &mut Criterion) {
    report_series();

    // KV put+get.
    let kv = MemoryKv::new();
    let value = Bytes::from(vec![7u8; 1024]);
    let mut i = 0u64;
    c.bench_function("backend_memory_kv_put_get_1k", |b| {
        b.iter(|| {
            i += 1;
            let key = format!("k{}", i % 1000);
            kv.put(&key, value.clone()).unwrap();
            kv.get(&key).unwrap()
        })
    });

    // File-backed KV.
    let dir = std::env::temp_dir().join(format!("cogsdk-bench-{}", std::process::id()));
    let filekv = cogsdk_store::kv::FileKv::open(&dir).unwrap();
    let mut j = 0u64;
    c.bench_function("backend_file_kv_put_get_1k", |b| {
        b.iter(|| {
            j += 1;
            let key = format!("k{}", j % 64);
            filekv.put(&key, value.clone()).unwrap();
            filekv.get(&key).unwrap()
        })
    });

    // Relational insert + select.
    c.bench_function("backend_table_insert_1000_rows", |b| {
        b.iter(|| sample_table(std::hint::black_box(1000)))
    });
    let table = sample_table(1000);
    c.bench_function("backend_table_select_predicate", |b| {
        b.iter(|| {
            table
                .select(&Predicate::Gt("value".into(), 900.0), &["id", "name"])
                .unwrap()
        })
    });

    // RDF insert + pattern match.
    c.bench_function("backend_rdf_insert_1000_triples", |b| {
        b.iter(|| sample_graph(std::hint::black_box(1000)))
    });
    let graph = sample_graph(1000);
    let p = Term::iri("kb:value");
    c.bench_function("backend_rdf_match_by_predicate", |b| {
        b.iter(|| graph.match_pattern(None, Some(std::hint::black_box(&p)), None))
    });

    // Whole-KB ingest path (CSV -> table -> RDF).
    let mut csv = String::from("id,name,value\n");
    for i in 0..200 {
        csv.push_str(&format!("{i},row-{i},{}\n", i as f64 * 1.5));
    }
    let mut run = 0u64;
    c.bench_function("backend_kb_csv_to_rdf_200_rows", |b| {
        b.iter(|| {
            run += 1;
            let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());
            kb.ingest_csv("t", std::hint::black_box(&csv)).unwrap();
            kb.table_to_rdf("t", "id", "kb").unwrap()
        })
    });

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
