//! A10 (ablation): durability cost and recovery time of the durable KB.
//!
//! Three questions, matching the durability design's claims:
//!
//! 1. What does WAL-logging an insert cost (ns/record, group-committed)?
//! 2. How long does recovery (snapshot load + WAL replay + closure
//!    re-derivation) take at 10k and 100k base triples?
//! 3. Is replay linear in WAL length — and near-flat right after a
//!    snapshot truncates the log?
//!
//! Everything runs on the deterministic in-memory `SimFs`, so the
//! numbers isolate the durability machinery (encoding, checksumming,
//! replay, re-materialization) from physical disk variance.

use cogsdk_bench::BENCH_SEED;
use cogsdk_rdf::{DurableOptions, DurableStore, Statement, Term};
use cogsdk_sim::fs::SimFs;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn statement(i: usize) -> Statement {
    Statement::new(
        Term::iri(format!("ex:s{}", i % 1000)),
        Term::iri(format!("ex:p{}", i % 20)),
        Term::iri(format!("ex:o{i}")),
    )
}

/// A durable store on a fresh SimFs holding `n` triples, committed in
/// batches of `batch` statements.
fn populated(seed: u64, n: usize, batch: usize) -> (Arc<SimFs>, DurableStore) {
    let fs = Arc::new(SimFs::new(seed));
    let mut store = DurableStore::open(fs.clone(), DurableOptions::default()).unwrap();
    let mut pending = Vec::with_capacity(batch);
    for i in 0..n {
        pending.push(statement(i));
        if pending.len() == batch {
            store.insert_batch(std::mem::take(&mut pending)).unwrap();
            pending.reserve(batch);
        }
    }
    if !pending.is_empty() {
        store.insert_batch(pending).unwrap();
    }
    (fs, store)
}

fn recovery_ms(fs: &Arc<SimFs>) -> f64 {
    let start = Instant::now();
    let store = DurableStore::open(fs.clone(), DurableOptions::default()).unwrap();
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    assert!(store.recovery_stats().is_some());
    elapsed
}

fn report() {
    // 1. WAL append cost per record, amortized over group commits.
    const N: usize = 20_000;
    for batch in [1usize, 64] {
        let start = Instant::now();
        let (_fs, store) = populated(BENCH_SEED, N, batch);
        let elapsed = start.elapsed();
        let stats = store.wal_stats();
        println!(
            "[ablation_durability] insert {N} triples, batch={batch}: \
             {:.0} ns/record, {} appends, {} fsyncs, {} wal bytes",
            elapsed.as_nanos() as f64 / N as f64,
            stats.appends,
            stats.fsyncs,
            stats.bytes,
        );
    }

    // 2. Recovery time at two scales, replaying the whole WAL.
    for &n in &[10_000usize, 100_000] {
        let (fs, store) = populated(BENCH_SEED + 1, n, 64);
        drop(store);
        fs.crash();
        let replay_ms = recovery_ms(&fs);
        // Recovery auto-snapshots after replay, so a second open reads
        // the snapshot with an empty WAL: the replay-vs-snapshot delta.
        let snapshot_ms = recovery_ms(&fs);
        println!(
            "[ablation_durability] recovery at {n} triples: \
             wal-replay={replay_ms:.1} ms, post-snapshot={snapshot_ms:.1} ms"
        );
    }
}

fn bench(c: &mut Criterion) {
    report();

    c.bench_function("wal_insert_batch_64", |b| {
        let fs = Arc::new(SimFs::new(BENCH_SEED + 2));
        let mut store = DurableStore::open(fs, DurableOptions::default()).unwrap();
        let mut i = 0usize;
        b.iter(|| {
            let batch: Vec<Statement> = (0..64).map(|k| statement(i + k)).collect();
            i += 64;
            store.insert_batch(std::hint::black_box(batch)).unwrap()
        })
    });

    c.bench_function("recovery_10k_from_snapshot", |b| {
        let (fs, store) = populated(BENCH_SEED + 3, 10_000, 64);
        drop(store);
        // First open folds the WAL into a snapshot; the measured opens
        // are pure snapshot-load + re-materialization.
        drop(DurableStore::open(fs.clone(), DurableOptions::default()).unwrap());
        b.iter(|| {
            DurableStore::open(fs.clone(), DurableOptions::default())
                .unwrap()
                .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
