//! E13 (§3, entity disambiguation): alias-resolution accuracy vs naive
//! string matching, and the redundant-entry proliferation the paper warns
//! about.
//!
//! Paper-predicted shape: naive matching splits one entity into as many
//! records as it has aliases ("we might mistakenly conclude that 'United
//! States of America' refers to a different country than 'USA'");
//! disambiguation collapses them to one.

use cogsdk_kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk_sim::rng::Rng;
use cogsdk_store::MemoryKv;
use cogsdk_text::lexicon::builtin_entities;
use cogsdk_text::EntityCatalog;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

fn report_series() {
    let entities = builtin_entities();
    let catalog = EntityCatalog::builtin();
    let mut rng = Rng::new(404);

    // --- Series 1: distinct records with vs without disambiguation -------
    // Generate 2000 mentions drawn from random aliases of 30 entities.
    let sample: Vec<&str> = (0..2000)
        .map(|_| {
            let e = rng.choose(&entities[..30]);
            *rng.choose(e.aliases)
        })
        .collect();
    let naive_records: HashSet<&str> = sample.iter().copied().collect();
    let resolved_records: HashSet<String> = sample
        .iter()
        .filter_map(|s| catalog.resolve(s).map(|r| r.id))
        .collect();
    println!(
        "[sec3_disambiguation] 2000 mentions of 30 entities: naive records={} disambiguated records={}",
        naive_records.len(),
        resolved_records.len()
    );

    // --- Series 2: resolution accuracy over every alias ------------------
    let mut total = 0;
    let mut correct = 0;
    for e in &entities {
        for alias in e.aliases {
            total += 1;
            if catalog.resolve(alias).is_some_and(|r| r.id == e.id) {
                correct += 1;
            }
        }
    }
    println!(
        "[sec3_disambiguation] alias resolution accuracy: {correct}/{total} ({:.1}%)",
        100.0 * correct as f64 / total as f64
    );

    // --- Series 3: KB-level redundancy prevention ------------------------
    let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());
    for alias in [
        "USA",
        "US",
        "United States",
        "America",
        "the states",
        "United States of America",
    ] {
        kb.add_fact(alias, "population", "331 million").unwrap();
    }
    println!(
        "[sec3_disambiguation] 6 differently-phrased facts stored as {} statement(s)",
        kb.statement_count()
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    let catalog = EntityCatalog::builtin();
    c.bench_function("resolve_short_alias", |b| {
        b.iter(|| catalog.resolve(std::hint::black_box("usa")))
    });
    c.bench_function("resolve_long_alias", |b| {
        b.iter(|| catalog.resolve(std::hint::black_box("United States of America")))
    });
    c.bench_function("resolve_miss", |b| {
        b.iter(|| catalog.resolve(std::hint::black_box("atlantis")))
    });
    let mut with_synonyms = EntityCatalog::builtin();
    with_synonyms
        .add_synonym_file(
            "influenza: flu, the flu, grippe\ndiabetes: type 2 diabetes, diabetes mellitus\n",
        )
        .unwrap();
    c.bench_function("resolve_custom_synonym", |b| {
        b.iter(|| with_synonyms.resolve(std::hint::black_box("type 2 diabetes")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = bench
}
criterion_main!(benches);
