//! A6 (ablation): single-mutex vs lock-striped cache under concurrent
//! traffic, plus the coalescing payoff on duplicate misses.
//!
//! Expected shape, in three series:
//!
//! 1. **All-hit throughput** at 1/4/8 threads. On multi-core hosts hits
//!    on distinct keys take distinct shard locks and aggregate throughput
//!    scales with threads, while one shard serializes every hit. (On a
//!    single-core CI runner both configs are CPU-bound and read flat —
//!    the per-op cost parity is the signal there.)
//! 2. **Capacity-pressure throughput** at 1/4/8 threads: misses insert
//!    and evict, and the LRU eviction scan runs *under the shard lock*
//!    over that shard's entries. One shard scans the whole map per
//!    eviction; 16 shards scan 1/16th. This is an algorithmic win —
//!    it shows at any core count and grows with capacity.
//! 3. **Coalescing**: K concurrent misses on one key cost exactly 1
//!    upstream call.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::cache::CacheConfig;
use cogsdk_core::{ResponseCache, SdkError};
use cogsdk_json::json;
use cogsdk_obs::Telemetry;
use cogsdk_sim::SimEnv;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Duration;

/// Prepopulated key space for the all-hit series.
const HOT_KEYS: usize = 4_096;
const HIT_GETS_PER_THREAD: usize = 200_000;

/// Capacity-pressure series: the working set is twice the capacity, so
/// roughly half the gets miss, insert, and evict.
const PRESSURE_CAPACITY: usize = 1_024;
const PRESSURE_KEYSPACE: usize = 2_048;
const PRESSURE_OPS_PER_THREAD: usize = 10_000;

fn build_cache(capacity: usize, shards: usize) -> ResponseCache {
    let env = SimEnv::with_seed(BENCH_SEED);
    ResponseCache::with_config(
        env.clock().clone(),
        CacheConfig {
            capacity,
            default_ttl: Duration::from_secs(3_600),
            shards,
            stale_while_revalidate: None,
        },
        Telemetry::disabled(),
    )
}

fn keyset(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("k{i}")).collect()
}

/// Runs `threads` workers over `ops`-long deterministic key strides and
/// returns aggregate Kops/s.
fn run_threads(
    cache: &ResponseCache,
    keys: &[String],
    threads: usize,
    ops: usize,
    insert_on_miss: bool,
) -> f64 {
    let barrier = Barrier::new(threads + 1);
    let started = std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = cache.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let mut k = t * 37;
                for _ in 0..ops {
                    // Deterministic LCG stride, distinct per thread.
                    k = (k * 1_664_525 + 1_013_904_223) % keys.len();
                    let key = &keys[k];
                    if std::hint::black_box(cache.get(key)).is_none() && insert_on_miss {
                        cache.put(key.clone(), json!({"k": (k)}));
                    }
                }
            });
        }
        barrier.wait();
        std::time::Instant::now()
    });
    let elapsed = started.elapsed();
    (threads * ops) as f64 / elapsed.as_secs_f64() / 1e3
}

fn all_hit_series() {
    println!(
        "[ablation_cache_sharded] all-hit: {HIT_GETS_PER_THREAD} gets/thread over \
         {HOT_KEYS} resident keys (aggregate Kops/s):"
    );
    let keys = keyset(HOT_KEYS);
    for &threads in &[1usize, 4, 8] {
        let row: Vec<String> = [1usize, 16]
            .iter()
            .map(|&shards| {
                let cache = build_cache(HOT_KEYS, shards);
                for (i, key) in keys.iter().enumerate() {
                    cache.put(key.clone(), json!({"v": (i)}));
                }
                let kops = run_threads(&cache, &keys, threads, HIT_GETS_PER_THREAD, false);
                format!("{shards:2}-shard={kops:8.0} Kops/s")
            })
            .collect();
        println!(
            "[ablation_cache_sharded] all-hit    threads={threads}  {}",
            row.join("  ")
        );
    }
}

fn pressure_series() {
    println!(
        "[ablation_cache_sharded] capacity-pressure: {PRESSURE_OPS_PER_THREAD} ops/thread, \
         {PRESSURE_KEYSPACE} keys over capacity {PRESSURE_CAPACITY} (~50% evicting misses):"
    );
    let keys = keyset(PRESSURE_KEYSPACE);
    for &threads in &[1usize, 4, 8] {
        let mut kops = [0.0f64; 2];
        for (i, &shards) in [1usize, 16].iter().enumerate() {
            let cache = build_cache(PRESSURE_CAPACITY, shards);
            kops[i] = run_threads(&cache, &keys, threads, PRESSURE_OPS_PER_THREAD, true);
        }
        println!(
            "[ablation_cache_sharded] pressure   threads={threads}   1-shard={:8.0} Kops/s  \
             16-shard={:8.0} Kops/s  speedup={:.2}x",
            kops[0],
            kops[1],
            kops[1] / kops[0]
        );
    }
}

/// Coalescing demo: `waiters` threads miss the same key at once; exactly
/// one upstream call is made, the rest join the flight.
fn coalescing_series(waiters: usize) {
    let cache = build_cache(HOT_KEYS, 16);
    let upstream = AtomicUsize::new(0);
    let barrier = Barrier::new(waiters);
    std::thread::scope(|scope| {
        for _ in 0..waiters {
            let (cache, upstream, barrier) = (&cache, &upstream, &barrier);
            scope.spawn(move || {
                barrier.wait();
                let fetch = || -> Result<_, SdkError> {
                    upstream.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(20));
                    Ok(json!({"fetched": true}))
                };
                cache.get_or_fetch("cold-key", fetch).unwrap();
            });
        }
    });
    println!(
        "[ablation_cache_sharded] coalescing: {waiters:2} concurrent misses -> {} upstream call(s), \
         {} coalesced waiter(s)",
        upstream.load(Ordering::SeqCst),
        cache.stats().coalesced_waits
    );
}

fn report_series() {
    all_hit_series();
    pressure_series();
    coalescing_series(16);
}

fn bench(c: &mut Criterion) {
    report_series();
    let keys = keyset(HOT_KEYS);
    for shards in [1usize, 16] {
        let cache = build_cache(HOT_KEYS, shards);
        for (i, key) in keys.iter().enumerate() {
            cache.put(key.clone(), json!({"v": (i)}));
        }
        c.bench_function(&format!("cache_hit_{shards}_shard"), |b| {
            b.iter(|| cache.get(std::hint::black_box("k2048")))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
