//! E4 (Figure 2, latency prediction): predictor error and selection
//! win-rate for mean / median / EWMA / regression-on-size predictors,
//! including the paper's s1/s2 size crossover (§2).
//!
//! Paper-predicted shape: conditioning on the latency parameter (size)
//! dominates unconditioned predictors whenever latency actually depends
//! on size; selection driven by the regression predictor picks the true
//! cheapest service on both sides of the crossover.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::predict::Predictor;
use cogsdk_core::rank::RankOptions;
use cogsdk_core::score::ScoringFormula;
use cogsdk_core::RichSdk;
use cogsdk_json::json;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Trains both paper services (s1 cheap-small, s2 cheap-large) over a
/// spread of sizes.
fn trained_sdk() -> (SimEnv, RichSdk) {
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    sdk.register(
        SimService::builder("s1", "storage")
            .latency(LatencyModel::SizeLinear {
                base_ms: 1.0,
                per_byte_ms: 0.010,
                jitter: 0.1,
            })
            .build(&env),
    );
    sdk.register(
        SimService::builder("s2", "storage")
            .latency(LatencyModel::SizeLinear {
                base_ms: 25.0,
                per_byte_ms: 0.001,
                jitter: 0.1,
            })
            .build(&env),
    );
    for i in 1..=40 {
        // The payload really is this big: the fabric samples latency from
        // the actual request size, and the declared latency parameter
        // matches it.
        let payload = json!({"b": ("x".repeat(i * 250))});
        let size = payload.size_bytes() as f64;
        let req = Request::new("put", payload).with_param("size", size);
        sdk.invoke("s1", &req).unwrap();
        sdk.invoke("s2", &req).unwrap();
    }
    (env, sdk)
}

fn report_series() {
    let (_env, sdk) = trained_sdk();
    let history = sdk.monitor().history("s1").unwrap();

    // --- Series 1: predictor error at extrapolated size ------------------
    println!("[fig2_prediction] predictor error for s1 at size=20000 (truth = 201ms):");
    let truth = 1.0 + 0.010 * 20_000.0;
    let params = vec![("size".to_string(), 20_000.0)];
    for (name, predictor) in [
        ("mean", Predictor::Mean),
        ("median", Predictor::Median),
        ("ewma(0.3)", Predictor::Ewma(0.3)),
        ("knn(5)", Predictor::KnnOn("size".into(), 5)),
        ("regression", Predictor::RegressionOn("size".into())),
    ] {
        let predicted = predictor.predict(&history, &params).unwrap();
        println!(
            "[fig2_prediction]   {name:12} predicted={predicted:7.2}ms  |err|={:7.2}ms",
            (predicted - truth).abs()
        );
    }

    // --- Series 2: selection win rate across the size spectrum -----------
    println!("[fig2_prediction] selection win-rate (pick = true cheapest):");
    for (name, predictor) in [
        ("mean", Predictor::Mean),
        ("regression", Predictor::RegressionOn("size".into())),
    ] {
        let mut wins = 0;
        let sizes: Vec<f64> = (1..=60).map(|i| i as f64 * 250.0).collect();
        for &size in &sizes {
            let options = RankOptions {
                predictor: predictor.clone(),
                formula: ScoringFormula::weighted(1.0, 0.0, 0.0),
                default_latency_ms: 100.0,
                params: vec![("size".into(), size)],
                availability_penalty: false,
            };
            let picked = sdk.rank("storage", &options)[0].service.name().to_string();
            let s1_true = 1.0 + 0.010 * size;
            let s2_true = 25.0 + 0.001 * size;
            let best = if s1_true <= s2_true { "s1" } else { "s2" };
            if picked == best {
                wins += 1;
            }
        }
        println!(
            "[fig2_prediction]   {name:12} win rate = {wins}/{} ({:.0}%)",
            sizes.len(),
            100.0 * wins as f64 / sizes.len() as f64
        );
    }

    // --- Series 3: crossover location -------------------------------------
    let mut crossover = None;
    for size in (1..=120).map(|i| i as f64 * 50.0) {
        let options = RankOptions {
            predictor: Predictor::RegressionOn("size".into()),
            formula: ScoringFormula::weighted(1.0, 0.0, 0.0),
            default_latency_ms: 100.0,
            params: vec![("size".into(), size)],
            availability_penalty: false,
        };
        if sdk.rank("storage", &options)[0].service.name() == "s2" {
            crossover = Some(size);
            break;
        }
    }
    println!(
        "[fig2_prediction] measured crossover ≈ {crossover:?} bytes (analytic 24/0.009 ≈ 2667)"
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    let (_env, sdk) = trained_sdk();
    let history = sdk.monitor().history("s1").unwrap();
    let params = vec![("size".to_string(), 5_000.0)];
    let regression = Predictor::RegressionOn("size".into());
    c.bench_function("predict_regression_on_40_points", |b| {
        b.iter(|| regression.predict(std::hint::black_box(&history), &params))
    });
    let mean = Predictor::Mean;
    c.bench_function("predict_mean_on_40_points", |b| {
        b.iter(|| mean.predict(std::hint::black_box(&history), &params))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = bench
}
criterion_main!(benches);
