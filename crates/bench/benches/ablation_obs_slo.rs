//! A9 (ablation): the active observability stack on the cached hot path.
//!
//! PR 1 showed passive telemetry costs a few hundred ns per cache hit.
//! This bench measures what the *active* SLO subsystem adds on the same
//! worst-case path — `RichSdk::invoke_cached_outcome_in` hitting a warm
//! cache — under three configurations: telemetry disabled, enabled, and
//! enabled with the tail sampler buffering every event (the upper bound;
//! real deployments downsample healthy traffic so buffered traces are
//! evicted, not grown). The acceptance bar: enabled-with-sampler stays
//! within 2x of the plain enabled baseline per hit.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::RichSdk;
use cogsdk_json::json;
use cogsdk_obs::{SamplerConfig, SloConfig, SloEngine, SloSpec, Telemetry};
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Rig {
    _env: SimEnv,
    sdk: RichSdk,
    req: Request,
    slo: Option<Arc<SloEngine>>,
}

fn rig(telemetry: Telemetry, sampling: bool, slo: bool) -> Rig {
    let env = SimEnv::with_seed(BENCH_SEED);
    if sampling {
        telemetry.enable_tail_sampling(SamplerConfig {
            healthy_sample_rate: 0.05,
            ..SamplerConfig::default()
        });
    }
    let sdk = RichSdk::with_telemetry(&env, telemetry.clone());
    sdk.register(
        SimService::builder("nlu", "nlu")
            .latency(LatencyModel::constant_ms(5.0))
            .build(&env),
    );
    let req = Request::new("analyze", json!({"doc": 7}));
    // Warm the cache so every measured call is a pure hit.
    sdk.invoke_cached("nlu", &req).unwrap();
    let slo = slo.then(|| {
        let engine = Arc::new(SloEngine::new(telemetry, SloConfig::default()));
        engine.add_objective(SloSpec::new("invoke-cached", 100.0, 0.99));
        engine
    });
    Rig {
        _env: env,
        sdk,
        req,
        slo,
    }
}

/// One full observed hit: trace + sampler hold/finalize + SLO record,
/// mirroring what the gateway does per request.
fn observed_hit(rig: &Rig) {
    let telemetry = rig.sdk.telemetry();
    let tracer = telemetry.tracer();
    let ctx = tracer.new_trace();
    let sampler = telemetry.sampler();
    if let Some(s) = &sampler {
        s.hold(ctx.trace);
    }
    let started = tracer.now_ms();
    let (_, source) = rig
        .sdk
        .invoke_cached_outcome_in("nlu", &rig.req, &ctx)
        .unwrap();
    assert!(source.served_locally());
    let latency = (tracer.now_ms() - started).max(0.0);
    if let Some(engine) = &rig.slo {
        engine.record("invoke-cached", None, true, latency, &ctx);
    }
    if let Some(s) = &sampler {
        s.finalize(ctx.trace, None);
    }
}

fn time_hits(rig: &Rig, n: usize) -> Duration {
    let start = Instant::now();
    for _ in 0..n {
        observed_hit(rig);
    }
    start.elapsed()
}

fn report_overhead() {
    const N: usize = 100_000;
    let off = rig(Telemetry::disabled(), false, false);
    let plain = rig(Telemetry::new(), false, false);
    let on = rig(Telemetry::new(), false, true);
    let full = rig(Telemetry::new(), true, true);
    // Interleave the measurements to cancel out drift.
    let mut t = [Duration::ZERO; 4];
    for _ in 0..5 {
        t[0] += time_hits(&off, N / 5);
        t[1] += time_hits(&plain, N / 5);
        t[2] += time_hits(&on, N / 5);
        t[3] += time_hits(&full, N / 5);
    }
    let per = |d: Duration| d.as_nanos() as f64 / N as f64;
    let (off_ns, plain_ns, on_ns, full_ns) = (per(t[0]), per(t[1]), per(t[2]), per(t[3]));
    println!(
        "[ablation_obs_slo] observed cache-hit over {N} calls: disabled={off_ns:.0}ns/call enabled={plain_ns:.0}ns/call enabled+slo={on_ns:.0}ns/call enabled+slo+sampler={full_ns:.0}ns/call"
    );
    println!(
        "[ablation_obs_slo] full-stack-vs-enabled={:.2}x (acceptance: <= 2x) sampler-vs-slo={:.2}x",
        full_ns / plain_ns,
        full_ns / on_ns
    );
    if let Some(sampler) = full.sdk.telemetry().sampler() {
        let stats = sampler.stats();
        println!(
            "[ablation_obs_slo] sampler saw {} events, buffered {}, retained {} traces, sampled out {}",
            stats.observed_events, stats.buffered_events, stats.retained_traces, stats.healthy_sampled_out
        );
    }
}

fn bench(c: &mut Criterion) {
    report_overhead();

    let off = rig(Telemetry::disabled(), false, false);
    c.bench_function("observed_hit_disabled", |b| {
        b.iter(|| observed_hit(std::hint::black_box(&off)))
    });

    let on = rig(Telemetry::new(), false, true);
    c.bench_function("observed_hit_enabled_slo", |b| {
        b.iter(|| observed_hit(std::hint::black_box(&on)))
    });

    let full = rig(Telemetry::new(), true, true);
    c.bench_function("observed_hit_enabled_slo_sampler", |b| {
        b.iter(|| observed_hit(std::hint::black_box(&full)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
