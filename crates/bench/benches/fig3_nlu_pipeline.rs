//! E6 (Figure 3): the NLU support pipeline — search → fetch → extract →
//! analyze → aggregate — with per-stage virtual latency and the local
//! HTML store's re-analysis saving (§2.2).
//!
//! Paper-predicted shape: fetch+analyze dominates; re-analysis from the
//! local document store removes the fetch stage entirely; aggregation is
//! local and cheap.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::RichSdk;
use cogsdk_search::html::extract_text;
use cogsdk_search::services::standard_web;
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::{SimEnv, SimService};
use cogsdk_text::analysis::{Analyzer, NluConfig};
use cogsdk_text::services::{nlu_service, NluVendorSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

struct World {
    env: SimEnv,
    sdk: RichSdk,
    search: Arc<SimService>,
    web: Arc<SimService>,
    nlu: Arc<SimService>,
}

fn world() -> World {
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    let (engines, web, _idx) = standard_web(&env, 13, 400);
    let mut spec = NluVendorSpec::new("nlu", NluConfig::perfect());
    spec.failures = FailurePlan::reliable();
    let nlu = nlu_service(&env, Arc::new(Analyzer::with_default_lexicons()), spec);
    World {
        env,
        sdk,
        search: engines[0].clone(),
        web,
        nlu,
    }
}

fn report_series() {
    // --- Series 1: per-stage virtual latency -----------------------------
    let w = world();
    let t0 = w.env.clock().now();
    let hits = w
        .sdk
        .nlu()
        .web_search(&w.search, "market growth", 8, false)
        .unwrap();
    let t1 = w.env.clock().now();
    let docs: Vec<String> = hits
        .iter()
        .filter_map(|h| {
            w.sdk
                .nlu()
                .fetch_document(&w.web, &h.url, "market growth")
                .ok()
                .map(|d| extract_text(&d.html))
        })
        .collect();
    let t2 = w.env.clock().now();
    let agg = w.sdk.nlu().analyze_documents(&w.nlu, &docs);
    let t3 = w.env.clock().now();
    println!(
        "[fig3_nlu_pipeline] stage latencies: search={:?} fetch({} docs)={:?} analyze={:?}",
        t1.since(t0),
        docs.len(),
        t2.since(t1),
        t3.since(t2)
    );
    println!(
        "[fig3_nlu_pipeline] aggregate: {} entities, {} keywords, sentiment={:+.3}",
        agg.entities.len(),
        agg.keywords.len(),
        agg.mean_sentiment
    );

    // --- Series 2: re-analysis from local store skips fetch --------------
    let t4 = w.env.clock().now();
    let stored = w.sdk.nlu().document_store().by_query("market growth");
    let docs2: Vec<String> = stored.iter().map(|d| extract_text(&d.html)).collect();
    let _ = w.sdk.nlu().analyze_documents(&w.nlu, &docs2);
    let t5 = w.env.clock().now();
    println!(
        "[fig3_nlu_pipeline] re-analysis of stored docs: {:?} (fetch stage eliminated)",
        t5.since(t4)
    );

    // --- Series 3: throughput of the end-to-end pipeline -----------------
    let w = world();
    let queries = [
        "energy sector",
        "vaccine research",
        "software plans",
        "election results",
    ];
    let t0 = w.env.clock().now();
    let mut total_docs = 0;
    for q in queries {
        let agg = w
            .sdk
            .nlu()
            .search_and_analyze(&w.search, &w.web, &w.nlu, q, 6)
            .unwrap();
        total_docs += agg.documents;
    }
    println!(
        "[fig3_nlu_pipeline] 4 queries end-to-end: {} documents, virtual time {:?}",
        total_docs,
        w.env.clock().now().since(t0)
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    let w = world();
    // Pre-fetch documents once; measure the pure-CPU analysis path.
    let hits = w
        .sdk
        .nlu()
        .web_search(&w.search, "market", 6, false)
        .unwrap();
    let texts: Vec<String> = hits
        .iter()
        .filter_map(|h| {
            w.sdk
                .nlu()
                .fetch_document(&w.web, &h.url, "market")
                .ok()
                .map(|d| extract_text(&d.html))
        })
        .collect();
    c.bench_function("analyze_and_aggregate_6_docs", |b| {
        b.iter(|| {
            w.sdk
                .nlu()
                .analyze_documents(&w.nlu, std::hint::black_box(&texts))
        })
    });
    let analyses: Vec<cogsdk_text::DocumentAnalysis> = texts
        .iter()
        .map(|t| Analyzer::with_default_lexicons().analyze(t, &NluConfig::perfect()))
        .collect();
    c.bench_function("aggregate_only_6_docs", |b| {
        b.iter(|| cogsdk_core::nlu::aggregate(std::hint::black_box(&analyses)))
    });
    c.bench_function("html_extract_text", |b| {
        let doc = w.sdk.nlu().document_store().by_url(&hits[0].url).unwrap();
        b.iter(|| extract_text(std::hint::black_box(&doc.html)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
