//! E14 (§3, offline operation): disconnected reads and analytics served
//! locally, and the cost/correctness of resynchronization after
//! reconnecting.
//!
//! Paper-predicted shape: offline work proceeds at local speed; resync
//! pushes exactly the dirty keys; nothing is lost across the outage.

use bytes::Bytes;
use cogsdk_kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk_store::sync::LocalFirstStore;
use cogsdk_store::{KeyValueStore, MemoryKv};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn report_series() {
    // --- Series 1: offline KB session + resync ---------------------------
    let cloud = Arc::new(MemoryKv::new());
    let kb = PersonalKnowledgeBase::new(cloud.clone(), KbOptions::default());
    kb.ingest_csv("sensor", "hour,temp\n0,18.0\n1,18.6\n2,19.1\n3,19.7\n")
        .unwrap();
    kb.persist_graph("snap").unwrap();
    kb.set_connected(false);
    let start = std::time::Instant::now();
    let facts = kb
        .regress_and_store("sensor", "hour", "temp", "warming")
        .unwrap();
    let inferred = kb
        .infer_rules("[(?m kb:trend \"increasing\") -> (?m kb:alert kb:Rising)]")
        .unwrap();
    kb.persist_graph("snap").unwrap();
    let offline_work = start.elapsed();
    println!(
        "[sec3_offline] offline analytics: slope={:+.3}, {} inferred fact(s), wall {:?}",
        facts.slope, inferred, offline_work
    );
    println!(
        "[sec3_offline] dirty keys while offline: {:?}",
        kb.dirty_keys()
    );
    kb.set_connected(true);
    let start = std::time::Instant::now();
    let report = kb.synchronize();
    println!(
        "[sec3_offline] resync: pushed={:?} failed={:?} in {:?}",
        report.pushed,
        report.failed,
        start.elapsed()
    );

    // --- Series 2: resync cost vs number of dirty keys -------------------
    for dirty in [10usize, 100, 1_000] {
        let local = Arc::new(MemoryKv::new());
        let remote = Arc::new(MemoryKv::new());
        let store = LocalFirstStore::new(local, remote);
        store.set_connected(false);
        for i in 0..dirty {
            store
                .put(&format!("k{i}"), Bytes::from(vec![0u8; 256]))
                .unwrap();
        }
        store.set_connected(true);
        let start = std::time::Instant::now();
        let report = store.synchronize();
        println!(
            "[sec3_offline] resync of {} keys: {:?} ({} pushed)",
            dirty,
            start.elapsed(),
            report.pushed.len()
        );
    }
}

fn bench(c: &mut Criterion) {
    report_series();

    // Offline write path (local only) vs connected write path (local +
    // remote mirror).
    let offline = LocalFirstStore::new(Arc::new(MemoryKv::new()), Arc::new(MemoryKv::new()));
    offline.set_connected(false);
    let value = Bytes::from(vec![1u8; 1024]);
    let mut i = 0u64;
    c.bench_function("offline_write_1k", |b| {
        b.iter(|| {
            i += 1;
            offline
                .put(&format!("k{}", i % 512), value.clone())
                .unwrap()
        })
    });
    let online = LocalFirstStore::new(Arc::new(MemoryKv::new()), Arc::new(MemoryKv::new()));
    let mut j = 0u64;
    c.bench_function("online_write_through_1k", |b| {
        b.iter(|| {
            j += 1;
            online.put(&format!("k{}", j % 512), value.clone()).unwrap()
        })
    });

    // Resynchronization of a 100-key backlog.
    c.bench_function("resync_100_dirty_keys", |b| {
        b.iter_with_setup(
            || {
                let store =
                    LocalFirstStore::new(Arc::new(MemoryKv::new()), Arc::new(MemoryKv::new()));
                store.set_connected(false);
                for i in 0..100 {
                    store.put(&format!("k{i}"), value.clone()).unwrap();
                }
                store.set_connected(true);
                store
            },
            |store| store.synchronize(),
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
