//! A6 (ablation): circuit breakers + deadline budgets under a replica
//! outage — resilience layer on vs off.
//!
//! Expected shape: without breakers, every request during the outage
//! burns `timeout x attempts` on the blackholed primary before failing
//! over, so outage p99 ~= 500ms; with breakers the first request trips
//! the circuit and every later request skips straight to the healthy
//! backup, holding outage p99 at the healthy baseline (~10ms).

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::invoke::{invoke_failover_governed, InvocationPolicy};
use cogsdk_core::resilience::{BreakerConfig, BreakerRegistry, Deadline, Governance};
use cogsdk_core::ServiceMonitor;
use cogsdk_json::json;
use cogsdk_obs::Telemetry;
use cogsdk_sim::chaos::{ChaosScenario, Fault};
use cogsdk_sim::clock::SimTime;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_millis(250);
const OUTAGE_START: Duration = Duration::from_secs(5);
const OUTAGE_END: Duration = Duration::from_secs(65);

fn req() -> Request {
    Request::new("recognize", json!({"img": 1}))
}

fn fleet(env: &SimEnv) -> Vec<Arc<SimService>> {
    let scenario = ChaosScenario::new(BENCH_SEED).with_fault(
        "primary",
        Fault::Blackhole {
            start: OUTAGE_START,
            end: OUTAGE_END,
        },
    );
    ["primary", "backup"]
        .iter()
        .map(|name| {
            SimService::builder(*name, "ocr")
                .latency(LatencyModel::constant_ms(10.0))
                .timeout(TIMEOUT)
                .failures(scenario.plan_for(name))
                .build(env)
        })
        .collect()
}

fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    samples.sort();
    let idx = ((samples.len() as f64 * p).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx]
}

/// Runs 100 requests at 500ms cadence through the outage window, with or
/// without the resilience layer, returning per-request latencies.
fn outage_latencies(with_resilience: bool) -> Vec<Duration> {
    let env = SimEnv::with_seed(BENCH_SEED);
    let candidates = fleet(&env);
    let monitor = ServiceMonitor::new();
    let telemetry = Telemetry::disabled();
    let breakers = with_resilience.then(|| {
        Arc::new(BreakerRegistry::new(
            env.clock().clone(),
            telemetry.clone(),
            BreakerConfig {
                window: 4,
                min_calls: 2,
                trip_error_rate: 0.5,
                open_for: Duration::from_secs(300),
                half_open_probes: 1,
            },
        ))
    });
    let policy = InvocationPolicy {
        default_retries: 1,
        ..InvocationPolicy::default()
    };
    let mut latencies = Vec::new();
    for i in 0..100u64 {
        let at = OUTAGE_START + Duration::from_millis(500 * i);
        env.clock().advance_to(SimTime::ZERO.after(at));
        let deadline = if with_resilience {
            Deadline::within(env.clock(), Duration::from_millis(800))
        } else {
            Deadline::NONE
        };
        let gov = Governance::new(breakers.clone(), deadline);
        let ctx = telemetry.tracer().new_trace();
        let started = env.clock().now();
        invoke_failover_governed(
            &candidates,
            &req(),
            &policy,
            &monitor,
            &telemetry,
            &ctx,
            &gov,
        )
        .expect("the backup keeps requests alive");
        latencies.push(env.clock().now().since(started));
    }
    latencies
}

fn report_series() {
    println!(
        "[ablation_breaker] 60s primary blackhole (timeout {TIMEOUT:?}, 1 retry), \
         100 requests at 500ms cadence, healthy backup:"
    );
    for (label, with_resilience) in [("breakers+deadline", true), ("no resilience", false)] {
        let mut lat = outage_latencies(with_resilience);
        let p50 = percentile(&mut lat, 0.50);
        let p99 = percentile(&mut lat, 0.99);
        let max = *lat.last().unwrap();
        println!("[ablation_breaker]   {label:18} outage p50={p50:?} p99={p99:?} max={max:?}");
    }
    println!(
        "[ablation_breaker] shape: without breakers every request pays timeout x \
         attempts (~{:?}) before failing over; with them only the discovering \
         request does, and p99 stays at the healthy ~10ms.",
        TIMEOUT * 2
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    // CPU overhead of breaker admission + recording on the hot path
    // (closed breaker, healthy service).
    let env = SimEnv::with_seed(BENCH_SEED);
    let telemetry = Telemetry::disabled();
    let breakers = Arc::new(BreakerRegistry::new(
        env.clock().clone(),
        telemetry.clone(),
        BreakerConfig::default(),
    ));
    let ctx = telemetry.tracer().new_trace();
    c.bench_function("breaker_admit_record_closed", |b| {
        b.iter(|| {
            let admission = breakers.admit(std::hint::black_box("svc"), &ctx);
            breakers.record("svc", true, &ctx);
            admission
        })
    });
    let monitor = ServiceMonitor::new();
    let healthy = fleet(&env);
    let policy = InvocationPolicy::default();
    c.bench_function("governed_failover_overhead", |b| {
        let gov = Governance::new(Some(breakers.clone()), Deadline::NONE);
        b.iter(|| {
            invoke_failover_governed(
                &healthy[1..],
                std::hint::black_box(&req()),
                &policy,
                &monitor,
                &telemetry,
                &ctx,
                &gov,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = bench
}
criterion_main!(benches);
