//! E1 (Figure 2, caching): hit vs miss latency, hit-rate under a Zipf
//! workload, and quota savings from caching (§2, §2.2).
//!
//! Paper-predicted shape: a cache hit costs orders of magnitude less than
//! a remote call; under a skewed workload most requests hit; cached
//! clients survive on a fraction of the quota.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::rank::RankOptions;
use cogsdk_core::RichSdk;
use cogsdk_json::json;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::quota::Quota;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn setup() -> (SimEnv, RichSdk) {
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    sdk.register(
        SimService::builder("nlu", "nlu")
            .latency(LatencyModel::lognormal_ms(60.0, 0.4))
            .build(&env),
    );
    (env, sdk)
}

fn report_series() {
    // --- Series 1: virtual latency of miss vs hit -----------------------
    let (env, sdk) = setup();
    let req = Request::new("analyze", json!({"text": "doc-0"}));
    let t0 = env.clock().now();
    sdk.invoke_cached("nlu", &req).unwrap();
    let t1 = env.clock().now();
    sdk.invoke_cached("nlu", &req).unwrap();
    let t2 = env.clock().now();
    println!("[fig2_caching] miss latency = {:?}", t1.since(t0));
    println!(
        "[fig2_caching] hit latency  = {:?} (modeled remote work avoided)",
        t2.since(t1)
    );

    // --- Series 2: hit rate under Zipf(s) over 500 distinct documents ---
    for s in [0.8, 1.0, 1.2] {
        let (env, sdk) = setup();
        let mut rng = env.rng().fork();
        let n = 5_000;
        for _ in 0..n {
            let doc = rng.zipf(500, s);
            let req = Request::new("analyze", json!({"text": (format!("doc-{doc}"))}));
            sdk.invoke_cached("nlu", &req).unwrap();
        }
        let stats = sdk.cache().stats();
        println!(
            "[fig2_caching] zipf s={s}: hit_rate={:.3} ({} hits / {} lookups)",
            stats.hit_rate(),
            stats.hits,
            stats.hits + stats.misses
        );
    }

    // --- Series 3: quota savings (§2.2 limited invocation quotas) -------
    for cached in [false, true] {
        let env = SimEnv::with_seed(BENCH_SEED);
        let sdk = RichSdk::new(&env);
        sdk.register(
            SimService::builder("metered", "nlu")
                .latency(LatencyModel::constant_ms(10.0))
                .quota(Quota::new(500, Duration::from_secs(86_400)))
                .build(&env),
        );
        let mut rng = env.rng().fork();
        let mut ok = 0;
        let n = 2_000;
        for _ in 0..n {
            let doc = rng.zipf(200, 1.1);
            let req = Request::new("analyze", json!({"text": (format!("doc-{doc}"))}));
            let success = if cached {
                sdk.invoke_cached("metered", &req).is_ok()
            } else {
                sdk.invoke("metered", &req).is_ok()
            };
            if success {
                ok += 1;
            }
        }
        println!(
            "[fig2_caching] quota 500/day, {n} requests, cached={cached}: answered={ok} ({:.1}%)",
            100.0 * ok as f64 / n as f64
        );
    }
    let _ = RankOptions::default();
}

fn bench(c: &mut Criterion) {
    report_series();
    let (_env, sdk) = setup();
    let req = Request::new("analyze", json!({"text": "hot-doc"}));
    sdk.invoke_cached("nlu", &req).unwrap();
    c.bench_function("cache_hit_overhead", |b| {
        b.iter(|| {
            sdk.invoke_cached("nlu", std::hint::black_box(&req))
                .unwrap()
        })
    });
    let (_env2, sdk2) = setup();
    let mut i = 0u64;
    c.bench_function("cache_miss_full_call", |b| {
        b.iter(|| {
            i += 1;
            let req = Request::new("analyze", json!({"text": (format!("cold-{i}"))}));
            sdk2.invoke_cached("nlu", std::hint::black_box(&req))
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = bench
}
criterion_main!(benches);
