//! E10 (Figure 5): the analyze → store-as-RDF → infer loop — regression
//! over ingested data, facts into the triple store, reasoners generating
//! knowledge "beyond that produced by just the mathematical analysis
//! itself" (§3).
//!
//! Paper-predicted shape: inference yields strictly more facts than
//! ingestion + statistics alone; reasoner cost grows with graph size.

use cogsdk_kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk_rdf::owl::OwlLiteReasoner;
use cogsdk_rdf::{GenericRuleReasoner, Graph, RdfsReasoner, Statement, Term, TransitiveReasoner};
use cogsdk_store::MemoryKv;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn revenue_csv(quarters: usize) -> String {
    let mut csv = String::from("quarter,revenue\n");
    for q in 0..quarters {
        csv.push_str(&format!("{q},{}\n", 1000.0 + 42.0 * q as f64));
    }
    csv
}

const RULES: &str = "\
[(?m kb:trend \"increasing\") -> (?m kb:classification kb:GrowthIndicator)]
[(?m kb:classification kb:GrowthIndicator) -> (?m kb:action kb:IncreaseInvestment)]
";

fn report_series() {
    // --- Series 1: facts before vs after the Figure-5 loop ---------------
    let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());
    kb.ingest_csv("revenue", &revenue_csv(12)).unwrap();
    kb.table_to_rdf("revenue", "quarter", "kb").unwrap();
    let after_ingest = kb.statement_count();
    kb.regress_and_store("revenue", "quarter", "revenue", "acme")
        .unwrap();
    let after_analysis = kb.statement_count();
    let inferred = kb.infer_rules(RULES).unwrap();
    println!(
        "[fig5_inference] facts: ingest={after_ingest} +analysis={} +inference={inferred} total={}",
        after_analysis - after_ingest,
        kb.statement_count()
    );

    // --- Series 2: reasoner scaling with graph size ----------------------
    for n in [100usize, 1_000, 5_000] {
        let mut g = Graph::new();
        // A subclass chain of depth 10 with n/10 instances each.
        for d in 0..10 {
            g.insert(Statement::new(
                Term::iri(format!("c{d}")),
                Term::iri("rdfs:subClassOf"),
                Term::iri(format!("c{}", d + 1)),
            ));
        }
        for i in 0..n {
            g.insert(Statement::new(
                Term::iri(format!("inst{i}")),
                Term::iri("rdf:type"),
                Term::iri(format!("c{}", i % 10)),
            ));
        }
        let start = std::time::Instant::now();
        let inferred = RdfsReasoner::new().infer(&g);
        println!(
            "[fig5_inference] rdfs over {} stated facts: {} inferred in {:?}",
            g.len(),
            inferred.len(),
            start.elapsed()
        );
    }

    // --- Series 2b: the OWL/Lite reasoner over an alias-rich graph -------
    {
        let mut g = Graph::new();
        g.insert(Statement::new(
            Term::iri("kb:partOf"),
            Term::iri("rdf:type"),
            Term::iri("owl:TransitiveProperty"),
        ));
        for i in 0..50 {
            g.insert(Statement::new(
                Term::iri(format!("n{i}")),
                Term::iri("kb:partOf"),
                Term::iri(format!("n{}", i + 1)),
            ));
            g.insert(Statement::new(
                Term::iri(format!("alias{i}")),
                Term::iri("owl:sameAs"),
                Term::iri(format!("n{i}")),
            ));
        }
        let start = std::time::Instant::now();
        let inferred = OwlLiteReasoner::owl_only().infer(&g);
        println!(
            "[fig5_inference] owl-lite over {} facts (transitivity + 50 sameAs aliases): {} inferred in {:?}",
            g.len(),
            inferred.len(),
            start.elapsed()
        );
    }

    // --- Series 3: transitive closure on a chain -------------------------
    for len in [10usize, 50, 100] {
        let mut g = Graph::new();
        for i in 0..len {
            g.insert(Statement::new(
                Term::iri(format!("n{i}")),
                Term::iri("kb:precedes"),
                Term::iri(format!("n{}", i + 1)),
            ));
        }
        let start = std::time::Instant::now();
        let closure = TransitiveReasoner::new(vec![Term::iri("kb:precedes")]).infer(&g);
        println!(
            "[fig5_inference] transitive chain len={len}: {} new edges in {:?}",
            closure.len(),
            start.elapsed()
        );
    }
}

fn bench(c: &mut Criterion) {
    report_series();

    c.bench_function("fig5_full_loop_12_quarters", |b| {
        b.iter(|| {
            let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());
            kb.ingest_csv("revenue", std::hint::black_box(&revenue_csv(12)))
                .unwrap();
            kb.table_to_rdf("revenue", "quarter", "kb").unwrap();
            kb.regress_and_store("revenue", "quarter", "revenue", "acme")
                .unwrap();
            kb.infer_rules(RULES).unwrap()
        })
    });

    // Reasoners in isolation over a mid-sized graph.
    let mut g = Graph::new();
    for d in 0..10 {
        g.insert(Statement::new(
            Term::iri(format!("c{d}")),
            Term::iri("rdfs:subClassOf"),
            Term::iri(format!("c{}", d + 1)),
        ));
    }
    for i in 0..500 {
        g.insert(Statement::new(
            Term::iri(format!("inst{i}")),
            Term::iri("rdf:type"),
            Term::iri(format!("c{}", i % 10)),
        ));
    }
    c.bench_function("rdfs_reasoner_500_instances", |b| {
        b.iter(|| RdfsReasoner::new().infer(std::hint::black_box(&g)))
    });

    let rules = GenericRuleReasoner::from_rules_text(
        "[(?x rdf:type c0), (?y rdf:type c1) -> (?x kb:peer ?y)]",
    )
    .unwrap();
    c.bench_function("rule_reasoner_cross_join", |b| {
        b.iter(|| rules.infer(std::hint::black_box(&g)))
    });

    // SPARQL over the inferred graph.
    let mut closed = g.clone();
    closed.extend_from(&RdfsReasoner::new().infer(&g));
    let query =
        cogsdk_rdf::Query::parse("SELECT ?x WHERE { ?x <rdf:type> <c9> . } LIMIT 50").unwrap();
    c.bench_function("sparql_type_query_closed_graph", |b| {
        b.iter(|| query.execute(std::hint::black_box(&closed)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
