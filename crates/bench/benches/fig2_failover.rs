//! E3 (Figure 2, failure handling): success probability and added
//! latency as functions of per-service failure rate, retry budget, and
//! ranked failover depth (§2.1).
//!
//! Paper-predicted shape: success = 1 − pᵏ⁺¹ per service; adding ranked
//! failover across m services compounds to 1 − p^(m·(k+1)); each retry
//! adds roughly one failure-detection latency.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::invoke::{invoke_failover, invoke_with_retry, InvocationPolicy};
use cogsdk_core::ServiceMonitor;
use cogsdk_json::json;
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn flaky(env: &SimEnv, name: &str, p: f64) -> Arc<SimService> {
    SimService::builder(name, "cls")
        .latency(LatencyModel::constant_ms(10.0))
        .failures(FailurePlan::flaky(p))
        .timeout(Duration::from_millis(200))
        .build(env)
}

fn req() -> Request {
    Request::new("op", json!({"k": 1}))
}

fn report_series() {
    // --- Series 1: success vs retries, per failure rate ------------------
    println!("[fig2_failover] single-service success rate (measured | 1-p^(k+1) predicted):");
    for p in [0.1, 0.3, 0.5] {
        let env = SimEnv::with_seed(BENCH_SEED);
        let monitor = ServiceMonitor::new();
        let svc = flaky(&env, "s", p);
        let mut row = format!("[fig2_failover]   p={p}:");
        for retries in [0usize, 1, 2, 4] {
            let n = 3_000;
            let ok = (0..n)
                .filter(|_| {
                    invoke_with_retry(&svc, &req(), retries, &monitor)
                        .result
                        .is_ok()
                })
                .count();
            row.push_str(&format!(
                " k={retries}:{:.3}|{:.3}",
                ok as f64 / n as f64,
                1.0 - p.powi(retries as i32 + 1)
            ));
        }
        println!("{row}");
    }

    // --- Series 2: failover depth sweep ----------------------------------
    println!("[fig2_failover] ranked failover across m replicas (p=0.5, k=0):");
    for m in [1usize, 2, 3, 4] {
        let env = SimEnv::with_seed(BENCH_SEED + m as u64);
        let monitor = ServiceMonitor::new();
        let candidates: Vec<Arc<SimService>> =
            (0..m).map(|i| flaky(&env, &format!("s{i}"), 0.5)).collect();
        let policy = InvocationPolicy {
            default_retries: 0,
            ..InvocationPolicy::default()
        };
        let n = 2_000;
        let ok = (0..n)
            .filter(|_| invoke_failover(&candidates, &req(), &policy, &monitor).is_ok())
            .count();
        println!(
            "[fig2_failover]   m={m}: success={:.3} (predicted {:.3})",
            ok as f64 / n as f64,
            1.0 - 0.5f64.powi(m as i32)
        );
    }

    // --- Series 3: latency cost of resilience ----------------------------
    let env = SimEnv::with_seed(BENCH_SEED);
    let monitor = ServiceMonitor::new();
    let candidates = vec![
        flaky(&env, "a", 0.5),
        flaky(&env, "b", 0.5),
        flaky(&env, "c", 0.0),
    ];
    let policy = InvocationPolicy {
        default_retries: 1,
        ..InvocationPolicy::default()
    };
    let t0 = env.clock().now();
    let n = 500;
    let mut attempts_total = 0;
    for _ in 0..n {
        if let Ok(ok) = invoke_failover(&candidates, &req(), &policy, &monitor) {
            attempts_total += ok.attempts;
        }
    }
    let elapsed = env.clock().now().since(t0);
    println!(
        "[fig2_failover] mean virtual latency per resilient call: {:.2}ms (mean attempts {:.2})",
        elapsed.as_secs_f64() * 1000.0 / n as f64,
        attempts_total as f64 / n as f64
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    let env = SimEnv::with_seed(BENCH_SEED);
    let monitor = ServiceMonitor::new();
    let healthy = flaky(&env, "healthy", 0.0);
    c.bench_function("invoke_no_failure_overhead", |b| {
        b.iter(|| invoke_with_retry(&healthy, std::hint::black_box(&req()), 2, &monitor))
    });
    let dead_then_alive = vec![flaky(&env, "dead", 1.0), flaky(&env, "alive", 0.0)];
    let policy = InvocationPolicy {
        default_retries: 1,
        ..InvocationPolicy::default()
    };
    c.bench_function("failover_two_services", |b| {
        b.iter(|| {
            invoke_failover(
                &dead_then_alive,
                std::hint::black_box(&req()),
                &policy,
                &monitor,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = bench
}
criterion_main!(benches);
