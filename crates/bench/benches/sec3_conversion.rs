//! E12 (§3, format conversion): CSV ↔ table ↔ RDF round-trip throughput
//! and fidelity — "the ability to convert data between different formats
//! is a key property of our personalized knowledge base."
//!
//! Paper-predicted shape: conversion is linear in rows; every round trip
//! is lossless for typed data.

use cogsdk_kb::convert::{graph_to_text, statements_to_table, table_to_statements, text_to_graph};
use cogsdk_rdf::Graph;
use cogsdk_store::csv::{csv_to_table, table_to_csv};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn csv_of(rows: usize) -> String {
    let mut csv = String::from("id,name,value,flag\n");
    for i in 0..rows {
        csv.push_str(&format!("{i},item-{i},{}.25,{}\n", i * 3, i % 2 == 0));
    }
    csv
}

fn report_series() {
    // --- Fidelity: full cycle CSV -> table -> RDF -> text -> RDF -> table
    let csv = csv_of(500);
    let table = csv_to_table(&csv).unwrap();
    let statements = table_to_statements(&table, "id", "kb").unwrap();
    let graph: Graph = statements.iter().cloned().collect();
    let text = graph_to_text(&graph);
    let graph2 = text_to_graph(&text).unwrap();
    let triple_table = statements_to_table(&graph2);
    println!(
        "[sec3_conversion] fidelity: 500 rows -> {} statements -> {} text bytes -> {} statements -> {} triple rows",
        statements.len(),
        text.len(),
        graph2.len(),
        triple_table.len()
    );
    assert_eq!(graph, graph2, "round trip must be lossless");
    // CSV round trip.
    let back = csv_to_table(&table_to_csv(&table)).unwrap();
    println!(
        "[sec3_conversion] csv round trip lossless: {}",
        back == table
    );

    // --- Throughput shape: rows vs wall time ------------------------------
    for rows in [100usize, 1_000, 10_000] {
        let csv = csv_of(rows);
        let start = std::time::Instant::now();
        let t = csv_to_table(&csv).unwrap();
        let parse = start.elapsed();
        let start = std::time::Instant::now();
        let stmts = table_to_statements(&t, "id", "kb").unwrap();
        let convert = start.elapsed();
        println!(
            "[sec3_conversion] rows={rows}: csv_parse={parse:?} to_rdf({} stmts)={convert:?}",
            stmts.len()
        );
    }
}

fn bench(c: &mut Criterion) {
    report_series();
    let mut group = c.benchmark_group("conversion");
    for rows in [100usize, 1000] {
        let csv = csv_of(rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("csv_to_table", rows), &csv, |b, csv| {
            b.iter(|| csv_to_table(std::hint::black_box(csv)).unwrap())
        });
        let table = csv_to_table(&csv).unwrap();
        group.bench_with_input(BenchmarkId::new("table_to_rdf", rows), &table, |b, t| {
            b.iter(|| table_to_statements(std::hint::black_box(t), "id", "kb").unwrap())
        });
        let graph: Graph = table_to_statements(&table, "id", "kb")
            .unwrap()
            .into_iter()
            .collect();
        group.bench_with_input(BenchmarkId::new("rdf_to_text", rows), &graph, |b, g| {
            b.iter(|| graph_to_text(std::hint::black_box(g)))
        });
        let text = graph_to_text(&graph);
        group.bench_with_input(BenchmarkId::new("text_to_rdf", rows), &text, |b, t| {
            b.iter(|| text_to_graph(std::hint::black_box(t)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
