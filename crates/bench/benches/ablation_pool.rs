//! A3 (ablation): thread-pool size vs fan-out latency — §2.1's "to
//! prevent the number of threads from becoming too large in corner cases,
//! we use thread pools of limited size."
//!
//! Expected shape: wall time of a k-way fan-out falls with pool size
//! until pool ≥ k, then flattens; a size-1 pool degenerates to sequential.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::ThreadPool;
use cogsdk_json::json;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SCALE: f64 = 0.02; // 1 modeled ms -> 20 real µs
const FANOUT: usize = 16;

fn report_series() {
    println!("[ablation_pool] {FANOUT}-way fan-out over 50ms services (scaled real time):");
    for pool_size in [1usize, 2, 4, 8, 16, 32] {
        let env = SimEnv::with_seed_scaled(BENCH_SEED, SCALE);
        let services: Vec<Arc<SimService>> = (0..FANOUT)
            .map(|i| {
                SimService::builder(format!("svc-{i}"), "cls")
                    .latency(LatencyModel::constant_ms(50.0))
                    .build(&env)
            })
            .collect();
        let pool = ThreadPool::new(pool_size);
        let start = Instant::now();
        let futures: Vec<_> = services
            .iter()
            .map(|svc| {
                let svc = svc.clone();
                pool.submit(move || svc.invoke(&Request::new("op", json!({"x": 1}))))
            })
            .collect();
        for f in &futures {
            f.wait();
        }
        let elapsed = start.elapsed();
        // Ideal: ceil(FANOUT / pool) * 50ms * SCALE.
        let ideal = Duration::from_secs_f64(FANOUT.div_ceil(pool_size) as f64 * 0.050 * SCALE);
        println!("[ablation_pool]   pool={pool_size:2}: wall={elapsed:?} (ideal ≈ {ideal:?})");
    }
}

fn bench(c: &mut Criterion) {
    report_series();
    // CPU-side dispatch overhead by pool size (virtual time: no sleeps).
    let env = SimEnv::with_seed(BENCH_SEED);
    let services: Vec<Arc<SimService>> = (0..FANOUT)
        .map(|i| {
            SimService::builder(format!("svc-{i}"), "cls")
                .latency(LatencyModel::constant_ms(50.0))
                .build(&env)
        })
        .collect();
    let mut group = c.benchmark_group("pool_dispatch");
    for pool_size in [1usize, 4, 16] {
        let pool = ThreadPool::new(pool_size);
        group.bench_with_input(BenchmarkId::from_parameter(pool_size), &pool, |b, pool| {
            b.iter(|| {
                let futures: Vec<_> = services
                    .iter()
                    .map(|svc| {
                        let svc = svc.clone();
                        pool.submit(move || svc.invoke(&Request::new("op", json!({"x": 1}))))
                    })
                    .collect();
                futures.iter().filter(|f| f.wait().result.is_ok()).count()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
