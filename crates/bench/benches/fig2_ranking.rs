//! E2 (Figure 2, ranking): Eq. 1 / Eq. 2 scoring cost, rank stability,
//! and the quality-weight crossover (§2).
//!
//! Paper-predicted shape: ranking is cheap bookkeeping; low γ picks the
//! fast cheap service, high γ flips the ranking to the high-quality one,
//! with a crossover in between.

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::rank::RankOptions;
use cogsdk_core::score::ScoringFormula;
use cogsdk_core::RichSdk;
use cogsdk_json::json;
use cogsdk_sim::cost::{CostModel, MicroDollars};
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn setup() -> (SimEnv, RichSdk) {
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    sdk.register(
        SimService::builder("fast-cheap-poor", "nlu")
            .latency(LatencyModel::lognormal_ms(15.0, 0.3))
            .cost(CostModel::PerCall(MicroDollars::from_micros(100)))
            .quality(0.55)
            .build(&env),
    );
    sdk.register(
        SimService::builder("slow-pricey-good", "nlu")
            .latency(LatencyModel::lognormal_ms(90.0, 0.3))
            .cost(CostModel::PerCall(MicroDollars::from_micros(900)))
            .quality(0.95)
            .build(&env),
    );
    sdk.register(
        SimService::builder("middling", "nlu")
            .latency(LatencyModel::lognormal_ms(45.0, 0.3))
            .cost(CostModel::PerCall(MicroDollars::from_micros(400)))
            .quality(0.75)
            .build(&env),
    );
    // Warm the monitor so rankings are data-driven.
    let req = Request::new("analyze", json!({"text": "warmup"}));
    for _ in 0..25 {
        for name in ["fast-cheap-poor", "slow-pricey-good", "middling"] {
            let _ = sdk.invoke(name, &req);
        }
    }
    (env, sdk)
}

fn report_series() {
    let (_env, sdk) = setup();
    // --- Series: winner as a function of the quality weight gamma -------
    println!("[fig2_ranking] gamma sweep (alpha=1, beta=1):");
    let mut crossover = None;
    for gamma in [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 8.0] {
        let ranked = sdk.rank(
            "nlu",
            &RankOptions {
                formula: ScoringFormula::normalized(1.0, 1.0, gamma),
                ..RankOptions::default()
            },
        );
        let winner = ranked[0].service.name().to_string();
        if winner == "slow-pricey-good" && crossover.is_none() {
            crossover = Some(gamma);
        }
        println!(
            "[fig2_ranking]   gamma={gamma:<4} winner={winner:18} scores=({})",
            ranked
                .iter()
                .map(|r| format!("{}={:+.3}", r.service.name(), r.score))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!("[fig2_ranking] quality-weight crossover at gamma ≈ {crossover:?}");

    // --- Series: Eq.1 vs Eq.2 agreement on the winner -------------------
    let eq1 = sdk.rank(
        "nlu",
        &RankOptions {
            // Eq.1 raw weights need scale-aware tuning: ms and micro-$
            // are on wildly different scales.
            formula: ScoringFormula::weighted(1.0, 0.01, 100.0),
            ..RankOptions::default()
        },
    );
    let eq2 = sdk.rank(
        "nlu",
        &RankOptions {
            formula: ScoringFormula::normalized(1.0, 1.0, 1.0),
            ..RankOptions::default()
        },
    );
    println!(
        "[fig2_ranking] Eq.1 winner={} | Eq.2 winner={}",
        eq1[0].service.name(),
        eq2[0].service.name()
    );

    // --- Series: rank stability across repeated rankings ----------------
    let order: Vec<String> = sdk
        .rank("nlu", &RankOptions::default())
        .iter()
        .map(|r| r.service.name().to_string())
        .collect();
    let stable = (0..50).all(|_| {
        sdk.rank("nlu", &RankOptions::default())
            .iter()
            .map(|r| r.service.name().to_string())
            .collect::<Vec<_>>()
            == order
    });
    println!("[fig2_ranking] rank stable over 50 re-rankings: {stable}");
}

fn bench(c: &mut Criterion) {
    report_series();
    let (_env, sdk) = setup();
    let options = RankOptions::default();
    c.bench_function("rank_3_services_eq2", |b| {
        b.iter(|| sdk.rank(std::hint::black_box("nlu"), &options))
    });
    let options_eq1 = RankOptions {
        formula: ScoringFormula::weighted(1.0, 0.01, 100.0),
        ..RankOptions::default()
    };
    c.bench_function("rank_3_services_eq1", |b| {
        b.iter(|| sdk.rank(std::hint::black_box("nlu"), &options_eq1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = bench
}
criterion_main!(benches);
