//! A12 (ablation): reader/writer isolation of the epoch snapshot store.
//!
//! The snapshot-isolated store's claims, quantified:
//!
//! 1. Pinning a snapshot is O(1) — one `Arc` bump — regardless of how
//!    many triples the graph holds.
//! 2. Readers are unharmed by sustained ingest: query p99 on a pinned
//!    epoch while a writer publishes epochs stays within 1.5× of the
//!    idle p99 (readers never wait on the store lock).
//! 3. Writers are unharmed by readers: sustained batch-insert
//!    throughput with concurrent snapshot readers stays within 20% of
//!    the exclusive baseline (publishing never waits for readers to
//!    drain).
//!
//! Everything runs on the in-memory store, so the numbers isolate the
//! epoch machinery (freeze, delta-run stacking, `Arc` swap) from disk
//! and network variance.

use cogsdk_rdf::{BgpQuery, DurableStore, EpochStore, Statement, Term};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

const BASE: usize = 50_000;
const READ_SAMPLES: usize = 2_000;
const WRITE_TOTAL: usize = 20_000;
const WRITE_BATCH: usize = 64;
const READER_THREADS: usize = 2;

fn statement(i: usize) -> Statement {
    Statement::new(
        Term::iri(format!("ex:s{}", i % 1000)),
        Term::iri(format!("ex:p{}", i % 20)),
        Term::iri(format!("ex:o{i}")),
    )
}

fn populated(n: usize) -> DurableStore {
    let mut store = DurableStore::in_memory();
    let mut pending = Vec::with_capacity(WRITE_BATCH);
    for i in 0..n {
        pending.push(statement(i));
        if pending.len() == WRITE_BATCH {
            store.insert_batch(std::mem::take(&mut pending)).unwrap();
        }
    }
    if !pending.is_empty() {
        store.insert_batch(pending).unwrap();
    }
    store
}

fn reader_query() -> BgpQuery {
    // Selective single-predicate scan: ~BASE/20 rows per execution,
    // enough work to make latency measurable, small enough to sample
    // thousands of times.
    BgpQuery::new().pattern_text("(?s ex:p5 ?o)").unwrap()
}

fn p99_micros(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[(samples.len() * 99) / 100 - 1]
}

/// Samples `READ_SAMPLES` pin-and-query latencies against the store's
/// epoch ring.
fn sample_reads(epochs: &Arc<EpochStore>) -> Vec<f64> {
    let q = reader_query();
    let mut out = Vec::with_capacity(READ_SAMPLES);
    for _ in 0..READ_SAMPLES {
        let start = Instant::now();
        let snap = epochs.pin();
        let rows = q.execute(&*snap);
        out.push(start.elapsed().as_secs_f64() * 1e6);
        assert!(rows.len() >= BASE / 20);
    }
    out
}

/// Sustained ingest that keeps the graph size constant: insert a churn
/// batch, retract it (`remove_batch`: one group commit, one publish),
/// sleep, repeat. Two properties matter:
///
/// * constant size — otherwise a fixed-count read sample races a graph
///   whose scans get slower the longer the sample takes;
/// * paced bursts (~25k triple-ops/s) — the benches run on small/shared
///   machines, so a spin-looping writer would measure CPU timesharing,
///   not lock coupling. Pacing keeps the writer's CPU share small;
///   any residual reader slowdown is the isolation cost under test.
///
/// Returns epochs published.
fn churn_writer(store: &Mutex<DurableStore>, stop: &AtomicBool) -> usize {
    let churn: Vec<Statement> = (0..WRITE_BATCH).map(|k| statement(BASE + k)).collect();
    let mut published = 0usize;
    while !stop.load(Ordering::Relaxed) {
        store.lock().unwrap().insert_batch(churn.clone()).unwrap();
        store.lock().unwrap().remove_batch(&churn).unwrap();
        published += 2;
        thread::sleep(Duration::from_millis(5));
    }
    published
}

/// Times inserting `WRITE_TOTAL` triples in `WRITE_BATCH` groups;
/// returns triples/second.
fn write_throughput(store: &Mutex<DurableStore>, offset: usize) -> f64 {
    let start = Instant::now();
    for chunk in 0..WRITE_TOTAL / WRITE_BATCH {
        let batch: Vec<Statement> = (0..WRITE_BATCH)
            .map(|k| statement(offset + chunk * WRITE_BATCH + k))
            .collect();
        store.lock().unwrap().insert_batch(batch).unwrap();
    }
    WRITE_TOTAL as f64 / start.elapsed().as_secs_f64()
}

fn report() {
    // --- 1. pin cost vs graph size -----------------------------------
    for &n in &[1_000usize, BASE] {
        let store = populated(n);
        let epochs = store.epochs().clone();
        let start = Instant::now();
        let mut last = epochs.pin();
        for _ in 0..100_000 {
            last = epochs.pin();
        }
        println!(
            "[ablation_concurrency] pin at {n} triples: {:.0} ns/pin (epoch {})",
            start.elapsed().as_nanos() as f64 / 100_000.0,
            last.epoch(),
        );
    }

    // --- 2. reader p99: idle vs under sustained ingest ---------------
    let store = Arc::new(Mutex::new(populated(BASE)));
    let epochs = store.lock().unwrap().epochs().clone();
    let idle_p99 = p99_micros(sample_reads(&epochs));

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        thread::spawn(move || churn_writer(&store, &stop))
    };
    let ingest_p99 = p99_micros(sample_reads(&epochs));
    stop.store(true, Ordering::Relaxed);
    let published = writer.join().unwrap();
    println!(
        "[ablation_concurrency] reader p99: idle={idle_p99:.1} us, \
         during ingest={ingest_p99:.1} us ({:.2}x, {published} epochs published)",
        ingest_p99 / idle_p99,
    );

    // --- 3. write throughput: exclusive vs with readers --------------
    let exclusive = {
        let store = Mutex::new(populated(BASE));
        write_throughput(&store, BASE)
    };
    let contended = {
        let store = Arc::new(Mutex::new(populated(BASE)));
        let epochs = store.lock().unwrap().epochs().clone();
        let stop = Arc::new(AtomicBool::new(false));
        // Readers run a steady query load (a point scan every 2 ms per
        // thread) rather than a spin loop — spinning would measure CPU
        // timesharing on small machines. The coupling under test is the
        // lock: in the single-RwLock design each in-flight query held
        // the read guard and stalled the writer for its full duration;
        // here the writer should barely notice.
        let readers: Vec<_> = (0..READER_THREADS)
            .map(|_| {
                let epochs = epochs.clone();
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let q = BgpQuery::new().pattern_text("(ex:s5 ex:p5 ?o)").unwrap();
                    while !stop.load(Ordering::Relaxed) {
                        let snap = epochs.pin();
                        std::hint::black_box(q.execute(&*snap).len());
                        thread::sleep(Duration::from_millis(2));
                    }
                })
            })
            .collect();
        let rate = write_throughput(&store, BASE);
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        rate
    };
    println!(
        "[ablation_concurrency] write throughput: exclusive={exclusive:.0}/s, \
         with {READER_THREADS} readers={contended:.0}/s ({:.1}% of exclusive)",
        contended / exclusive * 100.0,
    );
}

fn bench(c: &mut Criterion) {
    report();

    c.bench_function("epoch_pin_50k", |b| {
        let store = populated(BASE);
        let epochs = store.epochs().clone();
        b.iter(|| std::hint::black_box(epochs.pin().epoch()))
    });

    c.bench_function("pinned_query_under_ingest", |b| {
        let store = Arc::new(Mutex::new(populated(BASE)));
        let epochs = store.lock().unwrap().epochs().clone();
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            thread::spawn(move || churn_writer(&store, &stop))
        };
        let q = reader_query();
        b.iter(|| {
            let snap = epochs.pin();
            std::hint::black_box(q.execute(&*snap).len())
        });
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
