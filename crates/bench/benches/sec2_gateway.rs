//! E16 (§2, HTTP interface): overhead of exposing the rich SDK over HTTP
//! — parse/route/serialize cost and a real TCP round trip, compared
//! against the in-process call the gateway wraps.
//!
//! Paper-predicted shape: the HTTP layer adds protocol-parsing overhead
//! (microseconds) and, over real sockets, kernel round-trip time — small
//! next to remote-service latencies, which is why exposing the SDK this
//! way is viable for "applications written in other languages".

use cogsdk_bench::BENCH_SEED;
use cogsdk_core::gateway::{parse_request, HttpGateway};
use cogsdk_core::RichSdk;
use cogsdk_json::json;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::{Request, SimEnv, SimService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn gateway() -> (SimEnv, Arc<HttpGateway>) {
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = Arc::new(RichSdk::new(&env));
    sdk.register(
        SimService::builder("echo", "demo")
            .latency(LatencyModel::constant_ms(5.0))
            .build(&env),
    );
    (env, Arc::new(HttpGateway::new(sdk)))
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn report_series() {
    let (_env, gw) = gateway();
    let raw = post(
        "/invoke/echo",
        r#"{"operation": "op", "payload": {"x": 1}}"#,
    );

    // In-process vs through-the-text-layer (same SDK call underneath).
    let iterations = 5_000;
    let t0 = std::time::Instant::now();
    for _ in 0..iterations {
        gw.handle_text(&raw);
    }
    let text_layer = t0.elapsed() / iterations;
    println!("[sec2_gateway] handle_text (parse+route+serialize): {text_layer:?}/req");

    // Real TCP round trip.
    let shutdown = Arc::new(AtomicBool::new(false));
    let (addr, handle) = gw.clone().serve("127.0.0.1:0", shutdown.clone()).unwrap();
    let rtts = 200;
    let t0 = std::time::Instant::now();
    for _ in 0..rtts {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 200"));
    }
    let tcp = t0.elapsed() / rtts;
    println!("[sec2_gateway] full TCP round trip (connect+req+resp): {tcp:?}/req");
    shutdown.store(true, Ordering::SeqCst);
    handle.join().unwrap();
    println!(
        "[sec2_gateway] shape: protocol overhead is µs-scale — negligible against \
         the tens-of-ms modeled remote-service latencies it fronts."
    );
}

fn bench(c: &mut Criterion) {
    report_series();
    let (_env, gw) = gateway();
    let raw = post(
        "/invoke/echo",
        r#"{"operation": "op", "payload": {"x": 1}}"#,
    );
    c.bench_function("gateway_handle_text", |b| {
        b.iter(|| gw.handle_text(std::hint::black_box(&raw)))
    });
    c.bench_function("gateway_parse_only", |b| {
        b.iter(|| parse_request(std::hint::black_box(&raw)).unwrap())
    });
    // The same operation without the HTTP layer, for the delta.
    let env = SimEnv::with_seed(BENCH_SEED);
    let sdk = RichSdk::new(&env);
    sdk.register(
        SimService::builder("echo", "demo")
            .latency(LatencyModel::constant_ms(5.0))
            .build(&env),
    );
    let req = Request::new("op", json!({"x": 1}));
    c.bench_function("gateway_baseline_direct_invoke", |b| {
        b.iter(|| sdk.invoke("echo", std::hint::black_box(&req)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = bench
}
criterion_main!(benches);
