//! Randomized oracle suite for the BGP query planner.
//!
//! Generates hundreds of seeded (graph, query) cases and checks the
//! cost-based planner against a *naive reference evaluator* that shares
//! no code with the planner: it walks every statement per pattern and
//! unifies bindings by term equality (a cross-product join), applying
//! `UNION` blocks and `OPTIONAL` groups with the same textbook
//! semantics. Three-way agreement is required on every case:
//!
//! * naive reference == planner (`BgpQuery::execute`)
//! * naive reference == optimizer-bypassed plan (`execute_textual`)
//!
//! Results are compared as *multisets* (bags) of rows — join order must
//! never change what is returned, only how fast. The generator covers
//! 1–5-pattern BGPs, repeated variables, fully-unbound patterns,
//! constants absent from the dictionary (in required patterns and,
//! crucially, local to `OPTIONAL`/`UNION` arms), and offset/limit
//! slices. The whole suite folds into one FNV-1a digest that is
//! asserted byte-identical across two full passes and pinned to a
//! constant, so any semantic drift shows up as a digest change.

use cogsdk_rdf::reason::TriplePattern;
use cogsdk_rdf::{BgpQuery, Graph, Solution, Statement, Term};
use cogsdk_sim::rng::Rng;
use std::collections::BTreeMap;

const CASES: u64 = 240;
const MASTER_SEED: u64 = 0xB6_9055;
const EXPECTED_DIGEST: u64 = 0x0375_866c_bcc0_39c0;

/// One slot of a generated pattern, kept in a planner-independent form.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    Var(String),
    Const(Term),
}

#[derive(Debug, Clone)]
struct Pat {
    s: Slot,
    p: Slot,
    o: Slot,
}

#[derive(Debug, Clone, Default)]
struct Case {
    triples: Vec<Statement>,
    required: Vec<Pat>,
    optionals: Vec<Vec<Pat>>,
    unions: Vec<Vec<Vec<Pat>>>,
    offset: usize,
    limit: Option<usize>,
}

type Row = BTreeMap<String, Term>;

/// Extends `row` with the bindings needed for `pat` to match `st`;
/// `None` on any constant or already-bound-variable mismatch.
fn unify(row: &Row, pat: &Pat, st: &Statement) -> Option<Row> {
    let mut out = row.clone();
    for (slot, val) in [
        (&pat.s, &st.subject),
        (&pat.p, &st.predicate),
        (&pat.o, &st.object),
    ] {
        match slot {
            Slot::Const(c) => {
                if c != val {
                    return None;
                }
            }
            Slot::Var(v) => match out.get(v) {
                Some(bound) if bound != val => return None,
                Some(_) => {}
                None => {
                    out.insert(v.clone(), val.clone());
                }
            },
        }
    }
    Some(out)
}

/// Inner-joins `rows` through every pattern of `group`, statement by
/// statement — quadratic and proud of it.
fn join_group(rows: Vec<Row>, group: &[Pat], triples: &[Statement]) -> Vec<Row> {
    let mut rows = rows;
    for pat in group {
        let mut next = Vec::new();
        for row in &rows {
            for st in triples {
                if let Some(ext) = unify(row, pat, st) {
                    next.push(ext);
                }
            }
        }
        rows = next;
        if rows.is_empty() {
            break;
        }
    }
    rows
}

/// The naive reference evaluator: required patterns in textual order,
/// then union blocks, then optional groups. No indexes, no dictionary —
/// arm-local emptiness falls out of plain term equality.
fn reference_rows(case: &Case) -> Vec<Row> {
    let mut rows = join_group(vec![Row::new()], &case.required, &case.triples);
    for arms in &case.unions {
        let mut next = Vec::new();
        for row in &rows {
            for arm in arms {
                next.extend(join_group(vec![row.clone()], arm, &case.triples));
            }
        }
        rows = next;
    }
    for group in &case.optionals {
        let mut next = Vec::new();
        for row in &rows {
            let extended = join_group(vec![row.clone()], group, &case.triples);
            if extended.is_empty() {
                next.push(row.clone());
            } else {
                next.extend(extended);
            }
        }
        rows = next;
    }
    rows
}

fn slot_text(slot: &Slot) -> String {
    match slot {
        Slot::Var(v) => format!("?{v}"),
        Slot::Const(t) => t.to_string(),
    }
}

fn pattern_of(pat: &Pat) -> TriplePattern {
    let text = format!(
        "({} {} {})",
        slot_text(&pat.s),
        slot_text(&pat.p),
        slot_text(&pat.o)
    );
    TriplePattern::parse(&text).expect("generated pattern parses")
}

fn to_bgp(case: &Case) -> BgpQuery {
    let mut q = BgpQuery::new();
    for pat in &case.required {
        q = q.pattern(pattern_of(pat));
    }
    for arms in &case.unions {
        q = q.union(
            arms.iter()
                .map(|arm| arm.iter().map(pattern_of).collect())
                .collect(),
        );
    }
    for group in &case.optionals {
        q = q.optional(group.iter().map(pattern_of).collect());
    }
    q
}

/// Canonical, order-independent rendering of a result bag: each row as
/// sorted `var=term` pairs, rows sorted, all joined.
fn canon_solutions(rows: &[Solution]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|row| {
            let mut pairs: Vec<String> = row.iter().map(|(v, t)| format!("{v}={t}")).collect();
            pairs.sort();
            pairs.join("&")
        })
        .collect();
    out.sort();
    out
}

fn canon_reference(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|row| {
            let pairs: Vec<String> = row.iter().map(|(v, t)| format!("{v}={t}")).collect();
            pairs.join("&")
        })
        .collect();
    out.sort();
    out
}

fn fnv1a(digest: u64, bytes: &[u8]) -> u64 {
    let mut h = digest;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// --- generation -----------------------------------------------------------

fn random_term(rng: &mut Rng) -> Term {
    match rng.below(10) {
        0..=4 => Term::iri(format!("ex:s{}", rng.below(8))),
        5..=7 => Term::iri(format!("ex:o{}", rng.below(5))),
        8 => Term::integer(rng.below(4) as i64),
        _ => Term::iri(format!("ex:ghost{}", rng.below(3))),
    }
}

fn random_slot(rng: &mut Rng, var_chance: f64) -> Slot {
    if rng.chance(var_chance) {
        let name = ["a", "b", "c", "d", "e", "f"][rng.below(6) as usize];
        Slot::Var(name.to_string())
    } else {
        Slot::Const(random_term(rng))
    }
}

/// Mostly derives patterns from triples actually in the graph (slots
/// replaced by variables with high probability) so joins have matches;
/// sometimes generates a fully random — likely cold — pattern.
fn random_pat(rng: &mut Rng, triples: &[Statement]) -> Pat {
    if !triples.is_empty() && rng.chance(0.85) {
        let st = rng.choose(triples);
        let varify = |rng: &mut Rng, term: &Term, p: f64| {
            if rng.chance(p) {
                let name = ["a", "b", "c", "d", "e", "f"][rng.below(6) as usize];
                Slot::Var(name.to_string())
            } else {
                Slot::Const(term.clone())
            }
        };
        Pat {
            s: varify(rng, &st.subject, 0.65),
            p: varify(rng, &st.predicate, 0.25),
            o: varify(rng, &st.object, 0.55),
        }
    } else {
        Pat {
            s: random_slot(rng, 0.6),
            p: if rng.chance(0.75) {
                Slot::Const(Term::iri(format!("ex:p{}", rng.below(4))))
            } else {
                random_slot(rng, 0.5)
            },
            o: random_slot(rng, 0.55),
        }
    }
}

fn random_case(rng: &mut Rng, case_idx: u64) -> Case {
    let mut case = Case::default();
    let n_triples = 15 + rng.below(50);
    for _ in 0..n_triples {
        let st = Statement::new(
            Term::iri(format!("ex:s{}", rng.below(8))),
            Term::iri(format!("ex:p{}", rng.below(4))),
            match rng.below(4) {
                0 => Term::iri(format!("ex:s{}", rng.below(8))),
                1 => Term::integer(rng.below(4) as i64),
                _ => Term::iri(format!("ex:o{}", rng.below(5))),
            },
        );
        case.triples.push(st);
    }
    // Ghost terms above never enter the graph, so some generated
    // constants are guaranteed absent from the dictionary.
    case.triples.sort();
    case.triples.dedup();

    let n_required = 1 + rng.below(5) as usize;
    for _ in 0..n_required {
        case.required.push(random_pat(rng, &case.triples));
    }
    if case_idx.is_multiple_of(10) {
        // Force the unbound-everything pattern into every tenth case.
        case.required.push(Pat {
            s: Slot::Var("x".to_string()),
            p: Slot::Var("y".to_string()),
            o: Slot::Var("z".to_string()),
        });
    }
    if rng.chance(0.4) {
        let arm_count = 2 + rng.below(2) as usize;
        let arms: Vec<Vec<Pat>> = (0..arm_count)
            .map(|_| {
                (0..1 + rng.below(2))
                    .map(|_| random_pat(rng, &case.triples))
                    .collect()
            })
            .collect();
        case.unions.push(arms);
    }
    if rng.chance(0.4) {
        let group: Vec<Pat> = (0..1 + rng.below(2))
            .map(|_| random_pat(rng, &case.triples))
            .collect();
        case.optionals.push(group);
    }
    case.offset = rng.below(4) as usize;
    if rng.chance(0.5) {
        case.limit = Some(rng.below(6) as usize);
    }
    case
}

// --- the suite ------------------------------------------------------------

/// Runs every case once, asserting agreement, and folds the canonical
/// results into a digest.
fn run_suite() -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut nonempty = 0usize;
    for case_idx in 0..CASES {
        let mut rng = Rng::new(MASTER_SEED ^ (case_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let case = random_case(&mut rng, case_idx);
        let mut graph = Graph::new();
        for st in &case.triples {
            graph.insert(st.clone());
        }

        let expected = canon_reference(&reference_rows(&case));
        let bgp = to_bgp(&case);
        let planned = canon_solutions(&bgp.execute(&graph));
        let textual = canon_solutions(&bgp.execute_textual(&graph));

        assert_eq!(
            planned, expected,
            "case {case_idx}: planner disagrees with naive reference\nquery: {case:?}"
        );
        assert_eq!(
            textual, expected,
            "case {case_idx}: textual-order plan disagrees with naive reference"
        );

        // The offset/limit slice must be an exact window of some full
        // evaluation: right length, and a sub-multiset of the full bag.
        let sliced = bgp
            .clone()
            .offset(case.offset)
            .limit(case.limit.unwrap_or(usize::MAX));
        let page = canon_solutions(&sliced.execute(&graph));
        let want_len = expected
            .len()
            .saturating_sub(case.offset)
            .min(case.limit.unwrap_or(usize::MAX));
        assert_eq!(
            page.len(),
            want_len,
            "case {case_idx}: slice length wrong (offset={} limit={:?} total={})",
            case.offset,
            case.limit,
            expected.len()
        );
        let mut pool = expected.clone();
        for row in &page {
            let at = pool
                .iter()
                .position(|r| r == row)
                .unwrap_or_else(|| panic!("case {case_idx}: sliced row not in full bag"));
            pool.remove(at);
        }

        if !expected.is_empty() {
            nonempty += 1;
        }
        for row in &expected {
            digest = fnv1a(digest, row.as_bytes());
            digest = fnv1a(digest, b";");
        }
        digest = fnv1a(digest, b"|case|");
    }
    // The generator must actually exercise the engine, not produce a
    // wall of empty results.
    assert!(
        nonempty >= CASES as usize / 4,
        "only {nonempty}/{CASES} cases produced rows — generator too cold"
    );
    digest
}

#[test]
fn planner_matches_naive_reference_on_seeded_cases() {
    let first = run_suite();
    let second = run_suite();
    assert_eq!(first, second, "suite digest must be byte-deterministic");
    assert_eq!(
        first, EXPECTED_DIGEST,
        "suite digest drifted — semantics changed (update EXPECTED_DIGEST \
         only after auditing the diff): got {first:#018x}"
    );
}
