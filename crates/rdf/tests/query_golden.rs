//! Golden-plan tests: pin the exact `explain()` text the planner
//! produces for canonical BGP shapes (star, chain, triangle) over a
//! fixed dataset. A change in join order, operator choice, index
//! routing, or estimate arithmetic shows up as a readable text diff.

use cogsdk_rdf::{BgpQuery, Graph, Statement, Term};

/// Fixed dataset: 50 typed items spread over 5 categories, category
/// sizes, one rare flag, and a small `knows` triangle.
fn dataset() -> Graph {
    let mut g = Graph::new();
    for i in 0..50 {
        let item = Term::iri(format!("ex:item_{i}"));
        g.insert(Statement::new(
            item.clone(),
            Term::iri("rdf:type"),
            Term::iri("ex:Item"),
        ));
        g.insert(Statement::new(
            item.clone(),
            Term::iri("ex:in"),
            Term::iri(format!("ex:cat_{}", i % 5)),
        ));
    }
    for j in 0..5 {
        g.insert(Statement::new(
            Term::iri(format!("ex:cat_{j}")),
            Term::iri("ex:size"),
            Term::integer(j),
        ));
    }
    g.insert(Statement::new(
        Term::iri("ex:item_7"),
        Term::iri("ex:flag"),
        Term::string("rare"),
    ));
    for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4)] {
        g.insert(Statement::new(
            Term::iri(format!("ex:item_{a}")),
            Term::iri("ex:knows"),
            Term::iri(format!("ex:item_{b}")),
        ));
    }
    g
}

fn explain(q: &BgpQuery) -> String {
    q.plan(&dataset()).explain().to_string()
}

#[test]
fn star_plan_orders_by_selectivity_and_merges_on_the_hub() {
    // Star around ?x; textual order is worst-first. The planner must
    // start from the est=1 flag pattern, not the est=50 type scan —
    // and because every POS scan here is sorted by the hub variable,
    // both remaining joins become merge joins.
    let q = BgpQuery::new()
        .pattern_text("(?x rdf:type ex:Item)")
        .unwrap()
        .pattern_text("(?x ex:in ex:cat_2)")
        .unwrap()
        .pattern_text("(?x ex:flag \"rare\")")
        .unwrap();
    assert_eq!(
        explain(&q),
        "bgp 3 patterns (2 merge, 0 loop)\n\
         scan POS (?x <ex:flag> \"rare\") est=1 sorted=?x\n\
         merge[?x] POS (?x <ex:in> <ex:cat_2>) est=10\n\
         merge[?x] POS (?x <rdf:type> <ex:Item>) est=50\n\
         slice offset=0 limit=none\n\
         project *"
    );
}

#[test]
fn chain_plan_walks_from_the_selective_end() {
    // The size scan (5 rows) runs first even though it is textually
    // second; the 50-row membership scan probes it per row.
    let q = BgpQuery::new()
        .pattern_text("(?x ex:in ?c)")
        .unwrap()
        .pattern_text("(?c ex:size ?s)")
        .unwrap();
    assert_eq!(
        explain(&q),
        "bgp 2 patterns (0 merge, 1 loop)\n\
         scan POS (?c <ex:size> ?s) est=5 sorted=?s\n\
         loop POS (?x <ex:in> ?c) est=50\n\
         slice offset=0 limit=none\n\
         project *"
    );
}

#[test]
fn triangle_plan_stays_connected_via_loop_joins() {
    // Every scan is sorted by its *object* variable, which is never the
    // join variable already in sorted order — so the triangle closes
    // with index nested loops, never a cartesian product.
    let q = BgpQuery::new()
        .pattern_text("(?a ex:knows ?b)")
        .unwrap()
        .pattern_text("(?b ex:knows ?c)")
        .unwrap()
        .pattern_text("(?a ex:knows ?c)")
        .unwrap()
        .select(["a", "b", "c"]);
    assert_eq!(
        explain(&q),
        "bgp 3 patterns (0 merge, 2 loop)\n\
         scan POS (?a <ex:knows> ?b) est=4 sorted=?b\n\
         loop POS (?b <ex:knows> ?c) est=4\n\
         loop POS (?a <ex:knows> ?c) est=4\n\
         slice offset=0 limit=none\n\
         project ?a ?b ?c"
    );
}

#[test]
fn union_optional_and_slice_render_in_evaluation_order() {
    let q = BgpQuery::new()
        .pattern_text("(?x rdf:type ex:Item)")
        .unwrap()
        .union(vec![
            vec![cogsdk_rdf::reason::TriplePattern::parse("(?x ex:flag ?f)").unwrap()],
            vec![cogsdk_rdf::reason::TriplePattern::parse("(?x ex:never ?f)").unwrap()],
        ])
        .optional(vec![cogsdk_rdf::reason::TriplePattern::parse(
            "(?x ex:in ?c)",
        )
        .unwrap()])
        .offset(2)
        .limit(10)
        .select(["x", "f"]);
    assert_eq!(
        explain(&q),
        "bgp 1 patterns (0 merge, 0 loop)\n\
         scan POS (?x <rdf:type> <ex:Item>) est=50 sorted=?x\n\
         union { (?x <ex:flag> ?f) } | { no-match }\n\
         optional (?x <ex:in> ?c)\n\
         slice offset=2 limit=10\n\
         project ?x ?f"
    );
}

#[test]
fn unknown_required_constant_renders_an_empty_plan() {
    let q = BgpQuery::new().pattern_text("(?x ex:never ?y)").unwrap();
    assert_eq!(
        explain(&q),
        "bgp 1 patterns (0 merge, 0 loop)\n\
         empty (a required pattern names a term absent from the dictionary)\n\
         slice offset=0 limit=none\n\
         project *"
    );
}

#[test]
fn triangle_results_match_the_plan() {
    // The golden text is only trustworthy if the plan also runs right:
    // the knows-triangle has exactly one closed triple (0 → 1 → 2).
    let g = dataset();
    let q = BgpQuery::new()
        .pattern_text("(?a ex:knows ?b)")
        .unwrap()
        .pattern_text("(?b ex:knows ?c)")
        .unwrap()
        .pattern_text("(?a ex:knows ?c)")
        .unwrap();
    let rows = q.execute(&g);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0]["a"], Term::iri("ex:item_0"));
    assert_eq!(rows[0]["b"], Term::iri("ex:item_1"));
    assert_eq!(rows[0]["c"], Term::iri("ex:item_2"));
}
