//! Crash-recovery property suite.
//!
//! Drives a [`DurableStore`] over the fault-injecting [`SimFs`] through
//! hundreds of seeded scenarios. Each scenario generates a random op
//! sequence (inserts, removes, ruleset enables, snapshots), picks a
//! random crash point measured in filesystem operations — so crashes
//! land inside WAL appends, fsyncs, snapshot temp writes, renames, and
//! WAL truncation deletes — tears the unsynced bytes at a seeded
//! offset, recovers, and asserts the recovered store is *exactly* the
//! durable prefix:
//!
//! * every operation that returned `Ok` before the crash is present
//!   (no silent loss);
//! * at most the single in-flight operation beyond that may appear
//!   (its bytes can land before the crash) — nothing else (no phantom
//!   facts);
//! * the recovered closure equals a from-scratch materialization of the
//!   recovered base under the recovered ruleset config — derived state
//!   is re-derived, never read from disk.
//!
//! The whole suite is deterministic from one master seed, down to the
//! bytes left on the simulated disk at each crash (asserted by running
//! it twice and comparing digests, which include a hash of every file).

use cogsdk_rdf::{
    DurableOptions, DurableStore, Graph, IncrementalMaterializer, Rule, Statement, Term,
};
use cogsdk_sim::fs::{SimFs, Vfs};
use cogsdk_sim::rng::Rng;
use std::collections::BTreeSet;
use std::sync::Arc;

const SCENARIOS: u64 = 240;
const MASTER_SEED: u64 = 0xC0FFEE;

#[derive(Debug, Clone)]
enum Op {
    Insert(Statement),
    Remove(Statement),
    EnableRdfs,
    AddTransitive,
    AddRules,
    Snapshot,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ShadowConfig {
    rdfs: bool,
    transitive: bool,
    rules: bool,
}

/// KB state after a prefix of ops: the stated base plus the standing
/// ruleset flags. Derived facts are a function of these, so the shadow
/// never tracks them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Shadow {
    base: BTreeSet<Statement>,
    config: ShadowConfig,
}

fn anc() -> Term {
    Term::iri("ex:anc")
}

fn rule() -> Rule {
    Rule::parse("[(?a ex:p0 ?b) -> (?b ex:p1 ?a)]").expect("fixed rule parses")
}

fn random_statement(rng: &mut Rng, inserted: &[Statement]) -> Statement {
    let subject = Term::iri(format!("ex:s{}", rng.below(6)));
    let predicate = match rng.below(5) {
        0 => Term::iri("ex:p0"),
        1 => Term::iri("ex:p1"),
        2 => Term::iri("ex:anc"),
        3 => Term::iri("rdfs:subClassOf"),
        _ => Term::iri("rdf:type"),
    };
    let object = match rng.below(8) {
        0 => Term::integer(rng.below(3) as i64),
        n => Term::iri(format!("ex:s{}", n % 6)),
    };
    // Bias removes toward facts that are actually present.
    if !inserted.is_empty() && rng.chance(0.5) {
        return inserted[rng.below(inserted.len() as u64) as usize].clone();
    }
    Statement::new(subject, predicate, object)
}

fn generate_ops(rng: &mut Rng) -> Vec<Op> {
    let count = 8 + rng.below(13); // 8..=20 ops
    let mut ops = Vec::new();
    let mut inserted: Vec<Statement> = Vec::new();
    for _ in 0..count {
        let roll = rng.below(100);
        let op = if roll < 55 {
            let st = random_statement(rng, &[]);
            inserted.push(st.clone());
            Op::Insert(st)
        } else if roll < 70 {
            Op::Remove(random_statement(rng, &inserted))
        } else if roll < 78 {
            Op::EnableRdfs
        } else if roll < 84 {
            Op::AddTransitive
        } else if roll < 90 {
            Op::AddRules
        } else {
            Op::Snapshot
        };
        ops.push(op);
    }
    ops
}

/// Applies one op to the shadow model.
///
/// `Remove` is a plain set removal: the live store only mutates its
/// *base* when the statement is stated there (removing a derived-only
/// fact rederives it, leaving the state unchanged), which coincides
/// with set semantics on the stated base.
fn apply_shadow(shadow: &mut Shadow, op: &Op) {
    match op {
        Op::Insert(st) => {
            shadow.base.insert(st.clone());
        }
        Op::Remove(st) => {
            shadow.base.remove(st);
        }
        Op::EnableRdfs => shadow.config.rdfs = true,
        Op::AddTransitive => shadow.config.transitive = true,
        Op::AddRules => shadow.config.rules = true,
        Op::Snapshot => {}
    }
}

/// Applies one op to the live store; `Ok` means it is durable.
fn apply_store(store: &mut DurableStore, op: &Op) -> Result<(), cogsdk_rdf::DurableError> {
    match op {
        Op::Insert(st) => store.insert(st.clone()).map(|_| ()),
        Op::Remove(st) => store.remove(st).map(|_| ()),
        Op::EnableRdfs => store.enable_rdfs().map(|_| ()),
        Op::AddTransitive => store.add_transitive(vec![anc()]).map(|_| ()),
        Op::AddRules => store.add_rules(vec![rule()]).map(|_| ()),
        Op::Snapshot => store.snapshot().map(|_| ()),
    }
}

fn configure(m: &mut IncrementalMaterializer, config: &ShadowConfig) {
    if config.rdfs {
        m.enable_rdfs();
    }
    if config.transitive {
        m.add_transitive(vec![anc()]);
    }
    if config.rules {
        m.add_rules(vec![rule()]);
    }
}

fn shadow_config_of(store: &DurableStore) -> ShadowConfig {
    let c = store.config();
    ShadowConfig {
        rdfs: c.rdfs,
        transitive: !c.transitive.is_empty(),
        rules: !c.rules.is_empty(),
    }
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Hash of every file name + content on the simulated disk.
fn disk_digest(fs: &SimFs) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for name in fs.list().expect("list after crash") {
        fnv1a(&mut digest, name.as_bytes());
        fnv1a(&mut digest, &fs.read(&name).expect("read after crash"));
    }
    digest
}

/// Everything one scenario observed; compared across runs for
/// determinism (wall-clock recovery duration deliberately excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScenarioDigest {
    crash_at: u64,
    ok_ops: usize,
    attempted_ops: usize,
    matched_state: usize,
    base_len: usize,
    full_len: usize,
    replayed_records: u64,
    torn_tails: u64,
    disk: u64,
}

fn options() -> DurableOptions {
    // Small segments so rotation happens inside ordinary scenarios.
    DurableOptions {
        segment_max_bytes: 256,
    }
}

fn run_scenario(seed: u64) -> ScenarioDigest {
    let mut rng = Rng::new(seed);
    let ops = generate_ops(&mut rng);

    // Shadow states after each op prefix.
    let mut states = Vec::with_capacity(ops.len() + 1);
    states.push(Shadow::default());
    for op in &ops {
        let mut next = states.last().expect("seeded").clone();
        apply_shadow(&mut next, op);
        states.push(next);
    }

    // Dry run without faults to learn the total fs-op budget.
    let total_fs_ops = {
        let fs = Arc::new(SimFs::new(seed));
        let mut store =
            DurableStore::open(fs.clone() as Arc<dyn Vfs>, options()).expect("dry open");
        for op in &ops {
            apply_store(&mut store, op).expect("dry run has no faults");
        }
        fs.op_count()
    };

    // Crash run: same seed, so it behaves identically up to the armed
    // crash point. `crash_at == total_fs_ops` exercises the no-crash
    // path end to end.
    let crash_at = rng.below(total_fs_ops + 1);
    let fs = Arc::new(SimFs::new(seed));
    fs.fail_after_ops(crash_at);
    let mut ok_ops = 0usize;
    let mut attempted_ops = 0usize;
    match DurableStore::open(fs.clone() as Arc<dyn Vfs>, options()) {
        Ok(mut store) => {
            for op in &ops {
                attempted_ops += 1;
                match apply_store(&mut store, op) {
                    Ok(()) => ok_ops += 1,
                    Err(e) => {
                        assert!(
                            matches!(e, cogsdk_rdf::DurableError::Io(_)),
                            "a crash mid-run must surface as Io, got: {e}"
                        );
                        break;
                    }
                }
            }
        }
        Err(e) => {
            assert!(
                matches!(e, cogsdk_rdf::DurableError::Io(_)),
                "a crash during open must surface as Io, got: {e}"
            );
        }
    }

    // Power loss: unsynced tails torn at seeded offsets, then remount.
    fs.crash();
    let disk = disk_digest(&fs);

    let mut recovered =
        DurableStore::open(fs.clone() as Arc<dyn Vfs>, options()).expect("recovery must succeed");
    let stats = recovered.recovery_stats().expect("durable store");

    // Prefix oracle: the recovered base must equal the shadow state
    // after some k with ok_ops <= k <= attempted_ops — every durable op
    // present, at most the in-flight one beyond (its group commit may
    // have fully hit the disk before the crash), nothing else.
    let recovered_base: BTreeSet<Statement> = recovered.base().iter().collect();
    let recovered_config = shadow_config_of(&recovered);
    let matched_state = (ok_ops..=attempted_ops)
        .find(|&k| states[k].base == recovered_base && states[k].config == recovered_config)
        .unwrap_or_else(|| {
            panic!(
                "seed {seed}: recovered state matches no durable prefix \
                 (ok={ok_ops}, attempted={attempted_ops}, crash_at={crash_at});\n\
                 recovered base: {recovered_base:?}\nexpected one of: {:?}",
                &states[ok_ops..=attempted_ops]
            )
        });

    // Closure oracle: recovered full view == from-scratch
    // materialization of the recovered base under the recovered config.
    recovered.materialize();
    let mut scratch_graph = Graph::new();
    for st in &recovered_base {
        scratch_graph.insert(st.clone());
    }
    let mut scratch = IncrementalMaterializer::from_graph(scratch_graph);
    configure(&mut scratch, &recovered_config);
    scratch.materialize();
    assert_eq!(
        recovered.full(),
        scratch.full(),
        "seed {seed}: recovered closure diverges from from-scratch materialization"
    );

    ScenarioDigest {
        crash_at,
        ok_ops,
        attempted_ops,
        matched_state,
        base_len: recovered_base.len(),
        full_len: recovered.len(),
        replayed_records: stats.replayed_records,
        torn_tails: stats.torn_tails,
        disk,
    }
}

fn run_suite(master_seed: u64) -> Vec<ScenarioDigest> {
    let mut seeder = Rng::new(master_seed);
    (0..SCENARIOS)
        .map(|_| run_scenario(seeder.next_u64()))
        .collect()
}

#[test]
fn recovery_equals_durable_prefix_across_seeded_crash_points() {
    let digests = run_suite(MASTER_SEED);
    assert!(digests.len() >= 200, "acceptance floor: 200 crash points");
    let torn: u64 = digests.iter().map(|d| d.torn_tails).sum();
    assert!(torn > 0, "the suite must exercise torn tail records");
    let replayed: u64 = digests.iter().map(|d| d.replayed_records).sum();
    assert!(replayed > 0, "the suite must exercise WAL replay");
    let mid_run_crashes = digests
        .iter()
        .filter(|d| d.ok_ops < d.attempted_ops)
        .count();
    assert!(
        mid_run_crashes > SCENARIOS as usize / 4,
        "most scenarios should crash mid-run, got {mid_run_crashes}"
    );
    let in_flight_survivals = digests
        .iter()
        .filter(|d| d.matched_state > d.ok_ops)
        .count();
    assert!(
        in_flight_survivals > 0,
        "some in-flight ops should survive (bytes landed before the crash)"
    );
}

#[test]
fn suite_is_byte_deterministic_under_a_fixed_seed() {
    assert_eq!(run_suite(MASTER_SEED), run_suite(MASTER_SEED));
}

#[test]
fn mid_log_corruption_is_a_hard_recovery_error() {
    let fs = Arc::new(SimFs::new(99));
    let mut store = DurableStore::open(fs.clone() as Arc<dyn Vfs>, options()).unwrap();
    for i in 0..4 {
        store
            .insert(Statement::new(
                Term::iri(format!("ex:s{i}")),
                Term::iri("ex:p0"),
                Term::iri("ex:o"),
            ))
            .unwrap();
    }
    drop(store);
    // Flip a durable (fsynced) bit early in the first WAL segment: this
    // is media corruption with valid data after it, not a torn append.
    fs.flip_bit("wal-00000000.log", 10, 2);
    let err = DurableStore::open(fs as Arc<dyn Vfs>, options()).unwrap_err();
    assert!(
        matches!(err, cogsdk_rdf::DurableError::Corrupt(_)),
        "got: {err}"
    );
}

#[test]
fn enospc_fails_the_mutation_without_losing_state() {
    let fs = Arc::new(SimFs::new(17));
    let mut store = DurableStore::open(fs.clone() as Arc<dyn Vfs>, options()).unwrap();
    store
        .insert(Statement::new(
            Term::iri("ex:a"),
            Term::iri("ex:p0"),
            Term::iri("ex:b"),
        ))
        .unwrap();
    fs.set_space_limit(Some(0));
    let err = store
        .insert(Statement::new(
            Term::iri("ex:c"),
            Term::iri("ex:p0"),
            Term::iri("ex:d"),
        ))
        .unwrap_err();
    assert!(
        matches!(
            err,
            cogsdk_rdf::DurableError::Io(cogsdk_sim::fs::FsError::NoSpace)
        ),
        "got: {err}"
    );
    assert_eq!(store.len(), 1, "failed mutation must not apply in memory");
    fs.set_space_limit(None);
    store
        .insert(Statement::new(
            Term::iri("ex:c"),
            Term::iri("ex:p0"),
            Term::iri("ex:d"),
        ))
        .unwrap();
    drop(store);
    let recovered = DurableStore::open(fs as Arc<dyn Vfs>, options()).unwrap();
    assert_eq!(recovered.len(), 2);
}
