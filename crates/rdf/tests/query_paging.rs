//! Paging stability: offset/limit pages drawn from one snapshot must be
//! stable and duplicate-free even while a writer keeps ingesting into
//! the live graph. The contract is that a pager clones the graph once
//! (cheap: the dictionary is shared, the indexes are persistent-ish
//! BTree copies) and walks every page against that snapshot.

use cogsdk_rdf::{BgpQuery, DurableStore, Graph, Statement, Term};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, RwLock};
use std::thread;

fn item(i: usize) -> Statement {
    Statement::new(
        Term::iri(format!("ex:item_{i}")),
        Term::iri("rdf:type"),
        Term::iri("ex:Item"),
    )
}

#[test]
fn pages_from_one_snapshot_are_stable_and_duplicate_free_under_ingest() {
    const SEEDED: usize = 500;
    const INGESTED: usize = 2000;
    const PAGE: usize = 37; // deliberately not a divisor of 500

    let live = Arc::new(RwLock::new(Graph::new()));
    {
        let mut g = live.write().unwrap();
        for i in 0..SEEDED {
            g.insert(item(i));
        }
    }

    // Writer: keeps ingesting new items while the reader pages.
    let writer_graph = Arc::clone(&live);
    let writer = thread::spawn(move || {
        for i in SEEDED..SEEDED + INGESTED {
            writer_graph.write().unwrap().insert(item(i));
        }
    });

    // Reader: snapshot once, then page to exhaustion against the
    // snapshot. The plan holds ids from the snapshot's dictionary, and
    // the snapshot never changes, so pages tile the result exactly.
    let snapshot: Graph = live.read().unwrap().clone();
    let q = BgpQuery::new()
        .pattern_text("(?x rdf:type ex:Item)")
        .unwrap();
    let full = q.execute(&snapshot);
    // The snapshot races with the writer: it holds the seed set plus
    // whatever the writer landed first. Whatever it holds is the fixed
    // universe every page must tile.
    let total = full.len();
    assert!(
        (SEEDED..=SEEDED + INGESTED).contains(&total),
        "snapshot size out of range: {total}"
    );

    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut paged = 0usize;
    let mut offset = 0usize;
    loop {
        let page = q.clone().offset(offset).limit(PAGE).execute(&snapshot);
        if page.is_empty() {
            break;
        }
        assert!(page.len() <= PAGE);
        for row in &page {
            let key = row["x"].to_string();
            assert!(
                seen.insert(key),
                "duplicate row across pages at offset {offset}"
            );
        }
        paged += page.len();
        offset += PAGE;
        // Every page except the last must be exactly full.
        if page.len() < PAGE {
            assert_eq!(paged, total, "short page must be the final page");
        }
    }
    writer.join().unwrap();

    // Pages tile the snapshot's full result: same count, same rows.
    assert_eq!(paged, total);
    let full_keys: BTreeSet<String> = full.iter().map(|row| row["x"].to_string()).collect();
    assert_eq!(seen, full_keys);

    // The live graph kept growing the whole time; a fresh query sees
    // everything, proving the pager's stability came from the snapshot,
    // not from the writer being idle.
    assert_eq!(q.execute(&*live.read().unwrap()).len(), SEEDED + INGESTED);

    // And the two graphs still share one dictionary, so a plan built on
    // the snapshot can execute against the live graph (it just sees the
    // larger bag) — the documented snapshot-compatibility contract.
    let plan = q.plan(&snapshot);
    assert_eq!(
        plan.execute(&*live.read().unwrap()).len(),
        SEEDED + INGESTED
    );
}

/// The epoch-store variant of the same contract: a pinned
/// [`EpochSnapshot`](cogsdk_rdf::EpochSnapshot) replaces the full graph
/// clone. Pinning is one `Arc` bump — no copy of the indexes — and the
/// pinned epoch stays queryable for as long as the pager holds it, even
/// after the writer has published hundreds of later epochs.
#[test]
fn pages_from_one_pinned_epoch_are_stable_under_epoch_publishing() {
    const SEEDED: usize = 400;
    const INGESTED: usize = 600;
    const PAGE: usize = 41;

    let store = Arc::new(Mutex::new(DurableStore::in_memory()));
    {
        let mut s = store.lock().unwrap();
        for i in 0..SEEDED {
            s.insert(item(i)).unwrap();
        }
    }
    // Pin before the writer starts: the epoch's universe is exactly the
    // seed set, and nothing the writer does can change it.
    let snapshot = store.lock().unwrap().epochs().pin();
    assert_eq!(snapshot.len(), SEEDED);

    let writer_store = Arc::clone(&store);
    let writer = thread::spawn(move || {
        for i in SEEDED..SEEDED + INGESTED {
            writer_store.lock().unwrap().insert(item(i)).unwrap();
        }
    });

    let q = BgpQuery::new()
        .pattern_text("(?x rdf:type ex:Item)")
        .unwrap();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut offset = 0usize;
    loop {
        // Queries run on the pinned snapshot without touching the store
        // lock — the writer never blocks this loop.
        let page = q.clone().offset(offset).limit(PAGE).execute(&*snapshot);
        if page.is_empty() {
            break;
        }
        for row in &page {
            assert!(
                seen.insert(row["x"].to_string()),
                "duplicate row across pages at offset {offset}"
            );
        }
        offset += PAGE;
    }
    writer.join().unwrap();

    // The pinned universe never grew: pages tile exactly the seed set.
    assert_eq!(seen.len(), SEEDED);
    let expected: BTreeSet<String> = (0..SEEDED).map(|i| format!("<ex:item_{i}>")).collect();
    assert_eq!(seen, expected);

    // A fresh pin sees every published epoch's work.
    let fresh = store.lock().unwrap().epochs().pin();
    assert!(fresh.epoch() > snapshot.epoch());
    assert_eq!(q.execute(&*fresh).len(), SEEDED + INGESTED);
}
