//! Cost-based planning and execution for basic graph patterns (BGPs).
//!
//! The SPARQL engine the paper leans on (§3, the Jena query engine behind
//! the personalized knowledge base) evaluates conjunctive queries — sets
//! of triple patterns joined on shared variables. This module turns such a
//! set into an executable plan instead of evaluating patterns in textual
//! order:
//!
//! 1. **Selectivity estimation.** Each pattern's cardinality is read off
//!    the SPO/POS/OSP indexes with [`Graph::count_ids_capped`](crate::Graph::count_ids_capped): constants
//!    bound, variables wild, counts saturating at a fixed cap (4096) so
//!    planning stays cheap on large graphs. No samples, no histograms —
//!    the indexes *are* the statistics.
//! 2. **Greedy join ordering.** The most selective pattern runs first;
//!    every subsequent choice prefers patterns connected to the already
//!    bound variables (avoiding cartesian products) and, among those, the
//!    smallest estimate.
//! 3. **Join operators.** When the next pattern's index scan is sorted by
//!    a variable the current rows are already sorted by, the planner emits
//!    a **merge join** over the two sorted streams (the RDF-3X trick: the
//!    BTreeSet indexes hand out sorted runs for free). Otherwise it falls
//!    back to an **index nested-loop join**, probing the best index per
//!    row.
//!
//! On top of the required patterns the plan supports `OPTIONAL` groups
//! (left-outer joins), `UNION` blocks (bag union of arm expansions),
//! variable projection, and offset/limit paging. [`ExecPlan::explain`]
//! renders the chosen strategy as stable text so tests (and the gateway)
//! can pin join orders.
//!
//! Evaluation order is: required patterns (planner order), then `UNION`
//! blocks (order added), then `OPTIONAL` groups (order added), then the
//! offset/limit slice, then projection. Results are bags — duplicates are
//! preserved, matching SPARQL multiset semantics.
//!
//! # Examples
//!
//! ```
//! use cogsdk_rdf::{BgpQuery, Graph, Statement, Term};
//!
//! let mut g = Graph::new();
//! g.insert(Statement::new(Term::iri("ex:us"), Term::iri("ex:gdp"), Term::double(21000.0)));
//! g.insert(Statement::new(Term::iri("ex:us"), Term::iri("ex:name"), Term::string("US")));
//!
//! let q = BgpQuery::new()
//!     .pattern_text("(?c <ex:gdp> ?g)").unwrap()
//!     .pattern_text("(?c <ex:name> ?n)").unwrap()
//!     .select(["n"]);
//! let rows = q.execute(&g);
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0]["n"], Term::string("US"));
//! ```

use crate::dict::{IdTriple, TermDict, TermId};
use crate::graph::QueryView;
use crate::query::Solution;
use crate::reason::{var_index, IdPattern, IdPatternTerm, PatternTerm, TriplePattern};
use crate::RdfError;
use std::collections::HashSet;
use std::time::Instant;

/// Cardinality estimates saturate here. Ordering patterns only needs
/// estimates good enough to rank them, and counting a BTree range is
/// `O(matches)` — without a cap, *planning* a query over a large graph
/// would cost as much as scanning it. `explain()` renders the saturated
/// value, so `est=4096` reads as "at least 4096".
const ESTIMATE_CAP: usize = 4096;

/// A basic graph pattern query: required patterns joined on shared
/// variables, plus optional groups, union blocks, projection and paging.
///
/// Build one with the fluent methods, then either [`execute`](Self::execute)
/// it directly or [`plan`](Self::plan) it first to inspect the chosen join
/// strategy via [`ExecPlan::explain`].
#[derive(Debug, Clone, Default)]
pub struct BgpQuery {
    patterns: Vec<TriplePattern>,
    unions: Vec<Vec<Vec<TriplePattern>>>,
    optionals: Vec<Vec<TriplePattern>>,
    select: Vec<String>,
    offset: usize,
    limit: Option<usize>,
}

impl BgpQuery {
    /// Creates an empty query.
    pub fn new() -> BgpQuery {
        BgpQuery::default()
    }

    /// Adds a required triple pattern.
    #[must_use]
    pub fn pattern(mut self, pattern: TriplePattern) -> BgpQuery {
        self.patterns.push(pattern);
        self
    }

    /// Adds a required pattern from `(term term term)` text — the same
    /// grammar as [`TriplePattern::parse`].
    ///
    /// # Errors
    ///
    /// Returns [`RdfError`] on malformed patterns.
    pub fn pattern_text(self, text: &str) -> Result<BgpQuery, RdfError> {
        Ok(self.pattern(TriplePattern::parse(text)?))
    }

    /// Adds an `OPTIONAL` group: a left-outer join against the patterns in
    /// `group`. Rows that match extend; rows that don't pass through with
    /// the group's variables unbound.
    #[must_use]
    pub fn optional(mut self, group: Vec<TriplePattern>) -> BgpQuery {
        self.optionals.push(group);
        self
    }

    /// Adds a `UNION` block: each input row is extended through every arm
    /// and the expansions are bag-unioned. A row that matches no arm is
    /// dropped.
    #[must_use]
    pub fn union(mut self, arms: Vec<Vec<TriplePattern>>) -> BgpQuery {
        self.unions.push(arms);
        self
    }

    /// Projects the result to the named variables (without `?`). An empty
    /// selection — the default — keeps every variable.
    #[must_use]
    pub fn select<I, S>(mut self, vars: I) -> BgpQuery
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.select = vars.into_iter().map(Into::into).collect();
        self
    }

    /// Skips the first `n` result rows (applied before `limit`).
    #[must_use]
    pub fn offset(mut self, n: usize) -> BgpQuery {
        self.offset = n;
        self
    }

    /// Caps the result at `n` rows (applied after `offset`).
    #[must_use]
    pub fn limit(mut self, n: usize) -> BgpQuery {
        self.limit = Some(n);
        self
    }

    /// Compiles the query into an executable plan against any
    /// [`QueryView`] — the live [`Graph`](crate::Graph) or a pinned
    /// [`EpochSnapshot`](crate::EpochSnapshot): greedy cost-based join
    /// ordering with merge joins where the index sort orders line up. The
    /// plan borrows nothing but holds term ids from the view's
    /// dictionary, so it must execute against the same view (or one
    /// sharing its dictionary, e.g. a paging snapshot).
    pub fn plan<V: QueryView>(&self, graph: &V) -> ExecPlan {
        self.plan_inner(graph, true)
    }

    /// Compiles the query *without* the optimizer: required patterns run
    /// pattern-at-a-time in the order they were added, always via nested
    /// loops. This is the reference baseline the oracle suite and the
    /// `ablation_query` bench compare the planner against.
    pub fn plan_textual<V: QueryView>(&self, graph: &V) -> ExecPlan {
        self.plan_inner(graph, false)
    }

    /// Plans and executes in one call.
    pub fn execute<V: QueryView>(&self, graph: &V) -> Vec<Solution> {
        self.plan(graph).execute(graph)
    }

    /// Executes with the optimizer bypassed (see
    /// [`plan_textual`](Self::plan_textual)).
    pub fn execute_textual<V: QueryView>(&self, graph: &V) -> Vec<Solution> {
        self.plan_textual(graph).execute(graph)
    }

    fn plan_inner<V: QueryView>(&self, graph: &V, optimize: bool) -> ExecPlan {
        let start = Instant::now();
        let dict = graph.dict();
        let mut vars: Vec<String> = Vec::new();

        let required: Vec<Option<IdPattern>> = self
            .patterns
            .iter()
            .map(|p| compile_lookup(p, dict, &mut vars))
            .collect();
        let unions: Vec<Vec<Option<Vec<IdPattern>>>> = self
            .unions
            .iter()
            .map(|arms| {
                arms.iter()
                    .map(|arm| compile_group(arm, dict, &mut vars))
                    .collect()
            })
            .collect();
        let optionals: Vec<Option<Vec<IdPattern>>> = self
            .optionals
            .iter()
            .map(|g| compile_group(g, dict, &mut vars))
            .collect();

        let nothing_to_match =
            self.patterns.is_empty() && self.unions.is_empty() && self.optionals.is_empty();
        let empty = nothing_to_match || required.iter().any(Option::is_none);

        let mut steps: Vec<Step> = Vec::new();
        let mut lines: Vec<String> = Vec::new();
        let mut merge_joins = 0usize;
        let mut loop_joins = 0usize;

        if empty {
            lines.push(if nothing_to_match {
                "empty (no patterns)".to_string()
            } else {
                "empty (a required pattern names a term absent from the dictionary)".to_string()
            });
        } else if !required.is_empty() {
            let pats: Vec<IdPattern> = required
                .iter()
                .map(|p| p.expect("emptiness checked above"))
                .collect();
            let est: Vec<usize> = pats
                .iter()
                .map(|p| {
                    graph.count_ids_capped(
                        const_slot(p.subject),
                        const_slot(p.predicate),
                        const_slot(p.object),
                        ESTIMATE_CAP,
                    )
                })
                .collect();
            let mut remaining: Vec<usize> = (0..pats.len()).collect();
            let mut bound: HashSet<usize> = HashSet::new();
            let mut sorted_var: Option<usize> = None;
            let mut first = true;
            while !remaining.is_empty() {
                let pick = if !optimize {
                    0
                } else if first {
                    argmin(&remaining, |&i| est[i])
                } else {
                    let connected: Vec<usize> = (0..remaining.len())
                        .filter(|&k| {
                            vars_of(pats[remaining[k]])
                                .iter()
                                .any(|v| bound.contains(v))
                        })
                        .collect();
                    if connected.is_empty() {
                        argmin(&remaining, |&i| est[i])
                    } else {
                        connected[argmin(&connected, |&k| est[remaining[k]])]
                    }
                };
                let idx = remaining.remove(pick);
                let p = pats[idx];
                let (index_name, sort_pos) = index_choice(p);
                let scan_sort_var = sort_pos.and_then(|pos| var_at(p, pos));
                let rendered = render_pattern(&self.patterns[idx]);
                if first {
                    steps.push(Step::Scan { pattern: p });
                    let sorted = match scan_sort_var {
                        Some(v) => format!(" sorted=?{}", vars[v]),
                        None => String::new(),
                    };
                    lines.push(format!(
                        "scan {index_name} {rendered} est={}{sorted}",
                        est[idx]
                    ));
                    sorted_var = scan_sort_var;
                    first = false;
                } else if optimize
                    && scan_sort_var.is_some()
                    && scan_sort_var == sorted_var
                    && scan_sort_var.is_some_and(|v| bound.contains(&v))
                {
                    let v = scan_sort_var.expect("checked");
                    let pos = sort_pos.expect("sort var implies sort position");
                    steps.push(Step::Merge {
                        pattern: p,
                        var: v,
                        pos,
                    });
                    merge_joins += 1;
                    lines.push(format!(
                        "merge[?{}] {index_name} {rendered} est={}",
                        vars[v], est[idx]
                    ));
                } else {
                    steps.push(Step::Loop { pattern: p });
                    loop_joins += 1;
                    lines.push(format!("loop {index_name} {rendered} est={}", est[idx]));
                }
                bound.extend(vars_of(p));
            }
        }

        if !empty {
            for (bi, arms) in unions.iter().enumerate() {
                let rendered: Vec<String> = arms
                    .iter()
                    .zip(&self.unions[bi])
                    .map(|(compiled, source)| match compiled {
                        Some(_) => format!("{{ {} }}", render_group(source)),
                        None => "{ no-match }".to_string(),
                    })
                    .collect();
                lines.push(format!("union {}", rendered.join(" | ")));
                steps.push(Step::Union {
                    arms: arms.iter().filter_map(Clone::clone).collect(),
                });
            }
            for (oi, group) in optionals.iter().enumerate() {
                let suffix = if group.is_none() { " no-match" } else { "" };
                lines.push(format!(
                    "optional {}{suffix}",
                    render_group(&self.optionals[oi])
                ));
                steps.push(Step::Optional {
                    group: group.clone(),
                });
            }
        }

        lines.push(format!(
            "slice offset={} limit={}",
            self.offset,
            self.limit
                .map_or_else(|| "none".to_string(), |l| l.to_string())
        ));
        lines.push(if self.select.is_empty() {
            "project *".to_string()
        } else {
            let names: Vec<String> = self.select.iter().map(|v| format!("?{v}")).collect();
            format!("project {}", names.join(" "))
        });

        let header = format!(
            "bgp {} patterns ({merge_joins} merge, {loop_joins} loop)",
            self.patterns.len()
        );
        lines.insert(0, header);

        ExecPlan {
            vars,
            select: self.select.clone(),
            steps,
            empty,
            offset: self.offset,
            limit: self.limit,
            explain: lines.join("\n"),
            plan_micros: start.elapsed().as_micros() as u64,
            merge_joins,
            loop_joins,
            patterns: self.patterns.len(),
        }
    }
}

/// One operator in an [`ExecPlan`].
#[derive(Debug, Clone)]
enum Step {
    /// The opening index scan (the most selective required pattern).
    Scan { pattern: IdPattern },
    /// Merge join: current rows and the pattern's index scan are both
    /// sorted by `var` (`pos` is the position of `var` in the scanned
    /// tuples).
    Merge {
        pattern: IdPattern,
        var: usize,
        pos: usize,
    },
    /// Index nested-loop join: per row, probe the best index.
    Loop { pattern: IdPattern },
    /// Bag union over arm expansions. Dead arms (unknown constants) are
    /// already pruned; an empty arm list matches nothing.
    Union { arms: Vec<Vec<IdPattern>> },
    /// Left-outer join against a pattern group. `None` means the group
    /// can never match (unknown constant): rows pass through unchanged.
    Optional { group: Option<Vec<IdPattern>> },
}

/// A compiled, executable query plan. Produced by [`BgpQuery::plan`];
/// holds term ids from the planning graph's dictionary, so it must run
/// against that graph or one sharing the dictionary (e.g. a clone taken
/// as a paging snapshot).
#[derive(Debug, Clone)]
pub struct ExecPlan {
    vars: Vec<String>,
    select: Vec<String>,
    steps: Vec<Step>,
    empty: bool,
    offset: usize,
    limit: Option<usize>,
    explain: String,
    plan_micros: u64,
    merge_joins: usize,
    loop_joins: usize,
    patterns: usize,
}

/// Counters describing one planned execution, for metrics and `EXPLAIN`
/// output at the gateway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Time spent planning, in microseconds.
    pub plan_micros: u64,
    /// Result rows returned (after slice and projection).
    pub rows: usize,
    /// Merge-join operators in the plan.
    pub merge_joins: usize,
    /// Nested-loop-join operators in the plan.
    pub loop_joins: usize,
    /// Required patterns in the query.
    pub patterns: usize,
}

impl ExecPlan {
    /// A stable, line-oriented rendering of the plan: the join order, the
    /// index and operator chosen per pattern, cardinality estimates, and
    /// the slice/projection tail. Golden tests pin this text.
    pub fn explain(&self) -> &str {
        &self.explain
    }

    /// The plan's variable table: every variable across required patterns,
    /// unions and optionals, in first-appearance order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Time spent planning, in microseconds.
    pub fn plan_micros(&self) -> u64 {
        self.plan_micros
    }

    /// Executes the plan, returning raw binding rows (indexes match
    /// [`vars`](Self::vars); `None` = unbound, ids relative to the view's
    /// dictionary). The offset/limit slice is applied; projection is not.
    pub fn rows<V: QueryView>(&self, graph: &V) -> Vec<Vec<Option<TermId>>> {
        if self.empty {
            return Vec::new();
        }
        let mut rows: Vec<Vec<Option<TermId>>> = vec![vec![None; self.vars.len()]];
        for step in &self.steps {
            match step {
                Step::Scan { pattern } | Step::Loop { pattern } => {
                    rows = solve_all(pattern, graph, &rows);
                }
                Step::Merge { pattern, var, pos } => {
                    let scan = graph.match_ids(
                        const_slot(pattern.subject),
                        const_slot(pattern.predicate),
                        const_slot(pattern.object),
                    );
                    rows.sort_by_key(|r| r[*var]);
                    rows = merge_join(rows, &scan, pattern, *var, *pos);
                }
                Step::Union { arms } => {
                    let mut next = Vec::new();
                    for row in &rows {
                        for arm in arms {
                            next.extend(solve_group(arm, graph, row));
                        }
                    }
                    rows = next;
                }
                Step::Optional { group } => {
                    if let Some(group) = group {
                        let mut next = Vec::new();
                        for row in &rows {
                            let extended = solve_group(group, graph, row);
                            if extended.is_empty() {
                                next.push(row.clone());
                            } else {
                                next.extend(extended);
                            }
                        }
                        rows = next;
                    }
                }
            }
            if rows.is_empty() {
                break;
            }
        }
        let it = rows.into_iter().skip(self.offset);
        match self.limit {
            Some(l) => it.take(l).collect(),
            None => it.collect(),
        }
    }

    /// Executes the plan and materializes terms for the projected
    /// variables. Unbound variables (e.g. from unmatched optionals) are
    /// simply absent from their row.
    pub fn execute<V: QueryView>(&self, graph: &V) -> Vec<Solution> {
        self.materialize(graph, self.rows(graph))
    }

    /// Like [`execute`](Self::execute), also returning the stats record
    /// the knowledge base publishes as `sdk_query_*` metrics.
    pub fn execute_with_stats<V: QueryView>(&self, graph: &V) -> (Vec<Solution>, QueryStats) {
        let out = self.execute(graph);
        let stats = QueryStats {
            plan_micros: self.plan_micros,
            rows: out.len(),
            merge_joins: self.merge_joins,
            loop_joins: self.loop_joins,
            patterns: self.patterns,
        };
        (out, stats)
    }

    fn materialize<V: QueryView>(
        &self,
        graph: &V,
        rows: Vec<Vec<Option<TermId>>>,
    ) -> Vec<Solution> {
        let dict = graph.dict();
        let proj: Vec<usize> = if self.select.is_empty() {
            (0..self.vars.len()).collect()
        } else {
            self.select
                .iter()
                .filter_map(|n| self.vars.iter().position(|v| v == n))
                .collect()
        };
        rows.into_iter()
            .map(|row| {
                proj.iter()
                    .filter_map(|&i| row[i].map(|id| (self.vars[i].clone(), dict.resolve(id))))
                    .collect()
            })
            .collect()
    }
}

/// Pattern-at-a-time expansion of `rows` through one pattern.
fn solve_all<V: QueryView>(
    pattern: &IdPattern,
    graph: &V,
    rows: &[Vec<Option<TermId>>],
) -> Vec<Vec<Option<TermId>>> {
    let mut next = Vec::new();
    for row in rows {
        next.extend(pattern.solve(graph, row).into_iter().map(|(r, _)| r));
    }
    next
}

/// Expands one row through every pattern of a group (inner join).
fn solve_group<V: QueryView>(
    group: &[IdPattern],
    graph: &V,
    row: &[Option<TermId>],
) -> Vec<Vec<Option<TermId>>> {
    let mut sub = vec![row.to_vec()];
    for pattern in group {
        sub = solve_all(pattern, graph, &sub);
        if sub.is_empty() {
            break;
        }
    }
    sub
}

/// Many-to-many merge join of sorted `rows` (by `rows[i][var]`) with a
/// sorted index `scan` (by the tuple component at `pos`). Linear in
/// `|rows| + |scan| + |matches|`: the scan cursor never retreats past the
/// current key block.
fn merge_join(
    rows: Vec<Vec<Option<TermId>>>,
    scan: &[IdTriple],
    pattern: &IdPattern,
    var: usize,
    pos: usize,
) -> Vec<Vec<Option<TermId>>> {
    let key_of = |t: &IdTriple| match pos {
        0 => t.0,
        1 => t.1,
        _ => t.2,
    };
    let mut out = Vec::new();
    let mut lo = 0usize;
    for row in rows {
        debug_assert!(row[var].is_some(), "merge var must be bound by prior joins");
        let Some(k) = row[var] else { continue };
        while lo < scan.len() && key_of(&scan[lo]) < k {
            lo += 1;
        }
        let mut i = lo;
        while i < scan.len() && key_of(&scan[i]) == k {
            if let Some(ext) = extend_row(&row, pattern, scan[i]) {
                out.push(ext);
            }
            i += 1;
        }
    }
    out
}

/// Extends a binding row with one matched triple, checking constants and
/// already-bound variables (handles repeated-variable patterns).
fn extend_row(
    row: &[Option<TermId>],
    pattern: &IdPattern,
    t: IdTriple,
) -> Option<Vec<Option<TermId>>> {
    let mut out = row.to_vec();
    for (slot, val) in [
        (pattern.subject, t.0),
        (pattern.predicate, t.1),
        (pattern.object, t.2),
    ] {
        match slot {
            IdPatternTerm::Const(c) => {
                if c != val {
                    return None;
                }
            }
            IdPatternTerm::Var(i) => match out[i] {
                Some(bound) if bound != val => return None,
                Some(_) => {}
                None => out[i] = Some(val),
            },
        }
    }
    Some(out)
}

/// Compiles one pattern in lookup mode. Variables are registered in
/// `vars` for *all three* slots before the unknown-constant check, so a
/// dead pattern still contributes its variable names to the plan's table.
fn compile_lookup(
    pattern: &TriplePattern,
    dict: &TermDict,
    vars: &mut Vec<String>,
) -> Option<IdPattern> {
    let slot = |t: &PatternTerm, vars: &mut Vec<String>| match t {
        PatternTerm::Term(term) => dict.lookup(term).map(IdPatternTerm::Const),
        PatternTerm::Var(v) => Some(IdPatternTerm::Var(var_index(v, vars))),
    };
    let s = slot(&pattern.subject, vars);
    let p = slot(&pattern.predicate, vars);
    let o = slot(&pattern.object, vars);
    Some(IdPattern {
        subject: s?,
        predicate: p?,
        object: o?,
    })
}

/// Compiles a pattern group; `None` if any member references a term the
/// dictionary has never seen (the group can never match). Emptiness is
/// local to the group — a dead `OPTIONAL`/`UNION` arm must not empty the
/// whole query.
fn compile_group(
    group: &[TriplePattern],
    dict: &TermDict,
    vars: &mut Vec<String>,
) -> Option<Vec<IdPattern>> {
    let compiled: Vec<Option<IdPattern>> = group
        .iter()
        .map(|p| compile_lookup(p, dict, vars))
        .collect();
    compiled.into_iter().collect()
}

fn const_slot(slot: IdPatternTerm) -> Option<TermId> {
    match slot {
        IdPatternTerm::Const(c) => Some(c),
        IdPatternTerm::Var(_) => None,
    }
}

fn var_at(pattern: IdPattern, pos: usize) -> Option<usize> {
    let slot = match pos {
        0 => pattern.subject,
        1 => pattern.predicate,
        _ => pattern.object,
    };
    match slot {
        IdPatternTerm::Var(i) => Some(i),
        IdPatternTerm::Const(_) => None,
    }
}

fn vars_of(pattern: IdPattern) -> Vec<usize> {
    [pattern.subject, pattern.predicate, pattern.object]
        .into_iter()
        .filter_map(|s| match s {
            IdPatternTerm::Var(i) => Some(i),
            IdPatternTerm::Const(_) => None,
        })
        .collect()
}

/// Index routing mirror of [`Graph::match_ids`]: which index a
/// constants-only scan of `pattern` uses, and which tuple position the
/// results are (primarily) sorted by — `None` when fully bound.
fn index_choice(pattern: IdPattern) -> (&'static str, Option<usize>) {
    let bound = |s: IdPatternTerm| matches!(s, IdPatternTerm::Const(_));
    match (
        bound(pattern.subject),
        bound(pattern.predicate),
        bound(pattern.object),
    ) {
        (true, true, true) => ("SPO", None),
        (true, true, false) => ("SPO", Some(2)),
        (true, false, true) => ("OSP", Some(1)),
        (true, false, false) => ("SPO", Some(1)),
        (false, true, true) => ("POS", Some(0)),
        (false, true, false) => ("POS", Some(2)),
        (false, false, true) => ("OSP", Some(0)),
        (false, false, false) => ("SPO", Some(0)),
    }
}

fn argmin<T: Copy, K: Ord>(items: &[T], key: impl Fn(&T) -> K) -> usize {
    let mut best = 0;
    for i in 1..items.len() {
        if key(&items[i]) < key(&items[best]) {
            best = i;
        }
    }
    best
}

fn render_pattern(pattern: &TriplePattern) -> String {
    let slot = |t: &PatternTerm| match t {
        PatternTerm::Var(v) => format!("?{v}"),
        PatternTerm::Term(t) => t.to_string(),
    };
    format!(
        "({} {} {})",
        slot(&pattern.subject),
        slot(&pattern.predicate),
        slot(&pattern.object)
    )
}

fn render_group(group: &[TriplePattern]) -> String {
    let parts: Vec<String> = group.iter().map(render_pattern).collect();
    parts.join(" ")
}
