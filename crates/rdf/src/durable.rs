//! Crash-recoverable wrapper around the incremental materializer.
//!
//! [`DurableStore`] gives the KB's RDF state write-ahead durability:
//! every mutation is appended to the [WAL](crate::wal) and fsynced
//! *before* it is applied in memory, so an operation that returned `Ok`
//! survives any crash, and one that failed was never applied. Periodic
//! [snapshots](crate::snapshot) bound recovery time and reclaim log
//! space.
//!
//! Recovery ([`DurableStore::open`]) loads the newest valid snapshot,
//! replays the WAL on top of it — tolerating a torn tail record,
//! failing hard on mid-log corruption — and then *re-derives* the
//! inference closure by running materialization over the recovered base
//! and standing rulesets. Derived facts are never read from disk:
//! the closure is a function of (base, config), so recomputing it is
//! both simpler and safer than trusting serialized reasoner state.
//!
//! Replay applies inserts and removes at the id level on the base graph
//! and defers all reasoning to one final `materialize()`. That makes
//! replay insensitive to when the reasoners interned their vocabulary
//! terms in the original run (those interns are logged as dict entries
//! with explicit sequence numbers and verified on replay), and it makes
//! re-replaying records already reflected in a snapshot — possible when
//! a crash lands between the snapshot rename and the WAL truncation —
//! a semantic no-op: per triple, the last logged operation wins.

use crate::dict::IdTriple;
use crate::epoch::EpochStore;
use crate::graph::Graph;
use crate::incremental::{IncrementalMaterializer, MaterializerConfig};
use crate::model::{Statement, Term};
use crate::reason::Rule;
use crate::snapshot::{check_triple, load_snapshot, write_snapshot, SNAPSHOT_TMP};
use crate::wal::{self, Wal, WalRecord};
use cogsdk_sim::fs::{RealFs, Vfs};
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

pub use crate::wal::{DurableError, WalStats};

/// Tuning knobs for the durability subsystem.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// WAL segment rotation threshold in bytes.
    pub segment_max_bytes: usize,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            segment_max_bytes: 1 << 20,
        }
    }
}

/// What one recovery did, exported as `sdk_recovery_*` metrics by the
/// KB layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Whether a snapshot was found and loaded.
    pub snapshot_loaded: bool,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Torn tail frames detected and dropped (0 or 1).
    pub torn_tails: u64,
    /// Base triples in the recovered store.
    pub base_triples: usize,
    /// Facts re-derived by post-replay materialization.
    pub rederived_facts: usize,
    /// Wall-clock recovery time.
    pub duration_ms: f64,
}

struct Durability {
    fs: Arc<dyn Vfs>,
    wal: Wal,
    /// Dictionary terms with seq below this are already durable
    /// (snapshotted or logged); anything at or above rides the next
    /// group commit as `DictEntry` records.
    dict_watermark: usize,
}

/// An [`IncrementalMaterializer`] with optional write-ahead durability.
///
/// In-memory stores ([`DurableStore::in_memory`]) behave exactly like
/// the bare materializer (mutations cannot fail); durable stores
/// ([`DurableStore::open`]) log every mutation before applying it.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{DurableOptions, DurableStore, Statement, Term};
/// use cogsdk_sim::fs::SimFs;
/// use std::sync::Arc;
///
/// let fs: Arc<SimFs> = Arc::new(SimFs::new(7));
/// let mut store = DurableStore::open(fs.clone(), DurableOptions::default()).unwrap();
/// store
///     .insert(Statement::new(
///         Term::iri("ex:a"),
///         Term::iri("ex:p"),
///         Term::iri("ex:b"),
///     ))
///     .unwrap();
/// drop(store);
///
/// let recovered = DurableStore::open(fs, DurableOptions::default()).unwrap();
/// assert_eq!(recovered.len(), 1);
/// ```
pub struct DurableStore {
    inner: IncrementalMaterializer,
    durability: Option<Durability>,
    recovery: Option<RecoveryStats>,
    /// Authoritative weighted-confidence map (statement → confidence).
    /// Entries exist only for confidences below 1.0; everything else has
    /// the implicit default of 1.0. Shared by `Arc` with published
    /// epochs, so a publish after no confidence change is free.
    confidence: Arc<HashMap<IdTriple, f64>>,
    /// Reader-facing epoch snapshots; shared with the KB layer outside
    /// its store lock so pinning never contends with writers.
    epochs: Arc<EpochStore>,
}

impl DurableStore {
    /// A purely in-memory store: no logging, mutations never fail.
    pub fn in_memory() -> DurableStore {
        let inner = IncrementalMaterializer::new();
        let confidence = Arc::new(HashMap::new());
        let epochs = Arc::new(EpochStore::new(inner.full(), confidence.clone()));
        DurableStore {
            inner,
            durability: None,
            recovery: None,
            confidence,
            epochs,
        }
    }

    /// Opens a durable store backed by the directory at `path` on the
    /// real filesystem, recovering any existing state.
    pub fn open_dir(
        path: impl AsRef<Path>,
        options: DurableOptions,
    ) -> Result<DurableStore, DurableError> {
        let fs = RealFs::open(path)?;
        DurableStore::open(Arc::new(fs), options)
    }

    /// Opens a durable store on any [`Vfs`], recovering existing state:
    /// newest valid snapshot, then WAL replay, then closure
    /// re-derivation. If replay consumed any records (or dropped a torn
    /// tail), a fresh snapshot is written immediately so the log
    /// restarts clean.
    ///
    /// # Errors
    ///
    /// [`DurableError::Corrupt`] if the snapshot fails its checksum or
    /// the WAL is damaged anywhere but a torn tail;
    /// [`DurableError::Io`] if storage fails.
    pub fn open(fs: Arc<dyn Vfs>, options: DurableOptions) -> Result<DurableStore, DurableError> {
        let start = Instant::now();
        let mut config;
        let base;
        let snapshot_loaded;
        let mut confidence: HashMap<IdTriple, f64> = HashMap::new();
        match load_snapshot(fs.as_ref())? {
            Some(snap) => {
                let mut graph = Graph::with_dict(snap.dict);
                for triple in snap.triples {
                    graph.insert_id(triple);
                }
                config = snap.config;
                confidence = snap.confidence.into_iter().collect();
                base = graph;
                snapshot_loaded = true;
            }
            None => {
                config = MaterializerConfig::default();
                base = Graph::new();
                snapshot_loaded = false;
            }
        }
        let mut base = base;
        let dict = base.dict().clone();

        let replayed = wal::replay(fs.as_ref())?;
        let replayed_records = replayed.records.len() as u64;
        for record in replayed.records {
            match record {
                WalRecord::DictEntry { seq, term } => {
                    let id = dict.intern(&term);
                    if id.seq() != seq as usize {
                        return Err(DurableError::Corrupt(format!(
                            "dict entry replayed to seq {} but was logged as {seq}",
                            id.seq()
                        )));
                    }
                }
                WalRecord::Insert(s, p, o) => {
                    let triple = check_triple((s, p, o), dict.len())?;
                    base.insert_id(triple);
                }
                WalRecord::Remove(s, p, o) => {
                    let triple = check_triple((s, p, o), dict.len())?;
                    base.remove_id(triple);
                }
                WalRecord::EnableRdfs => config.rdfs = true,
                WalRecord::EnableOwl => {
                    config.owl = true;
                    config.rdfs = true;
                }
                WalRecord::AddTransitive(term) => {
                    if !config.transitive.contains(&term) {
                        config.transitive.push(term);
                    }
                }
                WalRecord::AddRules(rules) => {
                    for rule in rules {
                        if !config.rules.contains(&rule) {
                            config.rules.push(rule);
                        }
                    }
                }
                WalRecord::Confidence(s, p, o, bits) => {
                    let triple = check_triple((s, p, o), dict.len())?;
                    let value = f64::from_bits(bits);
                    if !value.is_finite() {
                        return Err(DurableError::Corrupt(format!(
                            "confidence record for ({s}, {p}, {o}) is not finite"
                        )));
                    }
                    if value >= 1.0 {
                        confidence.remove(&triple);
                    } else {
                        confidence.insert(triple, value);
                    }
                }
            }
        }

        let base_triples = base.len();
        let mut inner = IncrementalMaterializer::from_graph(base);
        if config.rdfs {
            inner.enable_rdfs();
        }
        if config.owl {
            inner.enable_owl();
        }
        if !config.transitive.is_empty() {
            inner.add_transitive(config.transitive.clone());
        }
        if !config.rules.is_empty() {
            inner.add_rules(config.rules.clone());
        }
        let rederived_facts = inner.materialize();

        // Discard any half-written snapshot temp from a previous run.
        fs.delete(SNAPSHOT_TMP)?;
        let wal = Wal::open(fs.clone(), options.segment_max_bytes)?;
        let confidence = Arc::new(confidence);
        let epochs = Arc::new(EpochStore::new(inner.full(), confidence.clone()));
        // The recovered closure is already reflected in epoch 0; drop the
        // delta materialization recorded so the first mutation's publish
        // doesn't force a redundant base rebuild.
        inner.take_delta();
        let mut store = DurableStore {
            inner,
            durability: Some(Durability {
                fs,
                wal,
                dict_watermark: dict.len(),
            }),
            recovery: None,
            confidence,
            epochs,
        };
        if replayed_records > 0 || replayed.torn_tails > 0 {
            // Fold the replayed log (and any torn bytes) into a fresh
            // snapshot so the new WAL starts empty — appending after a
            // torn tail would corrupt the log.
            store.snapshot()?;
        }
        store.recovery = Some(RecoveryStats {
            snapshot_loaded,
            replayed_records,
            torn_tails: replayed.torn_tails,
            base_triples,
            rederived_facts,
            duration_ms: start.elapsed().as_secs_f64() * 1e3,
        });
        Ok(store)
    }

    /// Whether mutations are logged to stable storage.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Stats from the recovery this store was opened with, if durable.
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.recovery
    }

    /// Cumulative WAL activity since open (zeroes when in-memory).
    pub fn wal_stats(&self) -> WalStats {
        self.durability
            .as_ref()
            .map(|d| d.wal.stats())
            .unwrap_or_default()
    }

    /// Appends `ops` to the WAL in one group commit, prefixed by
    /// `DictEntry` records for every term interned since the last
    /// commit. The watermark advances only on success, so terms interned
    /// by a failed batch are re-logged by the next one.
    fn log_records(&mut self, ops: Vec<WalRecord>) -> Result<(), DurableError> {
        let Some(d) = self.durability.as_mut() else {
            return Ok(());
        };
        let fresh = self.inner.base().dict().terms_from(d.dict_watermark);
        let mut records = Vec::with_capacity(fresh.len() + ops.len());
        for (i, term) in fresh.iter().enumerate() {
            records.push(WalRecord::DictEntry {
                seq: (d.dict_watermark + i) as u32,
                term: term.clone(),
            });
        }
        let new_watermark = d.dict_watermark + fresh.len();
        records.extend(ops);
        d.wal.append_batch(&records)?;
        d.dict_watermark = new_watermark;
        Ok(())
    }

    /// Publishes the mutations applied since the last publish as a new
    /// reader-visible epoch. Called at the end of every mutating method,
    /// after the WAL append and after the closure is maintained — so a
    /// pinned epoch is always fully materialized and fully durable.
    fn publish_epoch(&mut self) {
        let delta = self.inner.take_delta();
        self.epochs
            .publish(self.inner.full(), delta, self.confidence.clone());
    }

    /// The reader-facing epoch store. Clone the `Arc` once and pin
    /// epochs from it without ever taking the writer's lock.
    pub fn epochs(&self) -> &Arc<EpochStore> {
        &self.epochs
    }

    /// Inserts a stated fact (logged first when durable). Returns
    /// whether the fact was new to the full view.
    ///
    /// # Errors
    ///
    /// If the WAL append fails the fact is *not* applied in memory.
    pub fn insert(&mut self, st: Statement) -> Result<bool, DurableError> {
        if self.durability.is_some() {
            let triple = self.inner.base().dict().intern_statement(&st);
            if !self.inner.base().contains_id(triple) {
                self.log_records(vec![WalRecord::insert(triple)])?;
            }
        }
        let added = self.inner.insert(st);
        self.publish_epoch();
        Ok(added)
    }

    /// Inserts a batch under a single group commit. Returns how many
    /// facts were new to the full view.
    pub fn insert_batch(
        &mut self,
        batch: impl IntoIterator<Item = Statement>,
    ) -> Result<usize, DurableError> {
        let batch: Vec<Statement> = batch.into_iter().collect();
        if self.durability.is_some() {
            let dict = self.inner.base().dict().clone();
            let mut seen = BTreeSet::new();
            let mut ops = Vec::new();
            for st in &batch {
                let triple = dict.intern_statement(st);
                if !self.inner.base().contains_id(triple) && seen.insert(triple) {
                    ops.push(WalRecord::insert(triple));
                }
            }
            self.log_records(ops)?;
        }
        let added = self.inner.insert_batch(batch);
        self.publish_epoch();
        Ok(added)
    }

    /// Removes a stated fact (DRed in memory, logged first when
    /// durable). Returns whether the fact was present in the full view.
    pub fn remove(&mut self, st: &Statement) -> Result<bool, DurableError> {
        if self.durability.is_some() {
            if let Some(triple) = self.inner.full().lookup_statement(st) {
                if self.inner.full().contains_id(triple) {
                    self.log_records(vec![WalRecord::remove(triple)])?;
                }
            }
        }
        let removed = self.inner.remove(st);
        self.publish_epoch();
        Ok(removed)
    }

    /// Removes a batch of stated facts under a single group commit and
    /// a single epoch publish. Returns how many were present.
    ///
    /// # Errors
    ///
    /// If the WAL append fails, nothing is applied in memory.
    pub fn remove_batch<'a>(
        &mut self,
        batch: impl IntoIterator<Item = &'a Statement>,
    ) -> Result<usize, DurableError> {
        let batch: Vec<&Statement> = batch.into_iter().collect();
        if self.durability.is_some() {
            let mut seen = BTreeSet::new();
            let mut ops = Vec::new();
            for st in &batch {
                if let Some(triple) = self.inner.full().lookup_statement(st) {
                    if self.inner.full().contains_id(triple) && seen.insert(triple) {
                        ops.push(WalRecord::remove(triple));
                    }
                }
            }
            self.log_records(ops)?;
        }
        let mut removed = 0;
        for st in batch {
            if self.inner.remove(st) {
                removed += 1;
            }
        }
        self.publish_epoch();
        Ok(removed)
    }

    /// Sets a weighted confidence for a statement (logged first when
    /// durable). Values at or above 1.0 restore the default and drop the
    /// entry; anything non-finite is rejected. The statement need not be
    /// present — imports record confidences before facts land.
    pub fn set_confidence(&mut self, st: &Statement, value: f64) -> Result<(), DurableError> {
        if !value.is_finite() {
            return Err(DurableError::Corrupt(format!(
                "confidence {value} is not finite"
            )));
        }
        let triple = self.inner.base().dict().intern_statement(st);
        let current = self.confidence.get(&triple).copied();
        let next = (value < 1.0).then_some(value);
        if current == next {
            return Ok(());
        }
        if self.durability.is_some() {
            self.log_records(vec![WalRecord::confidence(triple, value)])?;
        }
        let map = Arc::make_mut(&mut self.confidence);
        match next {
            Some(v) => {
                map.insert(triple, v);
            }
            None => {
                map.remove(&triple);
            }
        }
        self.publish_epoch();
        Ok(())
    }

    /// Sets many confidences under one WAL group commit and one epoch
    /// publish; same per-entry semantics as
    /// [`set_confidence`](Self::set_confidence). Returns how many entries
    /// changed.
    pub fn set_confidence_batch(
        &mut self,
        items: impl IntoIterator<Item = (Statement, f64)>,
    ) -> Result<usize, DurableError> {
        let mut resolved: Vec<(IdTriple, f64, Option<f64>)> = Vec::new();
        for (st, value) in items {
            if !value.is_finite() {
                return Err(DurableError::Corrupt(format!(
                    "confidence {value} is not finite"
                )));
            }
            let triple = self.inner.base().dict().intern_statement(&st);
            let current = self.confidence.get(&triple).copied();
            let next = (value < 1.0).then_some(value);
            if current != next {
                resolved.push((triple, value, next));
            }
        }
        if resolved.is_empty() {
            return Ok(0);
        }
        if self.durability.is_some() {
            let ops = resolved
                .iter()
                .map(|&(t, v, _)| WalRecord::confidence(t, v))
                .collect();
            self.log_records(ops)?;
        }
        let changed = resolved.len();
        let map = Arc::make_mut(&mut self.confidence);
        for (triple, _, next) in resolved {
            match next {
                Some(v) => {
                    map.insert(triple, v);
                }
                None => {
                    map.remove(&triple);
                }
            }
        }
        self.publish_epoch();
        Ok(changed)
    }

    /// The confidence recorded for a statement, default 1.0.
    pub fn confidence_of(&self, st: &Statement) -> f64 {
        self.inner
            .full()
            .lookup_statement(st)
            .and_then(|t| self.confidence.get(&t).copied())
            .unwrap_or(1.0)
    }

    /// The authoritative confidence map (entries below 1.0 only).
    pub fn confidences(&self) -> &Arc<HashMap<IdTriple, f64>> {
        &self.confidence
    }

    /// Enables RDFS entailment as a standing ruleset.
    pub fn enable_rdfs(&mut self) -> Result<bool, DurableError> {
        if !self.inner.config().rdfs {
            self.log_records(vec![WalRecord::EnableRdfs])?;
        }
        let changed = self.inner.enable_rdfs();
        self.publish_epoch();
        Ok(changed)
    }

    /// Enables OWL/Lite entailment (implies RDFS) as a standing ruleset.
    pub fn enable_owl(&mut self) -> Result<bool, DurableError> {
        let cfg = self.inner.config();
        if !cfg.owl || !cfg.rdfs {
            self.log_records(vec![WalRecord::EnableOwl])?;
        }
        let changed = self.inner.enable_owl();
        self.publish_epoch();
        Ok(changed)
    }

    /// Registers predicates as transitive.
    pub fn add_transitive(&mut self, predicates: Vec<Term>) -> Result<bool, DurableError> {
        let fresh: Vec<Term> = predicates
            .iter()
            .filter(|p| !self.inner.config().transitive.contains(p))
            .cloned()
            .collect();
        if !fresh.is_empty() {
            let ops = fresh
                .iter()
                .map(|p| WalRecord::AddTransitive(p.clone()))
                .collect();
            self.log_records(ops)?;
        }
        let changed = self.inner.add_transitive(predicates);
        self.publish_epoch();
        Ok(changed)
    }

    /// Adds standing user rules.
    pub fn add_rules(&mut self, rules: Vec<Rule>) -> Result<bool, DurableError> {
        let fresh: Vec<Rule> = rules
            .iter()
            .filter(|r| !self.inner.config().rules.contains(r))
            .cloned()
            .collect();
        if !fresh.is_empty() {
            self.log_records(vec![WalRecord::AddRules(fresh)])?;
        }
        let changed = self.inner.add_rules(rules);
        self.publish_epoch();
        Ok(changed)
    }

    /// Brings the derived closure up to date (pure in-memory work; the
    /// closure is never persisted). Returns newly derived facts.
    pub fn materialize(&mut self) -> usize {
        let derived = self.inner.materialize();
        self.publish_epoch();
        derived
    }

    /// Replaces all facts with `graph` as the stated base, keeping the
    /// configuration. On a durable store this immediately writes a
    /// snapshot (the old WAL no longer describes the state).
    pub fn reset(&mut self, graph: Graph) -> Result<(), DurableError> {
        self.inner.reset(graph);
        self.confidence = Arc::new(HashMap::new());
        if let Some(d) = self.durability.as_mut() {
            d.dict_watermark = 0;
        }
        if self.durability.is_some() {
            self.snapshot()?;
        }
        self.publish_epoch();
        Ok(())
    }

    /// Writes a checksummed snapshot of the dictionary, base triples,
    /// and ruleset config via write-temp → fsync → rename, then
    /// truncates the WAL. Returns bytes written (0 for in-memory
    /// stores, which have nothing to snapshot).
    pub fn snapshot(&mut self) -> Result<u64, DurableError> {
        let Some(d) = self.durability.as_mut() else {
            return Ok(0);
        };
        let dict = self.inner.base().dict();
        let triples: Vec<IdTriple> = self.inner.base().iter_ids().collect();
        let mut confidence: Vec<(IdTriple, f64)> =
            self.confidence.iter().map(|(&t, &v)| (t, v)).collect();
        confidence.sort_by_key(|&(t, _)| t);
        let bytes = write_snapshot(
            d.fs.as_ref(),
            dict,
            &triples,
            self.inner.config(),
            &confidence,
        )?;
        d.wal.reset()?;
        d.dict_watermark = dict.len();
        Ok(bytes)
    }

    /// The full view (base ∪ derived).
    pub fn full(&self) -> &Graph {
        self.inner.full()
    }

    /// The stated base facts.
    pub fn base(&self) -> &Graph {
        self.inner.base()
    }

    /// The derived-only facts.
    pub fn derived(&self) -> &Graph {
        self.inner.derived()
    }

    /// Facts in the full view.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the full view is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Whether the full view contains the statement.
    pub fn contains(&self, st: &Statement) -> bool {
        self.inner.contains(st)
    }

    /// The active ruleset configuration.
    pub fn config(&self) -> &MaterializerConfig {
        self.inner.config()
    }
}

impl Default for DurableStore {
    fn default() -> DurableStore {
        DurableStore::in_memory()
    }
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("durable", &self.is_durable())
            .field("len", &self.len())
            .field("config", self.config())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::vocab;
    use cogsdk_sim::fs::SimFs;

    fn st(s: &str, p: &str, o: &str) -> Statement {
        Statement::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn open(fs: &Arc<SimFs>) -> DurableStore {
        DurableStore::open(fs.clone() as Arc<dyn Vfs>, DurableOptions::default()).unwrap()
    }

    #[test]
    fn in_memory_store_mutates_without_storage() {
        let mut store = DurableStore::in_memory();
        assert!(!store.is_durable());
        assert!(store.insert(st("ex:a", "ex:p", "ex:b")).unwrap());
        assert_eq!(store.len(), 1);
        assert_eq!(store.snapshot().unwrap(), 0);
        assert_eq!(store.wal_stats(), WalStats::default());
    }

    #[test]
    fn reopen_recovers_base_and_rederives_closure() {
        let fs = Arc::new(SimFs::new(1));
        let mut store = open(&fs);
        store.enable_rdfs().unwrap();
        store
            .insert(st("ex:cat", vocab::SUB_CLASS_OF, "ex:animal"))
            .unwrap();
        store.insert(st("ex:felix", vocab::TYPE, "ex:cat")).unwrap();
        store.materialize();
        let expected = store.full().clone();
        assert!(expected.contains(&st("ex:felix", vocab::TYPE, "ex:animal")));
        drop(store);

        let mut recovered = open(&fs);
        recovered.materialize();
        assert_eq!(recovered.full(), &expected);
        assert!(recovered.config().rdfs);
        let stats = recovered.recovery_stats().unwrap();
        assert!(!stats.snapshot_loaded);
        assert!(stats.replayed_records > 0);
        assert_eq!(stats.torn_tails, 0);
    }

    #[test]
    fn snapshot_truncates_wal_and_recovery_prefers_it() {
        let fs = Arc::new(SimFs::new(2));
        let mut store = open(&fs);
        for i in 0..20 {
            store
                .insert(st(&format!("ex:s{i}"), "ex:p", "ex:o"))
                .unwrap();
        }
        let bytes = store.snapshot().unwrap();
        assert!(bytes > 0);
        // WAL restarted: a post-snapshot insert goes to segment 0 afresh.
        store.insert(st("ex:late", "ex:p", "ex:o")).unwrap();
        drop(store);

        let recovered = open(&fs);
        let stats = recovered.recovery_stats().unwrap();
        assert!(stats.snapshot_loaded);
        assert_eq!(
            stats.replayed_records, 2,
            "only the post-snapshot insert (+ its dict entry) replays"
        );
        assert_eq!(recovered.len(), 21);
    }

    #[test]
    fn removes_are_durable_and_never_resurrect() {
        let fs = Arc::new(SimFs::new(3));
        let mut store = open(&fs);
        store.insert(st("ex:a", "ex:p", "ex:b")).unwrap();
        store.insert(st("ex:c", "ex:p", "ex:d")).unwrap();
        assert!(store.remove(&st("ex:a", "ex:p", "ex:b")).unwrap());
        drop(store);

        let recovered = open(&fs);
        assert_eq!(recovered.len(), 1);
        assert!(!recovered.contains(&st("ex:a", "ex:p", "ex:b")));
        assert!(recovered.contains(&st("ex:c", "ex:p", "ex:d")));
    }

    #[test]
    fn remove_batch_group_commits_and_survives_reopen() {
        let fs = Arc::new(SimFs::new(10));
        let mut store = open(&fs);
        let batch: Vec<Statement> = (0..8)
            .map(|i| st("ex:a", "ex:p", &format!("ex:o{i}")))
            .collect();
        store.insert_batch(batch.clone()).unwrap();
        let keep = st("ex:keep", "ex:p", "ex:o");
        store.insert(keep.clone()).unwrap();

        let fsyncs_before = store.wal_stats().fsyncs;
        let epoch_before = store.epochs().pin().epoch();
        // Retract the batch plus a duplicate and an absent fact: one
        // group commit, one epoch publish, absent facts uncounted.
        let absent = st("ex:never", "ex:p", "ex:o");
        let removed = store
            .remove_batch(batch.iter().chain([&batch[0], &absent]))
            .unwrap();
        assert_eq!(removed, 8);
        assert_eq!(store.wal_stats().fsyncs, fsyncs_before + 1);
        assert_eq!(store.epochs().pin().epoch(), epoch_before + 1);
        assert_eq!(store.len(), 1);
        drop(store);

        let recovered = open(&fs);
        assert_eq!(recovered.len(), 1);
        assert!(recovered.contains(&keep));
        assert!(!recovered.contains(&batch[0]));
    }

    #[test]
    fn insert_batch_nets_intra_batch_duplicates() {
        let fs = Arc::new(SimFs::new(21));
        let mut store = open(&fs);
        let a = st("ex:a", "ex:p", "ex:b");
        let b = st("ex:c", "ex:p", "ex:d");
        let fsyncs_before = store.wal_stats().fsyncs;
        let epoch_before = store.epochs().pin().epoch();
        // The same statement three times in one batch: logged once,
        // counted once, one group commit, one epoch publish.
        let added = store
            .insert_batch(vec![a.clone(), b.clone(), a.clone(), a.clone()])
            .unwrap();
        assert_eq!(added, 2, "duplicates must not double count");
        assert_eq!(store.len(), 2);
        assert_eq!(store.wal_stats().fsyncs, fsyncs_before + 1);
        assert_eq!(store.epochs().pin().epoch(), epoch_before + 1);
        assert_eq!(store.epochs().pin().len(), 2, "epoch delta netted");
        // Re-inserting an already-stored fact alongside a fresh one logs
        // only the fresh one.
        let appends_before = store.wal_stats().appends;
        let c = st("ex:e", "ex:p", "ex:f");
        assert_eq!(store.insert_batch(vec![a.clone(), c.clone()]).unwrap(), 1);
        assert_eq!(
            store.wal_stats().appends,
            appends_before + 1,
            "one group append for the fresh fact"
        );
        drop(store);

        let recovered = open(&fs);
        let stats = recovered.recovery_stats().unwrap();
        // 7 dict terms (ex:a ex:p ex:b ex:c ex:d ex:e ex:f) + 3 inserts.
        assert_eq!(stats.replayed_records, 10, "{stats:?}");
        assert_eq!(recovered.len(), 3);
        assert!(recovered.contains(&a));
        assert!(recovered.contains(&b));
        assert!(recovered.contains(&c));
    }

    #[test]
    fn crash_between_snapshot_rename_and_wal_truncate_is_idempotent() {
        let fs = Arc::new(SimFs::new(4));
        let mut store = open(&fs);
        store.insert(st("ex:a", "ex:p", "ex:b")).unwrap();
        assert!(store.remove(&st("ex:a", "ex:p", "ex:b")).unwrap());
        store.insert(st("ex:c", "ex:p", "ex:d")).unwrap();
        let expected = store.base().clone();
        // Snapshot's ops: write tmp, fsync tmp, rename, delete segment.
        // Crash on the delete: snapshot installed, stale WAL left behind.
        fs.fail_after_ops(3);
        assert!(store.snapshot().is_err());
        fs.crash();

        let recovered = open(&fs);
        assert_eq!(recovered.base(), &expected);
        assert!(
            !recovered.contains(&st("ex:a", "ex:p", "ex:b")),
            "stale-WAL replay onto the snapshot must not resurrect removed facts"
        );
    }

    #[test]
    fn reset_snapshots_the_new_state() {
        let fs = Arc::new(SimFs::new(5));
        let mut store = open(&fs);
        store.insert(st("ex:old", "ex:p", "ex:o")).unwrap();
        let mut replacement = Graph::new();
        replacement.insert(st("ex:new", "ex:p", "ex:o"));
        store.reset(replacement).unwrap();
        drop(store);

        let recovered = open(&fs);
        assert_eq!(recovered.len(), 1);
        assert!(recovered.contains(&st("ex:new", "ex:p", "ex:o")));
        assert!(!recovered.contains(&st("ex:old", "ex:p", "ex:o")));
    }

    #[test]
    fn transitive_and_rules_survive_reopen() {
        let fs = Arc::new(SimFs::new(6));
        let mut store = open(&fs);
        store
            .add_transitive(vec![Term::iri("ex:ancestor")])
            .unwrap();
        store
            .add_rules(vec![Rule::parse(
                "[(?a ex:parent ?b) -> (?a ex:ancestor ?b)]",
            )
            .unwrap()])
            .unwrap();
        store.insert(st("ex:a", "ex:parent", "ex:b")).unwrap();
        store.insert(st("ex:b", "ex:parent", "ex:c")).unwrap();
        store.materialize();
        assert!(store.contains(&st("ex:a", "ex:ancestor", "ex:c")));
        let expected = store.full().clone();
        drop(store);

        let mut recovered = open(&fs);
        recovered.materialize();
        assert_eq!(recovered.full(), &expected);
        assert_eq!(recovered.config().transitive.len(), 1);
        assert_eq!(recovered.config().rules.len(), 1);
    }

    #[test]
    fn confidences_survive_reopen_via_wal_and_snapshot() {
        let fs = Arc::new(SimFs::new(8));
        let mut store = open(&fs);
        store.insert(st("ex:a", "ex:p", "ex:b")).unwrap();
        store.insert(st("ex:c", "ex:p", "ex:d")).unwrap();
        store
            .set_confidence(&st("ex:a", "ex:p", "ex:b"), 0.6)
            .unwrap();
        store
            .set_confidence(&st("ex:c", "ex:p", "ex:d"), 0.3)
            .unwrap();
        // Restored to the default: the entry must not survive.
        store
            .set_confidence(&st("ex:c", "ex:p", "ex:d"), 1.0)
            .unwrap();
        drop(store);

        // First reopen replays the confidence records from the WAL.
        let mut recovered = open(&fs);
        assert_eq!(recovered.confidence_of(&st("ex:a", "ex:p", "ex:b")), 0.6);
        assert_eq!(recovered.confidence_of(&st("ex:c", "ex:p", "ex:d")), 1.0);
        assert_eq!(recovered.confidences().len(), 1);
        recovered.snapshot().unwrap();
        drop(recovered);

        // Second reopen reads them from the snapshot (WAL is empty).
        let recovered = open(&fs);
        assert_eq!(recovered.recovery_stats().unwrap().replayed_records, 0);
        assert_eq!(recovered.confidence_of(&st("ex:a", "ex:p", "ex:b")), 0.6);
        assert_eq!(recovered.confidences().len(), 1);
    }

    #[test]
    fn every_mutation_publishes_a_fully_materialized_epoch() {
        let fs = Arc::new(SimFs::new(9));
        let mut store = open(&fs);
        let epochs = store.epochs().clone();
        store.enable_rdfs().unwrap();
        store
            .insert(st("ex:cat", vocab::SUB_CLASS_OF, "ex:animal"))
            .unwrap();
        store.insert(st("ex:felix", vocab::TYPE, "ex:cat")).unwrap();
        let snap = epochs.pin();
        assert!(
            snap.contains(&st("ex:felix", vocab::TYPE, "ex:animal")),
            "pinned epoch includes the derived closure without an explicit materialize"
        );
        assert_eq!(snap.len(), store.len());

        store
            .set_confidence(&st("ex:felix", vocab::TYPE, "ex:cat"), 0.8)
            .unwrap();
        let snap = epochs.pin();
        let t = snap
            .dict()
            .lookup_statement(&st("ex:felix", vocab::TYPE, "ex:cat"));
        assert_eq!(snap.confidence_of(t.unwrap()), Some(0.8));
    }

    #[test]
    fn failed_append_leaves_memory_unchanged() {
        let fs = Arc::new(SimFs::new(7));
        let mut store = open(&fs);
        store.insert(st("ex:a", "ex:p", "ex:b")).unwrap();
        fs.fail_after_ops(0);
        assert!(store.insert(st("ex:x", "ex:p", "ex:y")).is_err());
        assert_eq!(store.len(), 1, "failed append must not apply in memory");
        fs.crash();
        let recovered = open(&fs);
        assert_eq!(recovered.len(), 1);
    }
}
